"""Observability bench — tracing overhead, chaos QoE, end-to-end demo.

Three sections, merged into ``BENCH_observability.json`` at the repo root:

* **overhead** — the PR 1 serving-scale scenario (shared pacing, one
  lecture fanned out to N clients) with tracing off vs. a live
  :class:`repro.obs.Tracer` threaded through simulator, links, server and
  sessions. Asserts the delivered packets are byte-identical either way
  (tracing never perturbs behaviour) and that the traced run adds less
  than 10% wall clock.
* **qoe_chaos** — the burst-loss recovery scenario from the chaos suite,
  swept over seeds 0–2: every trace must pass :class:`TraceChecker`, and
  the per-session QoE delivery ratio must equal the independently
  computed ``media_bytes / clean_media_bytes``.
* **demo** — publish → serve → playback in one trace under chaos seed 1:
  an :class:`LODPublisher` grid publish (with a serial-vs-4-worker
  encode-counter parity check), a recovering player on a bursty link,
  ``TraceChecker.assert_ok()`` over the whole trace, and a QoE
  cross-check. The finished trace is written to
  ``TRACE_observability_sample.jsonl`` for CI artifact upload.

``BENCH_OBS_SMOKE=1`` shrinks the client counts and seed sweep for CI.
"""

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks._harness import run_once

from repro.asf import ASFEncoder, EncodeFarm, EncoderConfig, slide_commands
from repro.lod import Lecture, LODPublisher
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics import counters_snapshot, format_table, snapshot_delta
from repro.net import GilbertElliott
from repro.obs import QoEAggregator, SessionQoE, TraceChecker, Tracer
from repro.streaming import MediaPlayer, MediaServer, PlayerState, RecoveryConfig
from repro.web import VirtualNetwork

SMOKE = os.environ.get("BENCH_OBS_SMOKE", "") not in ("", "0")
PROFILE = get_profile("dsl-256k")
DURATION = 20.0
QUANTUM = 0.5
SLIDES = 4
OVERHEAD_CLIENTS = 4 if SMOKE else 64
OVERHEAD_REPEATS = 7
OVERHEAD_BUDGET = 0.10  # tracing must stay under 10% wall overhead
CHAOS_SEEDS = [0] if SMOKE else [0, 1, 2]
DEMO_SEED = 1
DEMO_WORKERS = 4


def make_asf():
    per_slide = DURATION / SLIDES
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="bench-lecture",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(SLIDES)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(SLIDES)]
        ),
    )


def demo_lecture():
    return Lecture.from_slide_durations(
        "Observability Demo", "Prof",
        [5.0, 5.0, 5.0, 5.0], importances=[0, 1, 0, 1],
        slide_width=320, slide_height=240,
    )


# ----------------------------------------------------------------------
# Section 1: tracing overhead on the PR 1 serving scenario
# ----------------------------------------------------------------------


def serve_fanout(asf, clients, tracer=None):
    """The PR 1 fast-path serving scenario, optionally fully traced.

    Returns ``(wall_s, blobs, tracer)``; the wall clock covers only the
    simulator run, exactly as ``test_bench_serving_scale.serve_to`` times
    it. Sessions are closed after the run so a traced trace is
    checker-clean.
    """
    net = VirtualNetwork()
    names = [f"c{i}" for i in range(clients)]
    for name in names:
        net.connect("server", name, bandwidth=2_000_000, delay=0.02)
    if tracer is not None:
        tracer.bind_clock(net.simulator)
        net.simulator.tracer = tracer
        for name in names:
            net.link("server", name).tracer = tracer
            net.link(name, "server").tracer = tracer
    server = MediaServer(
        net, "server", port=8080,
        shared_pacing=True, pacing_quantum=QUANTUM, tracer=tracer,
    )
    server.publish("lecture", asf)
    sinks = {name: [] for name in names}
    sessions = []
    for name in names:
        session = server.open_session("lecture", name, sinks[name].append)
        sessions.append(session)
        server.play(session.session_id)
    t0 = time.perf_counter()
    net.simulator.run(max_events=5_000_000)
    wall = time.perf_counter() - t0
    for session in sessions:
        server.close_session(session.session_id)
    blobs = {
        name: b"".join(p.pack() for p in packets)
        for name, packets in sinks.items()
    }
    return wall, blobs, tracer


class TestTracingOverhead:
    def test_bench_overhead_under_budget(self, benchmark):
        asf = make_asf()

        def measure():
            serve_fanout(asf, OVERHEAD_CLIENTS)  # warm caches/pack memos
            serve_fanout(asf, OVERHEAD_CLIENTS, tracer=Tracer("warmup"))
            # interleaved pairs, compared on total wall: machine noise
            # (GC, frequency scaling, co-tenants) averages out of the
            # sums, leaving the tracing cost itself
            pairs = []
            plain_blobs = traced_blobs = None
            traced = None
            for _ in range(OVERHEAD_REPEATS):
                plain_wall, plain_blobs, _ = serve_fanout(
                    asf, OVERHEAD_CLIENTS
                )
                traced_wall, traced_blobs, traced = serve_fanout(
                    asf, OVERHEAD_CLIENTS, tracer=Tracer("overhead")
                )
                pairs.append((plain_wall, traced_wall))
            return pairs, plain_blobs, traced_blobs, traced

        pairs, plain_blobs, traced_blobs, traced = run_once(benchmark, measure)
        # tracing must observe, never perturb: byte-identical delivery
        assert traced_blobs == plain_blobs
        # the traced run is a complete, invariant-clean trace
        checker = TraceChecker(traced.records).assert_ok()
        summary = checker.summary()
        assert summary["sessions_opened"] == OVERHEAD_CLIENTS
        assert summary["sessions_closed"] == OVERHEAD_CLIENTS

        plain = sum(p for p, _ in pairs)
        traced_wall = sum(t for _, t in pairs)
        overhead = traced_wall / plain - 1.0
        print(
            f"\n[obs] fanout to {OVERHEAD_CLIENTS} clients x "
            f"{OVERHEAD_REPEATS}: plain {plain * 1000:.1f}ms, "
            f"traced {traced_wall * 1000:.1f}ms "
            f"({overhead * 100:+.1f}%, {len(traced.records)} records/run)"
        )
        assert overhead < OVERHEAD_BUDGET
        _emit(overhead={
            "clients": OVERHEAD_CLIENTS,
            "repeats": OVERHEAD_REPEATS,
            "pairs_wall_s": [list(p) for p in pairs],
            "overhead_ratio": overhead,
            "budget": OVERHEAD_BUDGET,
            "trace_records": len(traced.records),
            "byte_identical": traced_blobs == plain_blobs,
        })


# ----------------------------------------------------------------------
# Section 2: QoE under chaos seeds
# ----------------------------------------------------------------------


def chaos_world(asf, seed, *, burst_loss=None, tracer=None):
    net = VirtualNetwork()
    if tracer is not None:
        tracer.bind_clock(net.simulator)
        net.simulator.tracer = tracer
    net.connect("server", "student", bandwidth=2_000_000, delay=0.02)
    for src, dst in (("server", "student"), ("student", "server")):
        net.link(src, dst).tracer = tracer
    downlink = net.link("server", "student")
    downlink.rng.seed(1000 + seed)
    if burst_loss is not None:
        downlink.set_loss(burst_loss=burst_loss)
    server = MediaServer(
        net, "server", port=8080, qos_enabled=True, tracer=tracer
    )
    if asf is not None:
        server.publish("lecture", asf)
    return net, server


def watch(net, server, *, recovery=None, tracer=None, horizon=60.0,
          url=None):
    player = MediaPlayer(net, "student", recovery=recovery, tracer=tracer)
    player.connect(url if url is not None else server.url_of("lecture"))
    player.play()
    net.simulator.run_until(horizon)
    if player.state is not PlayerState.FINISHED:
        player.stop()
    return player.report()


class TestChaosQoE:
    def test_bench_qoe_across_seeds(self, benchmark):
        asf = make_asf()

        def sweep():
            net, server = chaos_world(asf, 0)
            clean = watch(net, server)
            aggregator = QoEAggregator()
            rows = []
            for seed in CHAOS_SEEDS:
                tracer = Tracer(f"chaos-{seed}")
                net, server = chaos_world(
                    asf, seed,
                    burst_loss=GilbertElliott.from_average(
                        0.05, mean_burst=5.0
                    ),
                    tracer=tracer,
                )
                report = watch(
                    net, server, recovery=RecoveryConfig(), tracer=tracer
                )
                TraceChecker(tracer.records).assert_ok()
                qoe = SessionQoE.from_report(
                    report, clean_media_bytes=clean.media_bytes,
                    client="student",
                )
                aggregator.add(qoe)
                rows.append((seed, report, qoe, len(tracer.records)))
            return clean, rows, aggregator

        clean, rows, aggregator = run_once(benchmark, sweep)
        for seed, report, qoe, _records in rows:
            # QoE must agree with the independently computed ratio
            assert qoe.delivery_ratio == pytest.approx(
                report.media_bytes / clean.media_bytes
            )
            assert qoe.delivery_ratio >= 0.99  # recovery repairs the loss
            assert qoe.naks_sent == report.recovery["naks_sent"]
        print(f"\n[obs] burst-loss QoE over seeds {CHAOS_SEEDS}:")
        print(format_table(
            ["seed", "startup", "rebuffers", "delivery", "naks", "records"],
            [[seed, f"{qoe.startup_delay:.2f}s", qoe.rebuffer_count,
              f"{qoe.delivery_ratio:.4f}", qoe.naks_sent, records]
             for seed, _report, qoe, records in rows],
        ))
        _emit(qoe_chaos={
            "seeds": CHAOS_SEEDS,
            "clean_media_bytes": clean.media_bytes,
            "sessions": [
                dict(qoe.as_dict(), seed=seed, trace_records=records)
                for seed, _report, qoe, records in rows
            ],
            "aggregate": aggregator.summary(),
        })


# ----------------------------------------------------------------------
# Section 3: end-to-end demo — publish → serve → playback, one trace
# ----------------------------------------------------------------------


class TestEndToEndDemo:
    def test_bench_demo_trace(self, benchmark):
        lecture = demo_lecture()
        renditions = [get_profile("isdn-dual"), get_profile("dsl-256k")]

        def work_delta(delta):
            """The farm's *work* counters: what was encoded, not how the
            batch ran (``parallel_batches`` legitimately differs by mode)."""
            bag = dict(delta.get("encode_farm", {}))
            bag.pop("parallel_batches", None)
            return bag

        def parity():
            """Same grid published serially and on a 4-worker spawn pool:
            the farm work-counter deltas must be identical (the headline
            cross-process counter-loss fix)."""
            before = counters_snapshot()
            serial = LODPublisher(None, renditions=renditions).publish(
                lecture, "demo"
            )
            serial_delta = work_delta(
                snapshot_delta(before, counters_snapshot())
            )
            with EncodeFarm(DEMO_WORKERS) as farm:
                before = counters_snapshot()
                parallel = LODPublisher(
                    None, renditions=renditions, farm=farm
                ).publish(lecture, "demo")
                parallel_delta = work_delta(
                    snapshot_delta(before, counters_snapshot())
                )
            return serial, parallel, serial_delta, parallel_delta

        def demo():
            serial, parallel, serial_delta, parallel_delta = parity()

            tracer = Tracer("demo")
            net, server = chaos_world(
                None, DEMO_SEED,
                burst_loss=GilbertElliott.from_average(0.05, mean_burst=5.0),
                tracer=tracer,
            )
            publisher = LODPublisher(
                server, renditions=renditions, tracer=tracer
            )
            result = publisher.publish(lecture, "demo")
            variant = result.variant(2, "dsl-256k")
            report = watch(
                net, server, recovery=RecoveryConfig(), tracer=tracer,
                url=variant.url,
            )

            # independent clean baseline: same grid, loss-free world
            clean_net, clean_srv = chaos_world(None, DEMO_SEED)
            LODPublisher(clean_srv, renditions=renditions).publish(
                lecture, "demo"
            )
            clean = watch(clean_net, clean_srv, url=variant.url)
            return (serial_delta, parallel_delta, result, tracer, report,
                    clean)

        serial_delta, parallel_delta, result, tracer, report, clean = (
            run_once(benchmark, demo)
        )
        # headline parity: no increments lost across worker processes
        assert serial_delta == parallel_delta
        assert serial_delta.get("codec_runs", 0) > 0

        checker = TraceChecker(tracer.records).assert_ok()
        summary = checker.summary()
        assert summary["sessions_opened"] == summary["sessions_closed"] == 1
        assert tracer.open_spans() == {}

        qoe = SessionQoE.from_report(
            report, clean_media_bytes=clean.media_bytes, client="student"
        )
        assert qoe.delivery_ratio == pytest.approx(
            report.media_bytes / clean.media_bytes
        )

        sample = _root() / "TRACE_observability_sample.jsonl"
        written = tracer.write_jsonl(str(sample))
        assert written == len(tracer.records)

        print(
            f"\n[obs] demo under seed {DEMO_SEED}: {summary['records']} "
            f"records, delivery {qoe.delivery_ratio:.4f}, "
            f"parity delta {serial_delta} (serial == {DEMO_WORKERS}-worker)"
        )
        _emit(demo={
            "seed": DEMO_SEED,
            "grid": {
                "levels": list(result.levels),
                "profiles": list(result.profiles),
                "jobs_submitted": result.jobs_submitted,
                "encodes_performed": result.encodes_performed,
                "dedup_hits": result.dedup_hits,
            },
            "counter_parity": {
                "workers": DEMO_WORKERS,
                "serial": serial_delta,
                "parallel": parallel_delta,
                "identical": serial_delta == parallel_delta,
            },
            "trace": {
                "records": summary["records"],
                "violations": summary["violations"],
                "sessions_opened": summary["sessions_opened"],
                "sessions_closed": summary["sessions_closed"],
                "sample_path": sample.name,
            },
            "qoe": qoe.as_dict(),
        })


# ----------------------------------------------------------------------


def _root():
    return Path(__file__).resolve().parent.parent


def _emit(**section):
    """Merge a result section into BENCH_observability.json at repo root."""
    path = _root() / "BENCH_observability.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    payload.update(section)
    payload["config"] = {
        "duration_s": DURATION,
        "profile": "dsl-256k",
        "overhead_clients": OVERHEAD_CLIENTS,
        "chaos_seeds": CHAOS_SEEDS,
        "demo_seed": DEMO_SEED,
        "demo_workers": DEMO_WORKERS,
        "smoke": SMOKE,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
