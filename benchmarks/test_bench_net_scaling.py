"""Supporting bench — cost of the formal machinery at lecture scale.

The paper's pitch is that Petri nets give the system "both practice and
theory"; that only holds if compiling and verifying the net of a real
lecture is cheap. This bench sweeps lecture size (number of slides) and
times the three formal steps the publisher runs on every publish:

* compiling the extended presentation's OCPN,
* executing it (the schedule),
* verifying the schedule against the interval algebra,

plus the safety check (reachability-based) at small-to-medium sizes.
The shape: compile/execute/verify stay well under a second even at 200
slides — orders of magnitude below the encoding cost they accompany.
"""

import time

import pytest

from benchmarks._harness import run_once

from repro.core.analysis import is_safe
from repro.core.ocpn import compile_spec, verify_schedule
from repro.lod import Lecture
from repro.metrics import format_table


def lecture_spec(n_slides):
    lecture = Lecture.from_slide_durations(
        "scale", "P", [10.0] * n_slides, with_audio=True,
        slide_width=160, slide_height=120,
    )
    return lecture.to_presentation().spec


class TestNetScaling:
    def test_bench_formal_pipeline_scaling(self, benchmark):
        def sweep():
            rows = []
            for n in (10, 50, 100, 200):
                spec = lecture_spec(n)
                t0 = time.perf_counter()
                compiled = compile_spec(spec)
                t1 = time.perf_counter()
                execution = compiled.execute()
                t2 = time.perf_counter()
                verify_schedule(compiled)
                t3 = time.perf_counter()
                rows.append((
                    n,
                    len(compiled.timed_net.net.places),
                    (t1 - t0) * 1000,
                    (t2 - t1) * 1000,
                    (t3 - t2) * 1000,
                ))
            return rows

        rows = run_once(benchmark, sweep)
        print("\n[scal] formal pipeline cost vs lecture size (ms):")
        print(format_table(
            ["slides", "places", "compile", "execute", "verify"],
            [list(r) for r in rows],
        ))
        # the publish-blocking steps stay under a second at 200 slides
        slides, places, compile_ms, execute_ms, verify_ms = rows[-1]
        assert slides == 200
        assert compile_ms < 1_000
        assert execute_ms + verify_ms < 2_000
        # place count grows linearly with slides
        assert rows[-1][1] < rows[0][1] * 30

    def test_bench_safety_check_medium_net(self, benchmark):
        compiled = compile_spec(lecture_spec(12))
        safe = run_once(benchmark, is_safe, compiled.timed_net.net)
        assert safe
