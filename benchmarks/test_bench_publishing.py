"""Benches F5/F6/F7 — the publishing and synchronized-playback figures.

* **F5** (Fig. 5, "a web publishing manager"): the full publish → replay
  round trip through the HTTP form, timed end to end.
* **F6** (Fig. 6, "multi-level content tree of the web-based multimedia
  presentation"): per-level replay of a published lecture — the rows are
  level, segments, stream time delivered.
* **F7** (Fig. 7, "an example of Presentations"): synchronized video +
  slides playback; the series is per-slide sync error across link
  qualities. The paper claims synchronization "automatically"; the shape
  to reproduce is sync error bounded by the render tick on every link.
"""

import pytest

from benchmarks._harness import run_once

from repro.lod import (
    Lecture,
    LODPlayback,
    MediaStore,
    WebPublishingManager,
    replay_all_levels,
)
from repro.metrics import MetricsCollector, format_table
from repro.streaming import MediaPlayer, MediaServer
from repro.web import HTTPClient, VirtualNetwork, form_encode


def make_lecture(n_slides=6, slide_seconds=10.0):
    importances = [i % 3 for i in range(n_slides)]
    return Lecture.from_slide_durations(
        "Benchmark Lecture", "Prof", [slide_seconds] * n_slides,
        importances=importances, slide_width=320, slide_height=240,
    )


def make_world(lecture, links):
    net = VirtualNetwork()
    net.connect("teacher", "server", bandwidth=10e6, delay=0.005)
    for host, params in links.items():
        net.connect("server", host, **params)
    server = MediaServer(net, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/v", "/s", lecture)
    manager = WebPublishingManager(server, store)
    return net, server, manager


class TestF5PublishReplay:
    def test_fig5_publish_replay(self, benchmark):
        lecture = make_lecture()

        def publish_and_replay():
            net, server, manager = make_world(
                lecture, {"student": dict(bandwidth=2e6, delay=0.02)}
            )
            teacher = HTTPClient(net, "teacher")
            response = teacher.post(
                "http://server:8080/publish",
                body=form_encode({
                    "video_path": "/v", "slide_dir": "/s",
                    "point": "bench", "profile": "dsl-256k",
                }),
            )
            assert response.ok
            report = MediaPlayer(net, "student").watch(response.body["url"])
            return response.body, report

        body, report = run_once(benchmark, publish_and_replay)
        assert body["verification_error"] <= 1e-3
        assert report.duration_watched == pytest.approx(60.0, abs=0.3)
        print("\n[F5] publish -> replay round trip:")
        print(format_table(
            ["metric", "value"],
            [
                ["published URL", body["url"]],
                ["Petri-net verification error (s)", body["verification_error"]],
                ["startup latency (s)", report.startup_latency],
                ["rebuffer events", report.rebuffer_count],
                ["seconds watched", report.duration_watched],
                ["slides fired", len(report.slide_changes())],
            ],
        ))


class TestF6LectureTree:
    def test_fig6_lecture_tree(self, benchmark):
        lecture = make_lecture()

        def replay_levels():
            net, server, manager = make_world(
                lecture, {"student": dict(bandwidth=2e6, delay=0.02)}
            )
            record = manager.publish(video_path="/v", slide_dir="/s",
                                     point="levels")
            tree = manager.content_tree_of("levels")
            playback = LODPlayback(net, "student", lecture, record.url)
            return tree, replay_all_levels(playback, tree)

        tree, results = run_once(benchmark, replay_levels)
        # the tree is the Fig. 6 multi-level view: deeper levels play more
        counts = [len(r.segments_played) for r in results]
        assert counts == sorted(counts)
        assert counts[-1] == len(lecture.segments)
        assert all(r.coverage == 1.0 for r in results)
        print("\n[F6] per-level replay of the published lecture:")
        print(format_table(
            ["level", "segments", "nominal (s)", "watched (s)", "coverage"],
            [[r.level, len(r.segments_played), r.nominal_duration,
              r.report.duration_watched, f"{r.coverage:.0%}"]
             for r in results],
        ))


class TestF7SynchronizedPlayback:
    LINKS = {
        "lan": dict(bandwidth=5e6, delay=0.005),
        "dsl": dict(bandwidth=500_000, delay=0.04),
        "wan-lossy": dict(bandwidth=2e6, delay=0.08, loss_rate=0.02),
    }

    def test_fig7_synchronized_playback(self, benchmark):
        lecture = make_lecture()

        def watch_everywhere():
            net, server, manager = make_world(lecture, self.LINKS)
            record = manager.publish(video_path="/v", slide_dir="/s",
                                     point="sync")
            audits = {}
            for host in self.LINKS:
                playback = LODPlayback(net, host, lecture, record.url)
                report, audit = playback.watch()
                audits[host] = (report, audit)
            return audits

        audits = run_once(benchmark, watch_everywhere)
        collector = MetricsCollector("[F7] slide sync error by link (ms)")
        for i, (host, (report, audit)) in enumerate(audits.items()):
            assert audit.ok, host
            # the paper's claim: slides stay synchronized with the video
            assert audit.max_error <= 2 * MediaPlayer.RENDER_TICK, host
            collector.record("max_ms", i, audit.max_error * 1000)
            collector.record("mean_ms", i, audit.mean_error * 1000)
        print("\n[F7] synchronized video + slides playback:")
        print(format_table(
            ["link", "slides", "max sync err (ms)", "mean (ms)",
             "rebuffers", "loss max"],
            [[host, len(audit.per_slide), audit.max_error * 1000,
              audit.mean_error * 1000, report.rebuffer_count,
              max(report.loss_rates.values(), default=0.0)]
             for host, (report, audit) in audits.items()],
        ))
