"""Bench S1 — the paper's §1 claim, quantified.

"OCPN/XOCPN … lack methods to describe the details of synchronization
across distributed platforms and do not deal with the schedule change
caused by user interactions." The extended timed Petri net handles both;
the prioritized net of [13] handles interaction preemption but not
distributed drift. Three sub-benches:

1. **interaction legality** — under a random interactive workload the
   extended model's control subnet accepts every *legal* action and
   rejects every illegal one, while a static OCPN schedule cannot change
   at all (every interaction is a schedule violation);
2. **distributed drift** — replicas with latency/jitter/clock skew, with
   beacons (extended model) vs without (static schedule): drift stays
   bounded vs grows linearly;
3. **prioritized baseline** — interaction transitions preempt playback
   transitions under the priority rule; the extended control subnet gets
   the same preemption *plus* state legality (the prioritized net happily
   fires pause while paused if tokens allow).
"""

import pytest

from benchmarks._harness import run_once

from repro.core.extended import (
    DistributedCoordinator,
    InteractivePlayer,
    SiteLink,
    build_control_net,
)
from repro.core.petri import NotEnabledError
from repro.core.prioritized import PrioritizedPetriNet
from repro.lod import Lecture, apply_to_model, random_script
from repro.metrics import MetricsCollector, format_table


def lecture(n=6, seconds=10.0):
    return Lecture.from_slide_durations(
        "S1 lecture", "Prof", [seconds] * n,
        slide_width=160, slide_height=120,
    )


class TestInteractionHandling:
    def test_extended_model_absorbs_interactive_workload(self, benchmark):
        presentation = lecture().to_presentation()

        def run_workloads():
            rows = []
            for seed in range(8):
                script = random_script(
                    duration=70, seed=seed, pause_rate=0.08, skip_rate=0.04
                )
                result = apply_to_model(presentation, script)
                rows.append((seed, len(script), result.applied,
                             result.rejected, result.player.finished))
            return rows

        rows = run_once(benchmark, run_workloads)
        # every workload completes; only control-net-illegal actions rejected
        assert all(finished for *_, finished in rows)
        total_actions = sum(r[1] for r in rows)
        total_applied = sum(r[2] for r in rows)
        assert total_applied >= total_actions * 0.9
        print("\n[S1a] extended model under random interactive workloads:")
        print(format_table(
            ["seed", "actions", "applied", "rejected", "finished"],
            [list(r) for r in rows],
        ))

    def test_static_ocpn_schedule_cannot_interact(self, benchmark):
        """The OCPN strawman: its schedule is fixed at compile time.

        Formally: the compiled OCPN has no enabled transition that
        corresponds to a user action — the only transitions are the
        timed sync points, so every mid-playout interaction request is a
        NotEnabledError at the model level.
        """
        presentation = lecture().to_presentation()
        benchmark(presentation.compiled.execute)  # time the static schedule
        compiled = presentation.compiled
        net = compiled.timed_net.net
        # no pause/resume/skip transitions exist at all
        names = {t.name for t in net.transitions}
        assert not any(
            n.startswith(("t_pause", "t_resume", "t_skip")) for n in names
        )
        # whereas the extended model's control net has them, guarded
        control = build_control_net()
        with pytest.raises(NotEnabledError):
            control.fire("t_pause")  # illegal before play — guarded, not absent
        control.fire("t_play")
        control.fire("t_pause")  # legal now


class TestDistributedDrift:
    SKEWED = {"site": SiteLink(latency=0.05, jitter=0.02, clock_skew=0.015)}

    def drift_run(self, beacon_interval):
        presentation = lecture(n=2, seconds=60.0).to_presentation()
        coordinator = DistributedCoordinator(
            presentation, dict(self.SKEWED), beacon_interval=beacon_interval
        )
        coordinator.command("play")
        coordinator.advance(100)
        return coordinator

    def test_bench_sync_models(self, benchmark):
        """Drift over time: extended (beacons) vs static (none)."""

        def measure():
            extended = self.drift_run(beacon_interval=1.0)
            static = self.drift_run(beacon_interval=None)
            return extended, static

        extended, static = run_once(benchmark, measure)
        ext_max = extended.max_drift("site")
        sta_max = static.max_drift("site")
        # the shape: beacons bound drift; static drift grows with time
        assert ext_max < 0.2
        assert sta_max > 1.0
        assert sta_max > 5 * ext_max
        collector = MetricsCollector("[S1b] replica drift (s) over time")
        for t, d in extended.drift_samples["site"][::1000]:
            collector.record("extended(beacons)", round(t), d)
        for t, d in static.drift_samples["site"][::1000]:
            collector.record("static(none)", round(t), d)
        print()
        print(collector.as_table(x_label="t(s)"))
        print(f"max drift: extended {ext_max * 1000:.0f} ms, "
              f"static {sta_max * 1000:.0f} ms")


class TestPrioritizedBaseline:
    def make_contention_net(self):
        net = PrioritizedPetriNet("baseline")
        net.add_place("ready", tokens=1)
        net.add_place("played")
        net.add_place("handled")
        net.add_place("interaction_pending", tokens=1)
        net.add_transition("t_render", priority=0)
        net.add_arc("ready", "t_render")
        net.add_arc("t_render", "played")
        net.add_transition("t_user", priority=5)
        net.add_arc("interaction_pending", "t_user")
        net.add_arc("ready", "t_user")
        net.add_arc("t_user", "handled")
        net.add_arc("t_user", "ready")
        return net

    def test_prioritized_preempts_but_lacks_state_guards(self, benchmark):
        def run():
            net = self.make_contention_net()
            order = []
            while net.enabled():
                t = net.enabled()[0]
                net.fire(t)
                order.append(t)
            return order

        order = benchmark(run)
        # preemption: the user interaction fires before rendering
        assert order[0] == "t_user"
        assert "t_render" in order
        # but the prioritized rule alone has no state machine: a second
        # pending interaction token would fire t_user again regardless of
        # player state — the extended control subnet forbids that
        net = self.make_contention_net()
        net.fire("t_user")
        net.marking = net.marking.with_delta({"interaction_pending": 1})
        assert net.enabled()[0] == "t_user"  # fires again, unguarded
        control = build_control_net()
        control.fire("t_play")
        control.fire("t_pause")
        with pytest.raises(NotEnabledError):
            control.fire("t_pause")  # the extended net guards it
        print("\n[S1c] prioritized net: preemption order =", order,
              "(interaction first), but no state legality;"
              " extended control net rejects double-pause")
