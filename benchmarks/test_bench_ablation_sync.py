"""Ablation A1 — script-command sync vs naive wall-clock timer sync.

The design choice under test: the paper synchronizes slides by embedding
script commands in the stream, fired off the *media clock* (so a stall
shifts slides and video together). The ablated alternative fires slides
off a wall-clock timer started at playback begin — what a naive web page
with ``setTimeout`` would do. On a clean link both look fine; on a link
that rebuffers, the timer mode drifts by exactly the accumulated stall
time while script mode stays within a render tick.
"""

import pytest

from benchmarks._harness import run_once

from repro.lod import Lecture, MediaStore, WebPublishingManager
from repro.metrics import format_table
from repro.streaming import MediaPlayer, MediaServer
from repro.web import VirtualNetwork


def run_mode(sync_mode: str, bandwidth: float):
    lecture = Lecture.from_slide_durations(
        "A1", "Prof", [15.0] * 4, slide_width=160, slide_height=120,
    )
    net = VirtualNetwork()
    # deep queue: persistent overload shows up as delay (stalls), not drops
    net.connect("server", "student", bandwidth=bandwidth, delay=0.03,
                queue_limit=10_000)
    server = MediaServer(net, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/v", "/s", lecture)
    manager = WebPublishingManager(store=store, media_server=server)
    record = manager.publish(
        video_path="/v", slide_dir="/s", point="a1", profile="dsl-256k"
    )
    player = MediaPlayer(net, "student", sync_mode=sync_mode)
    report = player.watch(record.url)
    return report


class TestA1ScriptVsTimer:
    def test_clean_link_both_modes_fine(self, benchmark):
        def run_both():
            return (
                run_mode("script", bandwidth=2_000_000),
                run_mode("timer", bandwidth=2_000_000),
            )

        script, timer = run_once(benchmark, run_both)
        assert script.rebuffer_count == 0 and timer.rebuffer_count == 0
        assert script.max_command_sync_error <= 0.1
        assert timer.max_command_sync_error <= 0.2
        print("\n[A1a] clean 2 Mbps link: both modes keep slides in sync")
        print(format_table(
            ["mode", "rebuffers", "max sync err (ms)", "mean (ms)"],
            [["script", script.rebuffer_count,
              script.max_command_sync_error * 1000,
              script.mean_command_sync_error * 1000],
             ["timer", timer.rebuffer_count,
              timer.max_command_sync_error * 1000,
              timer.mean_command_sync_error * 1000]],
        ))

    def test_bench_ablation_sync(self, benchmark):
        """Constrained link: rebuffering desynchronizes the timer mode."""

        def run_both():
            # ~260 kbps stream over a 230 kbps link: guaranteed stalls
            return (
                run_mode("script", bandwidth=230_000),
                run_mode("timer", bandwidth=230_000),
            )

        script, timer = run_once(benchmark, run_both)
        assert script.rebuffer_count > 0  # the link really is too thin
        assert timer.rebuffer_count > 0
        # the paper's design: slides ride the media clock through stalls
        assert script.max_command_sync_error <= 0.2
        # the ablation drifts by roughly the stall time
        assert timer.max_command_sync_error > script.max_command_sync_error * 2
        assert timer.max_command_sync_error >= timer.rebuffer_time * 0.5
        print("\n[A1b] constrained 230 kbps link (stream needs ~260 kbps):")
        print(format_table(
            ["mode", "rebuffers", "stall (s)", "max sync err (s)",
             "mean (s)"],
            [["script", script.rebuffer_count, script.rebuffer_time,
              script.max_command_sync_error,
              script.mean_command_sync_error],
             ["timer", timer.rebuffer_count, timer.rebuffer_time,
              timer.max_command_sync_error,
              timer.mean_command_sync_error]],
        ))
        print("timer-mode slides lead the stalled video by the accumulated "
              "stall time; script commands stay locked to the media clock.")
