"""Load-scale bench — how many modeled viewers one core can carry.

The million-viewer claim of the load harness: cohort aggregation makes
simulation cost grow with the number of *distinct behaviours* (edge x
lecture x join-quantum buckets), not with the audience size. One
deterministic Zipf/flash-crowd workload is replayed at 10k, 100k and 1M
modeled viewers; the per-edge cohort planner collapses each audience
onto the same few hundred delegate sessions, so the event count stays
nearly flat while ``viewers_per_core`` grows three orders of magnitude.

Emits ``BENCH_load_scale.json`` at the repo root (scale rows plus a
real-vs-cohort comparison at an audience small enough to drive for
real) and writes the first run's cProfile top-20-by-cumtime to
``BENCH_load_profile.txt`` — the artifact CI uploads so hot-loop
regressions are visible without rerunning locally. Set
``BENCH_LOAD_SMOKE=1`` for a CI-sized run (one 10k-viewer scale,
bounded under 60 s).
"""

import cProfile
import io
import json
import os
import pstats
import time
from pathlib import Path

from benchmarks._harness import run_once, throughput_fields

from repro.load import (
    LoadConfig,
    WorkloadSpec,
    lecture_catalog,
    run_workload,
)
from repro.metrics import format_table

SMOKE = bool(os.environ.get("BENCH_LOAD_SMOKE"))
LECTURES = 2 if SMOKE else 4
DURATION = 8.0 if SMOKE else 10.0
EDGES = 2 if SMOKE else 4
SCALES = [10_000] if SMOKE else [10_000, 100_000, 1_000_000]
COMPARE_VIEWERS = 0 if SMOKE else 200  # real-mode ground-truth audience
SMOKE_BUDGET_S = 60.0

ROOT = Path(__file__).resolve().parent.parent
PROFILE_PATH = ROOT / "BENCH_load_profile.txt"


def make_spec(viewers, *, churn=0.0, seek=0.0):
    return WorkloadSpec(
        viewers=viewers,
        lectures=lecture_catalog(LECTURES, DURATION, stagger=2.0),
        seed=0,
        zipf_s=1.1,
        flash_fraction=0.9,
        flash_width=2.0,
        churn_rate=churn,
        seek_rate=seek,
        join_quantum=0.5,
    )


def make_config():
    return LoadConfig(edges=EDGES, heartbeat_interval=1.0)


def scale_run(viewers, *, profile_to=None):
    """One cohort-mode run; optionally cProfile it into ``profile_to``."""
    # a sprinkle of individuation at the smallest scale exercises the
    # split/depart paths; the big audiences measure pure aggregation
    churn = 0.0005 if viewers <= 10_000 else 0.0
    spec = make_spec(viewers, churn=churn, seek=churn)
    if profile_to is None:
        return run_workload(spec, mode="cohort", config=make_config())
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_workload(spec, mode="cohort", config=make_config())
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(20)
    profile_to.write_text(
        f"# cProfile top 20 by cumtime — cohort run, "
        f"{viewers} modeled viewers ({'smoke' if SMOKE else 'full'})\n"
        + stream.getvalue()
    )
    return result


class TestLoadScale:
    def test_bench_viewers_per_core(self, benchmark):
        t0 = time.perf_counter()

        def trajectory():
            rows = []
            for i, viewers in enumerate(SCALES):
                rows.append(scale_run(
                    viewers, profile_to=PROFILE_PATH if i == 0 else None,
                ))
            return rows

        rows = run_once(benchmark, trajectory)
        total_wall = time.perf_counter() - t0

        print(f"\n[load] cohort-mode scale trajectory, {EDGES} edges, "
              f"{LECTURES} lectures x {DURATION:.0f}s:")
        print(format_table(
            ["viewers", "sessions", "events", "events/s", "leapt", "wall s"],
            [
                [r.viewers, r.sessions, r.events_processed,
                 f"{r.events_per_sec:,.0f}", r.events_leapt,
                 f"{r.wall_s:.2f}"]
                for r in rows
            ],
        ))

        # -- acceptance bars -------------------------------------------
        by_scale = {}
        for viewers, row in zip(SCALES, rows):
            # 1. the whole modeled audience is carried and measured
            assert row.viewers == viewers
            assert row.qoe["viewers"] == viewers
            assert row.events_per_sec > 0
            assert row.peak_rss > 0
            # 2. aggregation is real: sessions are a tiny fraction of
            #    the audience, not one per viewer
            assert row.sessions * 20 <= viewers
            # 3. beacon-quiet windows were leapt, not ticked through
            assert row.events_leapt > 0
            assert row.beacons > 0
            by_scale[viewers] = row

        if not SMOKE:
            # 4. >= 100k modeled viewers on one core, rate disclosed
            assert any(r.viewers >= 100_000 for r in rows)
            # 5. cost tracks distinct behaviours, not audience size:
            #    10x and 100x the viewers stay within ~2x the events
            base = by_scale[10_000].events_processed
            assert by_scale[100_000].events_processed < base * 2
            assert by_scale[1_000_000].events_processed < base * 2
        else:
            assert total_wall < SMOKE_BUDGET_S

        comparison = {}
        if COMPARE_VIEWERS:
            spec = make_spec(COMPARE_VIEWERS, churn=0.05, seek=0.05)
            cohort = run_workload(spec, mode="cohort", config=make_config())
            real = run_workload(spec, mode="real", config=make_config())
            # same audience accounting, strictly cheaper to simulate
            assert cohort.viewers == real.viewers == COMPARE_VIEWERS
            assert cohort.qoe["viewers"] == real.qoe["viewers"]
            assert cohort.events_processed < real.events_processed
            comparison = {
                "viewers": COMPARE_VIEWERS,
                "cohort": cohort.as_dict(),
                "real": real.as_dict(),
                "event_factor": (
                    real.events_processed / cohort.events_processed
                ),
            }
            print(f"[load] {COMPARE_VIEWERS}-viewer ground truth: "
                  f"real {real.events_processed} events vs cohort "
                  f"{cohort.events_processed} "
                  f"({comparison['event_factor']:.1f}x)")

        assert PROFILE_PATH.exists()

        top = rows[-1]
        _emit(load_scale={
            "rows": [r.as_dict() for r in rows],
            "max_viewers_per_core": top.viewers_per_core,
            "throughput": throughput_fields(top.events_processed, top.wall_s),
            "mode_comparison": comparison,
            "profile_artifact": PROFILE_PATH.name,
        })


def _emit(**section):
    """Merge a result section into BENCH_load_scale.json at repo root."""
    path = ROOT / "BENCH_load_scale.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    payload.update(section)
    payload["config"] = {
        "lectures": LECTURES,
        "lecture_duration_s": DURATION,
        "edges": EDGES,
        "scales": SCALES,
        "zipf_s": 1.1,
        "flash_fraction": 0.9,
        "flash_width_s": 2.0,
        "join_quantum_s": 0.5,
        "heartbeat_interval_s": 1.0,
        "seed": 0,
        "smoke": SMOKE,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
