"""Serving-scale bench — encode once, serve many.

Measures the cost of fanning one lecture out to N concurrent viewers:

* **legacy** (``shared_pacing=False``): every session runs its own packet
  walk — one pacing event plus two link events per packet per session;
* **fast** (shared schedule + ``pacing_quantum``): sessions started
  together ride one pacing group, and packets within one quantum travel
  as a single train — simulator events collapse to one pacing event per
  train plus two link events per train per session.

Also compares the event-driven broadcast fan-out against a replica of the
old 50 ms polling pump, and cold-vs-warm :class:`EncodeCache` encoding.
Emits ``BENCH_serving_scale.json`` at the repo root and asserts the
headline target: >= 5x fewer simulator events at 32 clients with
byte-identical delivered packets.
"""

import json
import os
import time
from pathlib import Path

from benchmarks._harness import run_once

from repro.asf import ASFEncoder, EncodeCache, EncoderConfig, slide_commands
from repro.asf.header import StreamProperties
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics import format_table
from repro.net.engine import PeriodicTask
from repro.net.transport import DatagramChannel, Message
from repro.streaming import MediaServer
from repro.web import VirtualNetwork

PROFILE = get_profile("dsl-256k")
DURATION = 20.0
QUANTUM = 0.5
TARGET_CLIENTS = 32
TARGET_FACTOR = 5.0


def client_counts():
    override = os.environ.get("BENCH_SERVING_CLIENTS")
    if override:
        return [int(n) for n in override.split(",")]
    return [1, 8, 32, 64]


def make_asf(cache=None):
    encoder = ASFEncoder(EncoderConfig(profile=PROFILE), cache=cache)
    slides = 4
    per_slide = DURATION / slides
    return encoder.encode_file(
        file_id="bench-lecture",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(slides)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(slides)]
        ),
    )


def serve_to(asf, clients, **server_kwargs):
    """Stream ``asf`` to ``clients`` sinks; return (events, wall_s, bytes)."""
    net = VirtualNetwork()
    names = [f"c{i}" for i in range(clients)]
    for name in names:
        net.connect("server", name, bandwidth=2_000_000, delay=0.02)
    server = MediaServer(net, "server", port=8080, **server_kwargs)
    server.publish("lecture", asf)
    sinks = {name: [] for name in names}
    for name in names:
        session = server.open_session("lecture", name, sinks[name].append)
        server.play(session.session_id)
    t0 = time.perf_counter()
    net.simulator.run(max_events=5_000_000)
    wall = time.perf_counter() - t0
    blobs = {
        name: b"".join(p.pack() for p in packets)
        for name, packets in sinks.items()
    }
    return net.simulator.events_processed, wall, blobs


class TestServingScale:
    def test_bench_fanout_event_reduction(self, benchmark):
        """Legacy per-session walks vs the shared-schedule fast path."""
        asf = make_asf()

        def sweep():
            rows = []
            identical = True
            for clients in client_counts():
                legacy_events, legacy_wall, legacy_blobs = serve_to(
                    asf, clients, shared_pacing=False
                )
                fast_events, fast_wall, fast_blobs = serve_to(
                    asf, clients, shared_pacing=True, pacing_quantum=QUANTUM
                )
                identical = identical and fast_blobs == legacy_blobs
                rows.append({
                    "clients": clients,
                    "legacy_events": legacy_events,
                    "fast_events": fast_events,
                    "event_factor": legacy_events / fast_events,
                    "legacy_wall_s": legacy_wall,
                    "fast_wall_s": fast_wall,
                    "byte_identical": fast_blobs == legacy_blobs,
                })
            return rows, identical

        rows, identical = run_once(benchmark, sweep)
        print(f"\n[serve] {DURATION:.0f}s lecture, quantum={QUANTUM}s:")
        print(format_table(
            ["clients", "legacy ev", "fast ev", "factor",
             "legacy s", "fast s"],
            [[r["clients"], r["legacy_events"], r["fast_events"],
              f"{r['event_factor']:.1f}x",
              f"{r['legacy_wall_s']:.3f}", f"{r['fast_wall_s']:.3f}"]
             for r in rows],
        ))
        # every client received byte-identical packets on both paths
        assert identical
        by_clients = {r["clients"]: r for r in rows}
        if TARGET_CLIENTS in by_clients:
            # the headline target: >= 5x fewer simulator events at 32
            assert (
                by_clients[TARGET_CLIENTS]["event_factor"] >= TARGET_FACTOR
            )
        _emit(fanout=rows)

    def test_bench_broadcast_poll_vs_event_driven(self, benchmark):
        """The old 50 ms polling pump vs subscriber push, same live feed."""
        from repro.lod import LiveCaptureSession

        viewers = 4
        horizon = 10.0

        def polling_replica():
            """What the seed's broadcast pump did: tick every 50 ms and
            drain packets_due, whether or not anything is flowing."""
            net = VirtualNetwork()
            names = [f"v{i}" for i in range(viewers)]
            for name in names:
                net.connect("server", name, bandwidth=2_000_000, delay=0.02)
            host = net.add_host("srv-poll")
            capture = LiveCaptureSession(
                net.simulator, get_profile("isdn-dual"), chunk=0.5
            )
            sinks = {name: [] for name in names}
            channels = {
                name: DatagramChannel(
                    net.link(host, name),
                    lambda m, sink=sinks[name]: sink.append(m.payload),
                )
                for name in names
            }

            def pump():
                for packet in capture.stream.packets_due(net.simulator.now):
                    for name in names:
                        channels[name].send(
                            Message(packet, packet.packet_size)
                        )

            PeriodicTask(net.simulator, 0.05, pump)
            net.simulator.run_until(horizon)
            capture.finish()
            total = sum(len(s) for s in sinks.values())
            return net.simulator.events_processed, total

        def event_driven():
            net = VirtualNetwork()
            names = [f"v{i}" for i in range(viewers)]
            for name in names:
                net.connect("server", name, bandwidth=2_000_000, delay=0.02)
            server = MediaServer(net, "server", port=8080)
            capture = LiveCaptureSession(
                net.simulator, get_profile("isdn-dual"), chunk=0.5
            )
            server.publish("live", capture.stream)
            sinks = {name: [] for name in names}
            for name in names:
                session = server.open_session("live", name,
                                              sinks[name].append)
                server.play(session.session_id)
            net.simulator.run_until(horizon)
            capture.finish()
            total = sum(len(s) for s in sinks.values())
            return net.simulator.events_processed, total

        def compare():
            return polling_replica(), event_driven()

        (poll_events, poll_delivered), (push_events, push_delivered) = (
            run_once(benchmark, compare)
        )
        print(
            f"\n[serve] broadcast {viewers} viewers over {horizon:.0f}s: "
            f"poll {poll_events} events / {poll_delivered} delivered, "
            f"push {push_events} events / {push_delivered} delivered"
        )
        # both ship the whole feed; push never pays for idle ticks
        assert push_delivered >= poll_delivered
        assert push_events < poll_events
        _emit(broadcast={
            "viewers": viewers,
            "horizon_s": horizon,
            "poll_events": poll_events,
            "push_events": push_events,
            "poll_delivered": poll_delivered,
            "push_delivered": push_delivered,
        })

    def test_bench_encode_cache_cold_warm(self, benchmark):
        """Re-encoding a published lecture is a cache hit, not a re-encode."""

        def cold_then_warm():
            cache = EncodeCache()
            t0 = time.perf_counter()
            cold = make_asf(cache)
            t1 = time.perf_counter()
            warm = make_asf(cache)
            t2 = time.perf_counter()
            return cold, warm, cache, (t1 - t0), (t2 - t1)

        cold, warm, cache, cold_s, warm_s = run_once(benchmark, cold_then_warm)
        print(
            f"\n[serve] encode cold {cold_s * 1000:.2f}ms, "
            f"warm {warm_s * 1000:.3f}ms "
            f"({cold_s / max(warm_s, 1e-9):.0f}x)"
        )
        assert warm is cold  # the warm "encode" is the cached file itself
        assert (cache.hits, cache.misses) == (1, 1)
        assert warm_s < cold_s
        _emit(encode_cache={
            "cold_ms": cold_s * 1000,
            "warm_ms": warm_s * 1000,
            "speedup": cold_s / max(warm_s, 1e-9),
        })


def _emit(**section):
    """Merge a result section into BENCH_serving_scale.json at repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_serving_scale.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    payload.update(section)
    payload["config"] = {
        "duration_s": DURATION,
        "pacing_quantum_s": QUANTUM,
        "profile": "dsl-256k",
        "clients": client_counts(),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
