"""Edge-tier scale bench — the distributed serving tier vs direct origin.

The headline measurement of the edge-relay PR. Two ways to serve the
same 20 s lecture to N viewers:

* **direct**: every viewer opens its own session against the origin —
  origin egress and simulator events grow with N, and viewers arriving
  staggered never coalesce into shared pacing groups;
* **edge tier**: viewers are consistent-hash-placed across E relays.
  Each relay pulls the packet run across the backbone **once**
  (request coalescing: one origin replica session per edge per point),
  caches it, and re-paces locally — ``join_quantum`` folds staggered
  arrivals into shared groups the origin could never form.

A second viewer wave after the first drains re-opens every point from
the **packet-run cache**: the origin sees control-plane opens only, not
one further media byte.

Emits ``BENCH_edge_scale.json`` at the repo root and asserts the
acceptance bar: byte-identical delivery, >= 4x origin egress reduction,
and fewer total simulator events than direct serving. Set
``BENCH_EDGE_SMOKE=1`` for a CI-sized run (2 edges, 12 clients).
"""

import json
import os
import time
from pathlib import Path

from benchmarks._harness import run_once, throughput_fields

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics import format_table
from repro.metrics.counters import get_counters, reset_counters
from repro.streaming import MediaServer, build_edge_tier
from repro.web import VirtualNetwork

SMOKE = bool(os.environ.get("BENCH_EDGE_SMOKE"))
PROFILE = get_profile("dsl-256k")
DURATION = 20.0
QUANTUM = 0.5
EDGES = 2 if SMOKE else 8
CLIENTS = 12 if SMOKE else 64
STAGGER = 0.015  # seconds between viewer arrivals — defeats naive grouping
TARGET_EGRESS_FACTOR = 4.0
MAX_EVENTS = 20_000_000


def make_asf():
    slides = 4
    per_slide = DURATION / slides
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="bench-lecture",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(slides)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(slides)]
        ),
    )


def stagger_wave(net, openers):
    """Schedule each opener STAGGER apart, run the sim dry, return sinks."""
    base = net.simulator.now
    for i, opener in enumerate(openers):
        net.simulator.schedule_at(base + STAGGER * (i + 1), opener)
    net.simulator.run(max_events=MAX_EVENTS)


def serve_direct(asf):
    """Baseline: two waves of CLIENTS staggered viewers straight against
    the origin — the same 2 x CLIENTS delivered streams the edge tier
    serves, so events and egress compare like for like."""
    net = VirtualNetwork()
    names = [f"c{i}" for i in range(CLIENTS)]
    for name in names:
        net.connect("origin", name, bandwidth=2_000_000, delay=0.02)
    origin = MediaServer(
        net, "origin", port=8080,
        shared_pacing=True, pacing_quantum=QUANTUM,
    )
    origin.publish("lecture", asf)

    def run_wave():
        sinks = {name: [] for name in names}
        sessions = {}

        def opener(name):
            session = origin.open_session("lecture", name, sinks[name].append)
            sessions[name] = session.session_id
            origin.play(session.session_id)

        stagger_wave(net, [lambda n=n: opener(n) for n in names])
        for session_id in sessions.values():
            origin.close_session(session_id)
        return {
            n: b"".join(p.pack() for p in s) for n, s in sinks.items()
        }

    t0 = time.perf_counter()
    wave1 = run_wave()
    wave2 = run_wave()
    wall = time.perf_counter() - t0
    return {
        "events": net.simulator.events_processed,
        "origin_bytes": origin.bytes_served,
        "wall_s": wall,
        "wave1": wave1,
        "wave2": wave2,
    }


def serve_edge(asf):
    """EDGES relays, CLIENTS placed by the directory, two viewer waves."""
    reset_counters("edge_cache")
    net = VirtualNetwork()
    origin = MediaServer(
        net, "origin", port=8080,
        shared_pacing=True, pacing_quantum=QUANTUM,
    )
    origin.publish("lecture", asf)
    directory, relays = build_edge_tier(
        net, origin, [f"edge{i}" for i in range(EDGES)],
        pacing_quantum=QUANTUM, join_quantum=QUANTUM,
    )
    by_name = {r.name: r for r in relays}
    assignment = {}
    for i in range(CLIENTS):
        name = f"c{i}"
        relay = by_name[directory.place(f"{name}|lecture")]
        assignment[name] = relay
        net.connect(relay.host, name, bandwidth=2_000_000, delay=0.02)

    # pre-warm: each relay replicates the run across the backbone ONCE
    t0 = time.perf_counter()
    for relay in relays:
        relay.prefetch("lecture")
    fill_bytes = origin.bytes_served

    def run_wave():
        sinks = {name: [] for name in assignment}
        sessions = {}

        def opener(name):
            relay = assignment[name]
            session = relay.open_session("lecture", name, sinks[name].append)
            sessions[name] = (relay, session.session_id)
            relay.play(session.session_id)

        stagger_wave(net, [lambda n=n: opener(n) for n in assignment])
        for relay, session_id in sessions.values():
            relay.close_session(session_id)  # drain: release the points
        return {
            n: b"".join(p.pack() for p in s) for n, s in sinks.items()
        }

    wave1 = run_wave()
    wave1_bytes = origin.bytes_served
    wave2 = run_wave()  # every refill must come from the packet-run cache
    wall = time.perf_counter() - t0
    return {
        "events": net.simulator.events_processed,
        "fill_bytes": fill_bytes,
        "origin_bytes_after_wave1": wave1_bytes,
        "origin_bytes_after_wave2": origin.bytes_served,
        "wall_s": wall,
        "wave1": wave1,
        "wave2": wave2,
        "cache": dict(get_counters("edge_cache").as_dict()),
        "spread": sorted(
            sum(1 for r in assignment.values() if r is relay)
            for relay in relays
        ),
    }


class TestEdgeScale:
    def test_bench_edge_tier_vs_direct(self, benchmark):
        asf = make_asf()
        reference = b"".join(p.pack() for p in asf.packets)

        def compare():
            return serve_direct(asf), serve_edge(asf)

        direct, edge = run_once(benchmark, compare)

        egress_factor = direct["origin_bytes"] / edge["origin_bytes_after_wave1"]
        print(
            f"\n[edge] {CLIENTS} viewers, {EDGES} edges, "
            f"{DURATION:.0f}s lecture:"
        )
        print(format_table(
            ["mode", "events", "origin bytes", "wall s"],
            [
                ["direct", direct["events"], direct["origin_bytes"],
                 f"{direct['wall_s']:.3f}"],
                ["edge", edge["events"], edge["origin_bytes_after_wave1"],
                 f"{edge['wall_s']:.3f}"],
            ],
        ))
        print(
            f"[edge] egress factor {egress_factor:.1f}x, "
            f"cache {edge['cache']}, placement spread {edge['spread']}"
        )

        # -- acceptance bars -------------------------------------------
        # 1. byte parity: every viewer, both waves, both modes, matches
        #    the origin packet run exactly
        for wave in (edge["wave1"], edge["wave2"],
                     direct["wave1"], direct["wave2"]):
            assert len(wave) == CLIENTS
            for blob in wave.values():
                assert blob == reference

        # 2. coalescing: origin egress shrank >= 4x (one backbone fill per
        #    edge replaces per-viewer streams)
        assert egress_factor >= TARGET_EGRESS_FACTOR

        # 3. the whole tier (fills + both waves) costs fewer simulator
        #    events than direct serving of the same two waves: local
        #    re-pacing with join_quantum groups staggered viewers the
        #    origin never could
        assert edge["events"] < direct["events"]

        # 4. the second wave was served off the packet-run cache: zero
        #    further origin media bytes, one hit per edge
        assert edge["origin_bytes_after_wave2"] == edge["origin_bytes_after_wave1"]
        assert edge["origin_bytes_after_wave1"] == edge["fill_bytes"]
        assert edge["cache"]["fills"] == EDGES
        assert edge["cache"]["misses"] == EDGES
        assert edge["cache"]["hits"] == EDGES
        # every edge took a share of the viewers
        assert len(edge["spread"]) == EDGES and edge["spread"][0] >= 1

        _emit(edge_scale={
            "clients": CLIENTS,
            "edges": EDGES,
            "direct_events": direct["events"],
            "edge_events": edge["events"],
            "event_factor": direct["events"] / edge["events"],
            "direct_origin_bytes": direct["origin_bytes"],
            "edge_origin_bytes": edge["origin_bytes_after_wave1"],
            "egress_factor": egress_factor,
            "direct_wall_s": direct["wall_s"],
            "edge_wall_s": edge["wall_s"],
            "wave2_origin_bytes_delta": (
                edge["origin_bytes_after_wave2"]
                - edge["origin_bytes_after_wave1"]
            ),
            "cache": edge["cache"],
            "placement_spread": edge["spread"],
            "throughput": throughput_fields(edge["events"], edge["wall_s"]),
        })


def _emit(**section):
    """Merge a result section into BENCH_edge_scale.json at repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_edge_scale.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    payload.update(section)
    payload["config"] = {
        "duration_s": DURATION,
        "pacing_quantum_s": QUANTUM,
        "join_quantum_s": QUANTUM,
        "stagger_s": STAGGER,
        "profile": "dsl-256k",
        "edges": EDGES,
        "clients": CLIENTS,
        "smoke": SMOKE,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
