"""Robustness bench — scripted faults, recovery on vs off.

Runs the chaos suite's headline scenarios as measured comparisons and
emits ``BENCH_robustness.json`` at the repo root:

* **burst_loss** — 5% Gilbert–Elliott loss on a stored lecture: media
  delivery ratio, rebuffers, NAK/repair counts, command sync;
* **server_crash** — crash at t=6s, restart at t=8s: reconnects, resume
  completeness, duplicate suppression;
* **bandwidth_collapse** — MBR lecture over a link collapsing to
  400 kbit/s: downshifts, rebuffers, watched duration;
* **event_parity** — fault-free run with recovery armed vs not: the
  zero-overhead invariant (identical simulator event counts).
"""

import json
import time
from pathlib import Path

from benchmarks._harness import run_once

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics import format_table
from repro.net import FaultInjector, FaultPlan, GilbertElliott
from repro.streaming import MediaPlayer, MediaServer, PlayerState, RecoveryConfig
from repro.web import VirtualNetwork

PROFILE = get_profile("dsl-256k")
DURATION = 20.0
SLIDES = 4
BURST_AVERAGE = 0.05
MEAN_BURST = 5.0
CRASH_AT, RESTART_AT = 6.0, 8.0
COLLAPSE_AT, COLLAPSE_BPS = 5.0, 400_000.0
HORIZON = 120.0


def make_asf():
    per_slide = DURATION / SLIDES
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="bench-robust",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(SLIDES)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(SLIDES)]
        ),
    )


def mbr_asf():
    renditions = [
        get_profile(n)
        for n in ("modem-56k", "isdn-dual", "dsl-256k", "lan-1m")
    ]
    return ASFEncoder(EncoderConfig(profile=renditions[-1])).encode_file_mbr(
        file_id="bench-mbr",
        video=VideoObject("talk", DURATION, width=640, height=480, fps=25),
        renditions=renditions,
        audio=AudioObject("voice", DURATION),
        commands=slide_commands([("s0", 0.0), ("s1", DURATION / 2)]),
    )


def run_scenario(asf, *, recovery, plan=None, burst_loss=None,
                 qos_enabled=False, register_server=False):
    """One playback under a scripted fault; returns (report, world stats)."""
    net = VirtualNetwork()
    net.connect("server", "student", bandwidth=2_000_000, delay=0.02)
    downlink = net.link("server", "student")
    if burst_loss is not None:
        downlink.set_loss(burst_loss=burst_loss)
    server = MediaServer(net, "server", port=8080, qos_enabled=qos_enabled)
    server.publish("lecture", asf)
    if plan is not None:
        injector = FaultInjector(
            net, servers={"media": server} if register_server else None
        )
        injector.apply(plan)
    player = MediaPlayer(net, "student", recovery=recovery)
    player.connect(server.url_of("lecture"))
    player.play()
    net.simulator.run_until(HORIZON)
    if player.state is not PlayerState.FINISHED:
        player.stop()
    report = player.report()
    return report, {
        "events": net.simulator.events_processed,
        "server_repairs_sent": server.recovery_stats["repairs_sent"],
        "server_downshifts": server.recovery_stats["downshifts"],
        "sessions_created": server.sessions.total_created,
    }


def summarize(report, stats, clean_bytes):
    return {
        "delivery_ratio": (
            report.media_bytes / clean_bytes if clean_bytes else 0.0
        ),
        "media_bytes": report.media_bytes,
        "rebuffer_count": report.rebuffer_count,
        "rebuffer_time_s": round(report.rebuffer_time, 3),
        "duration_watched_s": round(report.duration_watched, 3),
        "slides_fired": len(report.slide_changes()),
        "max_command_sync_error_s": round(report.max_command_sync_error, 4),
        "naks_sent": report.recovery.get("naks_sent", 0),
        "repairs_received": report.recovery.get("repairs_received", 0),
        "reconnects": report.recovery.get("reconnects", 0),
        "downshifts": report.recovery.get("downshifts", 0),
        "server_repairs_sent": stats["server_repairs_sent"],
        "sessions_created": stats["sessions_created"],
    }


class TestRobustnessBench:
    def test_bench_burst_loss_recovery(self, benchmark):
        asf = make_asf()

        def scenario():
            clean, _ = run_scenario(asf, recovery=None)
            model = GilbertElliott.from_average(
                BURST_AVERAGE, mean_burst=MEAN_BURST
            )
            off, off_stats = run_scenario(
                asf, recovery=None, burst_loss=model
            )
            on, on_stats = run_scenario(
                asf, recovery=RecoveryConfig(), burst_loss=model
            )
            return clean, (off, off_stats), (on, on_stats)

        clean, (off, off_stats), (on, on_stats) = run_once(
            benchmark, scenario
        )
        rows = {
            "recovery_off": summarize(off, off_stats, clean.media_bytes),
            "recovery_on": summarize(on, on_stats, clean.media_bytes),
        }
        print(f"\n[robust] {BURST_AVERAGE:.0%} burst loss "
              f"(mean burst {MEAN_BURST:.0f} pkts):")
        print(format_table(
            ["arm", "delivery", "rebuf", "naks", "repairs", "sync err"],
            [[arm, f"{r['delivery_ratio']:.4f}", r["rebuffer_count"],
              r["naks_sent"], r["repairs_received"],
              f"{r['max_command_sync_error_s']:.3f}s"]
             for arm, r in rows.items()],
        ))
        assert rows["recovery_off"]["delivery_ratio"] < 0.99
        assert rows["recovery_on"]["delivery_ratio"] >= 0.99
        assert rows["recovery_on"]["slides_fired"] == SLIDES
        _emit(burst_loss=rows)

    def test_bench_server_crash_resume(self, benchmark):
        asf = make_asf()
        plan = FaultPlan("crash").server_crash(
            "media", at=CRASH_AT, restart_at=RESTART_AT
        )

        def scenario():
            clean, _ = run_scenario(asf, recovery=None)
            on, on_stats = run_scenario(
                asf, recovery=RecoveryConfig(), plan=plan,
                qos_enabled=True, register_server=True,
            )
            return clean, on, on_stats

        clean, on, on_stats = run_once(benchmark, scenario)
        row = summarize(on, on_stats, clean.media_bytes)
        print(f"\n[robust] crash t={CRASH_AT:.0f}s restart "
              f"t={RESTART_AT:.0f}s: delivery {row['delivery_ratio']:.4f}, "
              f"{row['reconnects']} reconnect(s), "
              f"watched {row['duration_watched_s']:.1f}s")
        assert row["reconnects"] >= 1
        assert row["delivery_ratio"] >= 0.999
        assert abs(row["duration_watched_s"] - DURATION) <= 0.3
        _emit(server_crash=row)

    def test_bench_bandwidth_collapse_degradation(self, benchmark):
        asf = mbr_asf()
        plan = FaultPlan("collapse").bandwidth(
            "server", "student", at=COLLAPSE_AT, bps=COLLAPSE_BPS
        )

        def scenario():
            off, off_stats = run_scenario(asf, recovery=None, plan=plan)
            on, on_stats = run_scenario(
                asf, recovery=RecoveryConfig(), plan=plan
            )
            return (off, off_stats), (on, on_stats)

        (off, off_stats), (on, on_stats) = run_once(benchmark, scenario)
        rows = {
            "recovery_off": summarize(off, off_stats, on.media_bytes),
            "recovery_on": summarize(on, on_stats, on.media_bytes),
        }
        print(f"\n[robust] bandwidth collapse to "
              f"{COLLAPSE_BPS / 1000:.0f}kbit/s at t={COLLAPSE_AT:.0f}s: "
              f"off {rows['recovery_off']['rebuffer_count']} rebuffers, "
              f"on {rows['recovery_on']['rebuffer_count']} rebuffers / "
              f"{rows['recovery_on']['downshifts']} downshift(s)")
        assert rows["recovery_on"]["downshifts"] >= 1
        assert (
            rows["recovery_on"]["rebuffer_count"]
            < rows["recovery_off"]["rebuffer_count"]
        )
        _emit(bandwidth_collapse=rows)

    def test_bench_fault_free_event_parity(self, benchmark):
        asf = make_asf()

        def scenario():
            t0 = time.perf_counter()
            off, off_stats = run_scenario(asf, recovery=None)
            t1 = time.perf_counter()
            on, on_stats = run_scenario(asf, recovery=RecoveryConfig())
            t2 = time.perf_counter()
            return (off, off_stats, t1 - t0), (on, on_stats, t2 - t1)

        (off, off_stats, off_wall), (on, on_stats, on_wall) = run_once(
            benchmark, scenario
        )
        print(f"\n[robust] fault-free parity: off {off_stats['events']} "
              f"events / {off_wall:.3f}s, on {on_stats['events']} events "
              f"/ {on_wall:.3f}s")
        # recovery armed but unused costs not one simulator event
        assert on_stats["events"] == off_stats["events"]
        assert on.media_bytes == off.media_bytes
        _emit(event_parity={
            "recovery_off_events": off_stats["events"],
            "recovery_on_events": on_stats["events"],
            "identical": on_stats["events"] == off_stats["events"],
            "recovery_off_wall_s": off_wall,
            "recovery_on_wall_s": on_wall,
        })


def _emit(**section):
    """Merge a result section into BENCH_robustness.json at repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    payload.update(section)
    payload["config"] = {
        "duration_s": DURATION,
        "profile": "dsl-256k",
        "burst_average": BURST_AVERAGE,
        "mean_burst_packets": MEAN_BURST,
        "crash_at_s": CRASH_AT,
        "restart_at_s": RESTART_AT,
        "collapse_at_s": COLLAPSE_AT,
        "collapse_bps": COLLAPSE_BPS,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
