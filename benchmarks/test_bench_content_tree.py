"""Benches F1/F2/E23/F3/F4 — the content-tree figures and worked example.

The paper's only concrete numbers are the ``LevelNodes`` values of §2.3
and Figures 3–4; each bench regenerates them exactly and times the
operation it illustrates. F2 additionally sweeps tree size to show the
per-level presentation-time computation scaling.
"""

import random

import pytest

from repro.contenttree import Abstractor, ContentTree, build_example_tree
from repro.metrics import MetricsCollector, format_table


class TestF1TreeConstruction:
    """Figure 1: building a multiple-level content tree."""

    def build(self, levels=4, fanout=3):
        tree = ContentTree()
        tree.initialize("root", 20)
        counter = 0
        frontier = ["root"]
        for _ in range(levels - 1):
            next_frontier = []
            for parent in frontier:
                for _ in range(fanout):
                    counter += 1
                    name = f"n{counter}"
                    tree.attach(name, 20, parent=parent)
                    next_frontier.append(name)
            frontier = next_frontier
        return tree

    def test_fig1_tree_construction(self, benchmark):
        tree = benchmark(self.build)
        assert tree.highest_level == 3
        assert len(tree) == 1 + 3 + 9 + 27
        tree.validate()
        print("\n[F1] 4-level content tree, fanout 3:")
        print(format_table(
            ["level", "nodes", "LevelNodes[q] (s)"],
            [[q, len(tree.level_nodes(q)), tree.presentation_time(q)]
             for q in range(tree.highest_level + 1)],
        ))


class TestF2LevelDurations:
    """Figure 2: 'the higher level gives the longer presentation'."""

    def test_fig2_level_durations(self, benchmark):
        tree = build_example_tree()

        values = benchmark(tree.level_values)
        assert values == [20.0, 60.0, 100.0]
        assert values == sorted(values)  # monotone in level
        print("\n[F2] per-level presentation time (paper example):")
        print(format_table(
            ["level", "duration (s)", "segments"],
            [[q, values[q],
              " ".join(n.name for n in tree.presentation_at(q))]
             for q in range(len(values))],
        ))

    def test_fig2_scaling_sweep(self, benchmark):
        """presentation_time over randomly grown trees of increasing size."""
        collector = MetricsCollector("[F2] level-duration scaling")

        def grow(n_nodes: int) -> ContentTree:
            rng = random.Random(7)
            tree = ContentTree()
            tree.initialize("root", 10)
            names = ["root"]
            for i in range(n_nodes - 1):
                name = f"n{i}"
                tree.attach(name, 10, parent=rng.choice(names))
                names.append(name)
            return tree

        for size in (10, 100, 1_000):
            tree = grow(size)
            values = tree.level_values()
            collector.record("levels", size, len(values))
            collector.record("total_s", size, values[-1])
            assert values[-1] == size * 10  # deepest level plays everything

        big = grow(1_000)
        benchmark(big.level_values)
        print()
        print(collector.as_table(x_label="nodes"))


class TestE23WorkedExample:
    """§2.3: the four build steps with every printed LevelNodes value."""

    def test_sec23_build_steps(self, benchmark):
        def build_with_checkpoints():
            checkpoints = []
            tree = ContentTree()
            tree.initialize("S0", 20)
            checkpoints.append((tree.highest_level, tree.level_values()))
            tree.attach("S1", 20, level=1)
            checkpoints.append((tree.highest_level, tree.level_values()))
            tree.attach("S2", 20, level=2)
            checkpoints.append((tree.highest_level, tree.level_values()))
            tree.attach("S3", 20, level=2)
            tree.attach("S4", 20, level=1)
            checkpoints.append((tree.highest_level, tree.level_values()))
            return tree, checkpoints

        tree, checkpoints = benchmark(build_with_checkpoints)
        # the paper's printed values, step by step
        assert checkpoints[0] == (0, [20.0])
        assert checkpoints[1][0] == 1 and checkpoints[1][1][1] == 40.0
        assert checkpoints[2][0] == 2 and checkpoints[2][1][2] == 60.0
        assert checkpoints[3][0] == 2
        assert checkpoints[3][1][1] == 60.0 and checkpoints[3][1][2] == 100.0
        print("\n[E23] §2.3 build steps (paper-printed values reproduced):")
        rows = []
        labels = ["step1 add S0", "step2 add S1", "step3 add S2",
                  "step4 add S3,S4"]
        for label, (highest, values) in zip(labels, checkpoints):
            rows.append([label, highest,
                         " ".join(f"{v:g}" for v in values)])
        print(format_table(["step", "highestLevel", "LevelNodes[:]"], rows))


class TestF3Insert:
    """Figure 3: insert S5 at level 1 → LevelNodes = 20 / 60 / 120."""

    def test_fig3_insert(self, benchmark):
        def insert():
            tree = build_example_tree()
            tree.insert("S5", 20, parent="S0", adopt=["S4"])
            return tree

        tree = benchmark(insert)
        values = tree.level_values()
        assert values == [20.0, 60.0, 120.0]  # the paper's printed numbers
        assert tree.node("S5").level == 1
        assert tree.node("S4").level == 2
        print("\n[F3] insert S5 (level 1): LevelNodes =",
              " / ".join(f"{v:g}" for v in values),
              "(matches the paper's 20/60/120)")


class TestF4Delete:
    """Figure 4: delete S5; children adopted by sibling S1."""

    def test_fig4_delete(self, benchmark):
        def delete():
            tree = build_example_tree()
            tree.insert("S5", 20, parent="S0", adopt=["S4"])
            tree.delete("S5")
            return tree

        tree = benchmark(delete)
        assert "S5" not in tree
        assert tree.node("S4").parent.name == "S1"  # adopted by the sibling
        print("\n[F4] delete S5: S4 adopted by sibling S1; LevelNodes =",
              " / ".join(f"{v:g}" for v in tree.level_values()))
        print(tree.render())


class TestAbstractorThroughput:
    """Supporting micro-bench: Abstractor budget queries."""

    def test_abstractor_budget_query(self, benchmark):
        rng = random.Random(3)
        tree = ContentTree()
        tree.initialize("root", 5)
        names = ["root"]
        for i in range(500):
            name = f"n{i}"
            tree.attach(name, rng.randint(5, 30), parent=rng.choice(names))
            names.append(name)
        abstractor = Abstractor(tree)
        total = tree.presentation_time(tree.highest_level)
        level = benchmark(abstractor.level_for_budget, total / 2)
        assert 0 <= level <= tree.highest_level
