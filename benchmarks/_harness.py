"""Shared helpers for the benchmark suite."""

import resource
import time


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavy end-to-end scenario with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def peak_rss_bytes():
    """Peak resident set size of this process in bytes.

    Linux reports ``ru_maxrss`` in KiB; this is a high-water mark for the
    whole process, so compare runs in separate processes (or read deltas
    with care) when isolating one scenario's footprint.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def measure(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, wall_seconds)``."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def throughput_fields(events, wall_s):
    """The uniform rate/footprint block every ``BENCH_*.json`` carries."""
    return {
        "events": events,
        "wall_s": wall_s,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
        "peak_rss_bytes": peak_rss_bytes(),
    }
