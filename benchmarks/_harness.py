"""Shared helpers for the benchmark suite."""


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavy end-to-end scenario with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
