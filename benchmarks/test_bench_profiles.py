"""Bench S2 — bandwidth profiles vs link capacity (§2.1/§2.5).

"The more high bit rate means the content will be encoded to a more
high-resolution content." The profile ladder trades quality for rate; the
configuration window's job is to match the audience's connection. The
bench reproduces the two shapes behind that advice:

* **quality ladder** — encoding one source at every profile: modeled
  quality and resolution rise monotonically with bitrate;
* **profile × link matrix** — streaming each profile over each link:
  above-capacity pairs stall (rebuffer), matched pairs play clean, and
  :func:`repro.media.profiles.select_profile` picks the best clean row
  (the crossover the configuration window encodes).
"""

import pytest

from benchmarks._harness import run_once

from repro.lod import Lecture, MediaStore, WebPublishingManager
from repro.media import STANDARD_PROFILES, VideoObject, select_profile
from repro.metrics import format_table
from repro.streaming import MediaPlayer, MediaServer
from repro.web import VirtualNetwork

SOURCE = VideoObject("master", 30.0, width=640, height=480, fps=25)


class TestQualityLadder:
    def test_profile_quality_monotone(self, benchmark):
        def encode_all():
            rows = []
            for profile in STANDARD_PROFILES:
                encoded = profile.encode_video(SOURCE)
                scaled = profile.configure_video(SOURCE)
                rows.append(
                    (profile.name, profile.total_bitrate / 1000,
                     f"{scaled.width}x{scaled.height}@{scaled.fps:g}",
                     encoded.quality, encoded.compression_ratio)
                )
            return rows

        rows = run_once(benchmark, encode_all)
        # the paper's literal claim: "more high bit rate means ... more
        # high-resolution content" — resolution is monotone in rate
        resolutions = [int(r[2].split("x")[0]) for r in rows]
        assert resolutions == sorted(resolutions)
        rates = [r[1] for r in rows]
        assert rates == sorted(rates)
        # at a fixed resolution, more bits = higher modeled quality
        by_resolution = {}
        for name, kbps, video, quality, _ in rows:
            by_resolution.setdefault(video.split("@")[0], []).append(quality)
        for resolution, qualities in by_resolution.items():
            assert qualities == sorted(qualities), resolution
        print("\n[S2a] the profile ladder ('higher bit rate -> higher "
              "resolution'):")
        print(format_table(
            ["profile", "kbps", "video", "quality", "compression"],
            [list(r) for r in rows],
        ))


class TestProfileLinkMatrix:
    LINKS = {  # name -> usable bitrate
        "modem-56k": 56_000,
        "isdn-128k": 128_000,
        "dsl-512k": 512_000,
        "lan-2m": 2_000_000,
    }
    PROFILES = ("modem-28k", "isdn-dual", "dsl-256k", "lan-1m")

    def stream_once(self, profile_name, link_bps):
        lecture = Lecture.from_slide_durations(
            "S2", "Prof", [10.0, 10.0], slide_width=160, slide_height=120,
        )
        net = VirtualNetwork()
        net.connect("server", "student", bandwidth=link_bps, delay=0.03)
        server = MediaServer(net, "server", port=8080)
        store = MediaStore()
        store.register_lecture("/v", "/s", lecture)
        manager = WebPublishingManager(server, store)
        record = manager.publish(
            video_path="/v", slide_dir="/s", point="m", profile=profile_name
        )
        player = MediaPlayer(net, "student")
        try:
            report = player.watch(record.url, )
        except Exception:
            return None  # hopelessly stalled
        return report

    def test_bench_profile_link_matrix(self, benchmark):
        def sweep():
            matrix = {}
            for profile in self.PROFILES:
                for link, bps in self.LINKS.items():
                    matrix[(profile, link)] = self.stream_once(profile, bps)
            return matrix

        matrix = run_once(benchmark, sweep)
        rows = []
        for profile in self.PROFILES:
            row = [profile]
            for link in self.LINKS:
                report = matrix[(profile, link)]
                if report is None:
                    row.append("stall")
                else:
                    row.append(
                        f"{report.rebuffer_count}rb/{report.rebuffer_time:.1f}s"
                    )
            rows.append(row)
        print("\n[S2b] rebuffering: profile (rows) x link (cols):")
        print(format_table(["profile", *self.LINKS.keys()], rows))

        # shape 1: matched/over-provisioned pairs play clean
        clean = matrix[("dsl-256k", "dsl-512k")]
        assert clean is not None and clean.rebuffer_count == 0
        lan = matrix[("lan-1m", "lan-2m")]
        assert lan is not None and lan.rebuffer_count == 0
        # shape 2: an over-rate profile on a thin link stalls
        over = matrix[("dsl-256k", "modem-56k")]
        assert over is None or over.rebuffer_count > 0
        over2 = matrix[("lan-1m", "isdn-128k")]
        assert over2 is None or over2.rebuffer_count > 0

    def test_select_profile_matches_clean_rows(self, benchmark):
        """select_profile picks the highest profile that streams clean."""
        choices = benchmark(
            lambda: {link: select_profile(bps).name
                     for link, bps in self.LINKS.items()}
        )
        assert choices["modem-56k"] == "modem-28k"
        assert choices["isdn-128k"] == "modem-56k"
        assert choices["dsl-512k"] == "dsl-256k"
        assert choices["lan-2m"] == "lan-1m"
        print("\n[S2c] select_profile per link:", choices)
