"""Bench S3 (extension) — intelligent streaming and fast start.

Two encoder/server features of the era's Windows Media stack that the
paper's workflow sat on top of, implemented and quantified here:

* **multi-bitrate (MBR)**: one published file carries several video
  renditions; the server picks the best one per client link and thins the
  rest. Shape: a single high-rate encoding stalls on slow links while the
  MBR publish plays clean everywhere, trading resolution instead.
* **fast start**: the preroll is delivered at N× real time. Shape:
  startup latency falls roughly as preroll/N, with no effect on sync or
  steady-state pacing.
"""

import pytest

from benchmarks._harness import run_once

from repro.asf import ASFEncoder, EncoderConfig
from repro.media import AudioObject, VideoObject, get_profile
from repro.metrics import format_table
from repro.streaming import MediaPlayer, MediaServer
from repro.web import VirtualNetwork

RENDITIONS = [get_profile(n) for n in
              ("modem-56k", "isdn-dual", "dsl-256k", "lan-1m")]
SOURCE = VideoObject("talk", 20.0, width=640, height=480, fps=25)


def encode_single():
    return ASFEncoder(EncoderConfig(profile=get_profile("lan-1m"))).encode_file(
        file_id="single", video=SOURCE, audio=AudioObject("voice", 20.0)
    )


def encode_mbr():
    encoder = ASFEncoder(EncoderConfig(profile=RENDITIONS[-1]))
    return encoder.encode_file_mbr(
        file_id="mbr", video=SOURCE, renditions=RENDITIONS,
        audio=AudioObject("voice", 20.0),
    )


def watch(asf, bandwidth):
    net = VirtualNetwork()
    net.connect("server", "student", bandwidth=bandwidth, delay=0.03,
                queue_limit=10_000)
    server = MediaServer(net, "server", port=8080)
    server.publish("p", asf)
    player = MediaPlayer(net, "student")
    try:
        report = player.watch(server.url_of("p"), )
    except Exception:
        return None, None
    chosen = None
    if player.selected_video is not None:
        chosen = asf.header.stream(player.selected_video).extra.get("profile")
    return report, chosen


class TestS3MBR:
    LINKS = {"modem-80k": 80_000, "isdn-200k": 200_000,
             "dsl-400k": 400_000, "lan-5m": 5_000_000}

    def test_bench_mbr_vs_single_rate(self, benchmark):
        def sweep():
            single = encode_single()
            mbr = encode_mbr()
            rows = []
            for link, bps in self.LINKS.items():
                s_report, _ = watch(single, bps)
                m_report, m_profile = watch(mbr, bps)
                rows.append((link, s_report, m_report, m_profile))
            return rows

        rows = run_once(benchmark, sweep)
        table = []
        for link, s_report, m_report, m_profile in rows:
            single_cell = (
                "stall" if s_report is None
                else f"{s_report.rebuffer_count}rb/{s_report.rebuffer_time:.1f}s"
            )
            table.append([
                link, single_cell,
                f"{m_report.rebuffer_count}rb", m_profile,
            ])
            # the shape: MBR plays clean on every link
            assert m_report is not None and m_report.rebuffer_count == 0, link
        print("\n[S3a] single 1 Mbps encoding vs MBR publish:")
        print(format_table(
            ["link", "single-rate", "MBR", "MBR rendition"], table
        ))
        # single-rate stalls on every link below its bitrate
        slow = [r for r in rows if self.LINKS[r[0]] < 900_000]
        assert all(
            s is None or s.rebuffer_count > 0 for _, s, _, _ in slow
        )
        # MBR renditions scale with the link
        profiles = [r[3] for r in rows]
        assert profiles == ["modem-56k", "isdn-dual", "dsl-256k", "lan-1m"]


class TestS3FastStart:
    def test_bench_fast_start(self, benchmark):
        asf = encode_single()

        def sweep():
            rows = []
            for factor in (1.0, 2.0, 5.0, 10.0):
                net = VirtualNetwork()
                net.connect("server", "student", bandwidth=10e6, delay=0.02)
                server = MediaServer(net, "server", port=8080)
                server.publish("p", asf)
                player = MediaPlayer(net, "student")
                player.connect(server.url_of("p"))
                player.play(burst_factor=factor)
                report = player.run_until_finished()
                rows.append((factor, report))
            return rows

        rows = run_once(benchmark, sweep)
        startups = [r.startup_latency for _, r in rows]
        assert startups == sorted(startups, reverse=True)
        assert startups[-1] < startups[0] / 2.5  # 10x burst ≥ 2.5x faster start
        for factor, report in rows:
            assert report.rebuffer_count == 0, factor
            assert report.max_command_sync_error <= 0.1, factor
        print("\n[S3b] fast start: burst factor vs startup latency:")
        print(format_table(
            ["burst", "startup (s)", "rebuffers", "max sync err (ms)"],
            [[f, r.startup_latency, r.rebuffer_count,
              r.max_command_sync_error * 1000] for f, r in rows],
        ))
