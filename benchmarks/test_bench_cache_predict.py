"""Predictive-cache bench — prefetch warming, scan resistance, invalidation.

Quantifies the content-aware cache layer end to end and emits
``BENCH_cache_predict.json`` at the repo root:

* **flash_warm** — a multi-region flash crowd served three ways: cold
  (no warming), planner-warmed wave 1 (the :class:`PrefetchPlanner`
  pulls every scheduled lecture onto the region parents before its
  start time), and wave 2 riding the same warm tier. The headline
  acceptance: the warmed wave's *viewer-window* origin egress (total
  minus the egress the prefetch itself paid) is at most 2× wave 2's —
  the cold-fill cost moved out of the viewer window entirely;
* **scan_resistance** — a 50-lecture sequential catalog scan against a
  hot-set-loaded cache, LRU vs TinyLFU admission: TinyLFU must retain
  ≥90% of the hot set where plain LRU drops below 50%;
* **republish_invalidation** — a ``replace=True`` grid republish over a
  relay tree with every edge holding the point: the push reaches every
  holder, the refill costs exactly one origin egress per region (leaves
  refill intra-region off their parent), and no stale byte survives the
  invalidation instant — refilled runs are byte-identical to the new
  origin generation.

Every serving-tier run is traced and audited by :class:`TraceChecker`,
including the prefetch invariants (spans match, warmed bytes within the
declared budget and byte-identical to origin, no prefetch of retired
points). ``BENCH_CACHE_SMOKE=1`` shrinks to one seed and a small tier
for CI (<60 s).
"""

import json
import os
from pathlib import Path

from benchmarks._harness import run_once

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.catalog import CatalogIndex, PrefetchConfig, TinyLFUAdmission
from repro.lod import Lecture, LODPublisher
from repro.load import LoadConfig, WorkloadSpec, lecture_catalog, run_workload
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics import format_table
from repro.metrics.counters import Counters, get_counters, reset_counters
from repro.obs import TraceChecker, Tracer
from repro.streaming import MediaServer, build_relay_tree
from repro.streaming.edge import PacketRunCache
from repro.web import VirtualNetwork

SMOKE = bool(os.environ.get("BENCH_CACHE_SMOKE"))
SEEDS = [0] if SMOKE else [0, 1, 2]

EDGES = 8 if SMOKE else 64
REGIONS = 2 if SMOKE else 4
VIEWERS = 400 if SMOKE else 1500
LECTURES = 4 if SMOKE else 8
LECTURE_S = 20.0
STAGGER = 5.0
LEAD_TIME = 3.0


# ----------------------------------------------------------------------
# section 1: flash crowd, cold vs prefetch-warmed
# ----------------------------------------------------------------------

def flash_spec(seed):
    return WorkloadSpec(
        viewers=VIEWERS,
        lectures=lecture_catalog(LECTURES, LECTURE_S, stagger=STAGGER),
        seed=seed,
        zipf_s=1.1,
        flash_fraction=0.7,
        flash_width=2.0,
        join_quantum=0.5,
    )


def flash_config(*, prefetch, tracer=None, client_prefix=""):
    return LoadConfig(
        edges=EDGES,
        regions=REGIONS,
        prefetch=prefetch,
        cache_admission=True,
        teardown=True,
        tracer=tracer,
        client_prefix=client_prefix,
    )


def measure_flash_warm(seed):
    spec = flash_spec(seed)

    # cold baseline: every region parent fills inside the viewer window
    cold_tracer = Tracer("bench-cache-cold")
    cold = run_workload(
        spec, mode="cohort",
        config=flash_config(prefetch=False, tracer=cold_tracer),
    )
    TraceChecker(cold_tracer.records).assert_ok()
    cold_origin = cold.control["origin"]["bytes_served"]

    # warmed wave 1 + wave 2 share one tier and one audited trace
    tracer = Tracer("bench-cache-warm")
    wave1 = run_workload(
        spec, mode="cohort",
        config=flash_config(
            prefetch=PrefetchConfig(lead_time=LEAD_TIME), tracer=tracer,
        ),
        keep_tier=True,
    )
    wave2 = run_workload(
        spec, mode="cohort",
        config=flash_config(
            prefetch=PrefetchConfig(lead_time=LEAD_TIME), tracer=tracer,
            client_prefix="w2-",
        ),
        tier=wave1.tier,
    )
    checker = TraceChecker(tracer.records).assert_ok()

    w1 = wave1.control
    w2 = wave2.control
    w1_viewer = (
        w1["origin"]["bytes_served"] - w1["prefetch"]["origin_egress_bytes"]
    )
    w2_viewer = (
        w2["origin"]["bytes_served"] - w2["prefetch"]["origin_egress_bytes"]
    )
    return {
        "viewers": wave1.viewers,
        "cold_origin_bytes": cold_origin,
        "warm_w1_origin_bytes": w1["origin"]["bytes_served"],
        "warm_w1_prefetch_bytes": w1["prefetch"]["origin_egress_bytes"],
        "warm_w1_viewer_window_bytes": w1_viewer,
        "warm_w2_viewer_window_bytes": w2_viewer,
        "prefetch_items": w1["prefetch"]["items"] + w2["prefetch"]["items"],
        "prefetch_ok": w1["prefetch"]["ok"] + w2["prefetch"]["ok"],
        "warmed_bytes": w1["prefetch"]["warmed_bytes"],
        # None = the warmed wave paid zero in-window (ratio unbounded)
        "cold_vs_warm_viewer_ratio": (
            cold_origin / w1_viewer if w1_viewer else None
        ),
        "qoe_cold_startup_p90": cold.qoe.get("startup_delay", {}).get("p90"),
        "qoe_warm_startup_p90": wave1.qoe.get("startup_delay", {}).get("p90"),
        "prefetch_spans_audited": checker.prefetch_spans,
        "events": wave1.events_processed + wave2.events_processed,
    }


# ----------------------------------------------------------------------
# section 2: sequential catalog scan vs the hot set
# ----------------------------------------------------------------------

SCAN_CATALOG = 50
HOT_SET = 10
CACHE_SLOTS = 12  # budget holds the hot set plus a little slack


def small_asf(name):
    return ASFEncoder(
        EncoderConfig(profile=get_profile("modem-56k"))
    ).encode_file(
        file_id=name,
        video=VideoObject("talk", 4.0, width=160, height=120, fps=5),
        audio=AudioObject("voice", 4.0),
        images=[(ImageObject("s0", 4.0, width=160, height=120), 0.0)],
        commands=slide_commands([("s0", 0.0)]),
    )


def measure_scan(seed, *, tinylfu):
    counters = Counters()
    runs = {f"scan{i}": small_asf(f"scan{i}") for i in range(SCAN_CATALOG)}
    keys = {name: asf.fingerprint() for name, asf in runs.items()}
    size = len(runs["scan0"].header.pack()) + sum(
        len(b) for b in runs["scan0"].packed_packets()
    )
    admission = (
        TinyLFUAdmission(seed=seed, width=1024, counters=counters)
        if tinylfu else None
    )
    cache = PacketRunCache(
        max_bytes=size * CACHE_SLOTS + size // 2,
        counters=counters,
        admission=admission,
    )

    hot = [f"scan{i}" for i in range(HOT_SET)]
    for name in hot:
        cache.store(keys[name], runs[name])
    # the hot set earns its keep: several rounds of real traffic
    for _ in range(6):
        for name in hot:
            cache.lookup(keys[name])

    # one-shot sequential scan of the whole catalog
    for i in range(SCAN_CATALOG):
        name = f"scan{i}"
        if cache.lookup(keys[name]) is None:
            cache.store(keys[name], runs[name])

    retained = sum(1 for name in hot if keys[name] in cache)
    hits_before = counters["hits"]
    for name in hot:
        cache.lookup(keys[name])
    hot_hits = counters["hits"] - hits_before
    return {
        "policy": "tinylfu" if tinylfu else "lru",
        "hot_set": HOT_SET,
        "hot_retained": retained,
        "hot_retention": retained / HOT_SET,
        "hot_hit_rate_after_scan": hot_hits / HOT_SET,
        "admission_rejected": counters["admission_rejected"],
        "evictions": counters["evictions"],
    }


# ----------------------------------------------------------------------
# section 3: republish invalidation over the relay tree
# ----------------------------------------------------------------------

INV_POINT = "qt-l1-dsl-256k"


def inv_lecture(durations=(12, 8, 10, 6)):
    return Lecture.from_slide_durations(
        "Queueing Theory", "Prof", list(durations),
        importances=[0, 1, 0, 1], slide_width=160, slide_height=120,
    )


def measure_invalidation(seed):
    reset_counters("edge_cache")
    tracer = Tracer("bench-cache-inv")
    net = VirtualNetwork()
    tracer.bind_clock(net.simulator)
    origin = MediaServer(
        net, "origin", port=8080, pacing_quantum=0.5,
        trace_label="origin", tracer=tracer,
    )
    regions = {f"r{i}": [f"r{i}e0", f"r{i}e1"] for i in range(REGIONS)}
    directory, parents, leaves = build_relay_tree(
        net, origin, regions,
        pacing_quantum=0.5, seed=seed, tracer=tracer,
    )
    catalog = CatalogIndex()
    publisher = LODPublisher(
        origin, renditions=[get_profile("dsl-256k")],
        edge_directory=directory, catalog=catalog, tracer=tracer,
    )
    publisher.publish(inv_lecture(), "qt", levels=[1])
    old_key = origin.points[INV_POINT].content.fingerprint()

    relays = list(parents.values()) + list(leaves)
    for relay in relays:
        relay.prefetch(INV_POINT)
    holders_before = directory.holders(INV_POINT)
    assert len(holders_before) == len(relays)

    egress_before_republish = origin.bytes_served
    result = publisher.publish(
        inv_lecture((12, 8, 11, 6)), "qt", levels=[1], replace=True,
    )
    new_ref = origin.points[INV_POINT].content
    new_key = new_ref.fingerprint()
    counters = get_counters("edge_cache")
    invalidated = counters["invalidations"]
    stale_after_push = [
        r.name for r in relays
        if old_key in r.cache or r._cache_keys.get(INV_POINT) == old_key
    ]

    # every leaf re-warms: the first per region pulls the parent (one
    # origin egress each), the rest ride intra-region
    refill_egress_before = origin.bytes_served
    for leaf in leaves:
        leaf.prefetch(INV_POINT)
    refill_egress = origin.bytes_served - refill_egress_before
    # fill egress is packet bytes; the header travels on the describe
    run_bytes = sum(len(b) for b in new_ref.packed_packets())

    byte_identical = all(
        b"".join(p.pack() for p in leaf.cache.lookup(new_key).packets)
        == b"".join(p.pack() for p in new_ref.packets)
        for leaf in leaves
    )
    for relay in relays:
        relay.shutdown()
    net.simulator.run(max_events=5_000_000)
    TraceChecker(tracer.records).assert_ok()
    return {
        "relays": len(relays),
        "holders_before": len(holders_before),
        "invalidations_pushed": result.invalidations_pushed,
        "edges_invalidated": invalidated,
        "stale_after_push": stale_after_push,
        "stale_serves": counters["stale_serves"],
        "refill_origin_bytes": refill_egress,
        "run_bytes": run_bytes,
        "origin_refills": (
            refill_egress / run_bytes if run_bytes else float("inf")
        ),
        "regions": len(regions),
        "byte_identical": byte_identical,
        "republish_egress_bytes": refill_egress_before
        - egress_before_republish,
        "catalog_key_fresh": catalog.entry(INV_POINT).cache_key == new_key,
    }


# ----------------------------------------------------------------------
# the bench entry points
# ----------------------------------------------------------------------

class TestCachePredictBench:
    def test_bench_flash_warm(self, benchmark):
        def scenario():
            return {s: measure_flash_warm(s) for s in SEEDS}

        rows = run_once(benchmark, scenario)
        print("\n[cache] flash crowd, cold vs prefetch-warmed:")
        print(format_table(
            ["seed", "cold origin", "w1 viewer-window", "w1 prefetch",
             "w2 viewer-window", "warmed"],
            [[s, r["cold_origin_bytes"], r["warm_w1_viewer_window_bytes"],
              r["warm_w1_prefetch_bytes"], r["warm_w2_viewer_window_bytes"],
              r["warmed_bytes"]] for s, r in rows.items()],
        ))
        for r in rows.values():
            assert r["prefetch_ok"] == r["prefetch_items"] > 0
            # the headline: warming moves the cold fill out of the viewer
            # window — wave 1 serves like an already-warm wave 2
            assert (
                r["warm_w1_viewer_window_bytes"]
                <= 2 * r["warm_w2_viewer_window_bytes"]
            )
            # and the cold baseline really did pay in-window
            assert r["cold_origin_bytes"] > r["warm_w1_viewer_window_bytes"]
            assert r["prefetch_spans_audited"] == r["prefetch_items"]
        _emit(flash_warm={str(s): r for s, r in rows.items()})

    def test_bench_scan_resistance(self, benchmark):
        def scenario():
            return {
                s: {
                    "lru": measure_scan(s, tinylfu=False),
                    "tinylfu": measure_scan(s, tinylfu=True),
                }
                for s in SEEDS
            }

        rows = run_once(benchmark, scenario)
        print("\n[cache] 50-lecture sequential scan vs the hot set:")
        print(format_table(
            ["seed", "policy", "retained", "retention", "rejected"],
            [[s, r["policy"], f"{r['hot_retained']}/{r['hot_set']}",
              f"{r['hot_retention']:.0%}", r["admission_rejected"]]
             for s, arms in rows.items() for r in arms.values()],
        ))
        for arms in rows.values():
            assert arms["tinylfu"]["hot_retention"] >= 0.9
            assert arms["tinylfu"]["hot_hit_rate_after_scan"] >= 0.9
            assert arms["lru"]["hot_retention"] < 0.5
            assert arms["tinylfu"]["admission_rejected"] > 0
        _emit(scan_resistance={str(s): r for s, r in rows.items()})

    def test_bench_republish_invalidation(self, benchmark):
        def scenario():
            return {s: measure_invalidation(s) for s in SEEDS}

        rows = run_once(benchmark, scenario)
        print("\n[cache] republish invalidation over the relay tree:")
        print(format_table(
            ["seed", "holders", "pushed", "origin refills", "stale serves",
             "byte-identical"],
            [[s, r["holders_before"], r["invalidations_pushed"],
              f"{r['origin_refills']:.2f}", r["stale_serves"],
              r["byte_identical"]] for s, r in rows.items()],
        ))
        for r in rows.values():
            # the push reached every holding edge, none kept stale state
            assert r["invalidations_pushed"] == r["holders_before"]
            assert r["edges_invalidated"] == r["holders_before"]
            assert r["stale_after_push"] == []
            # exactly one origin re-fill per region
            assert r["origin_refills"] == r["regions"]
            # zero stale bytes after the invalidation instant
            assert r["stale_serves"] == 0
            assert r["byte_identical"] is True
            assert r["catalog_key_fresh"] is True
        _emit(republish_invalidation={str(s): r for s, r in rows.items()})


def _emit(**section):
    """Merge a result section into BENCH_cache_predict.json at repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_cache_predict.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    payload.update(section)
    payload["config"] = {
        "smoke": SMOKE,
        "seeds": SEEDS,
        "edges": EDGES,
        "regions": REGIONS,
        "viewers": VIEWERS,
        "lectures": LECTURES,
        "lead_time_s": LEAD_TIME,
        "scan_catalog": SCAN_CATALOG,
        "hot_set": HOT_SET,
        "cache_slots": CACHE_SLOTS,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
