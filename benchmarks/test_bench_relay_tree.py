"""Relay-tree bench — hierarchical fills vs the flat edge tier.

The headline measurement of the relay-tree PR. The same cold wave —
every edge in the deployment replicating a 20 s lecture from scratch —
served two ways:

* **flat** (PR 5): every edge fills straight from the origin, so a
  64-edge cold wave costs the origin 64 whole-run egresses across the
  backbone;
* **tree**: edges are grouped into regions under one parent relay each.
  The first leaf of a region warms its parent (one origin egress per
  *region*); every other leaf fills from a sibling or the warm parent.
  Fill-source attribution comes out of the ``edge_cache`` counters, and
  the whole wave is traced and audited — fill-loop freedom, backbone
  budget honesty — for chaos seeds 0-2.

Emits ``BENCH_relay_tree.json`` at the repo root and asserts the
acceptance bar: byte-identical replicas on every leaf, >= 4x origin
egress reduction, and a clean :class:`TraceChecker` pass per seed. Set
``BENCH_TREE_SMOKE=1`` for a CI-sized run (8 edges, 2 regions).
"""

import json
import os
import time
from pathlib import Path

from benchmarks._harness import run_once, throughput_fields

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics import format_table
from repro.metrics.counters import get_counters, reset_counters
from repro.obs import TraceChecker, Tracer
from repro.streaming import (
    BackboneBudget,
    MediaServer,
    build_edge_tier,
    build_relay_tree,
)
from repro.web import VirtualNetwork

SMOKE = bool(os.environ.get("BENCH_TREE_SMOKE"))
PROFILE = get_profile("dsl-256k")
DURATION = 20.0
QUANTUM = 0.5
EDGES = 8 if SMOKE else 64
REGIONS = 2 if SMOKE else 4
SEEDS = (0, 1, 2)
TARGET_EGRESS_FACTOR = 4.0
MAX_EVENTS = 20_000_000


def make_asf():
    slides = 4
    per_slide = DURATION / slides
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="bench-lecture",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(slides)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(slides)]
        ),
    )


def blob_of(packets):
    return b"".join(p.pack() for p in packets)


def region_map():
    per_region = EDGES // REGIONS
    return {
        f"r{r}": [f"e{r}x{i}" for i in range(per_region)]
        for r in range(REGIONS)
    }


def serve_flat(asf):
    """Baseline cold wave: EDGES relays each fill from the origin."""
    reset_counters("edge_cache")
    net = VirtualNetwork()
    origin = MediaServer(
        net, "origin", port=8080,
        shared_pacing=True, pacing_quantum=QUANTUM,
    )
    origin.publish("lecture", asf)
    directory, relays = build_edge_tier(
        net, origin, [f"edge{i}" for i in range(EDGES)],
        pacing_quantum=QUANTUM,
    )
    t0 = time.perf_counter()
    for relay in relays:
        relay.prefetch("lecture")
    wall = time.perf_counter() - t0
    origin_bytes = origin.bytes_served
    for relay in relays:
        relay.shutdown()
    net.simulator.run(max_events=MAX_EVENTS)
    assert len(origin.sessions) == 0
    return {
        "events": net.simulator.events_processed,
        "origin_bytes": origin_bytes,
        "origin_sessions": origin.sessions.total_created,
        "wall_s": wall,
    }


def serve_tree(asf, seed, reference):
    """Tree cold wave: the same EDGES leaves under REGIONS parents."""
    reset_counters("edge_cache")
    net = VirtualNetwork()
    tracer = Tracer(f"tree-bench-{seed}", clock=net.simulator)
    net.simulator.tracer = tracer
    origin = MediaServer(
        net, "origin", port=8080,
        shared_pacing=True, pacing_quantum=QUANTUM,
        trace_label="origin", tracer=tracer,
    )
    origin.publish("lecture", asf)
    budget = BackboneBudget(tracer=tracer)
    directory, parents, leaves = build_relay_tree(
        net, origin, region_map(),
        pacing_quantum=QUANTUM, seed=seed,
        backbone_budget=budget, tracer=tracer,
    )

    t0 = time.perf_counter()
    for leaf in leaves:
        leaf.prefetch("lecture")
    wall = time.perf_counter() - t0
    origin_bytes = origin.bytes_served

    # byte parity: every leaf's replica is identical to the origin run
    for leaf in leaves:
        assert blob_of(leaf.points["lecture"].content.packets) == reference

    # one viewer per region streams end to end through the tree
    sinks = []
    for r in range(REGIONS):
        leaf = leaves[r * (EDGES // REGIONS)]
        viewer = f"v{r}"
        net.connect(leaf.host, viewer, bandwidth=2_000_000, delay=0.02)
        sink = []
        session = leaf.open_session("lecture", viewer, sink.append)
        leaf.play(session.session_id, burst_factor=8.0)
        sinks.append(sink)
    net.simulator.run(max_events=MAX_EVENTS)
    for sink in sinks:
        assert blob_of(sink) == reference

    for leaf in leaves:
        leaf.shutdown()
    for parent in parents.values():
        parent.shutdown()
    net.simulator.run(max_events=MAX_EVENTS)
    assert len(origin.sessions) == 0
    budget.assert_no_leaks()
    checker = TraceChecker(tracer.records).assert_ok()
    return {
        "seed": seed,
        "events": net.simulator.events_processed,
        "origin_bytes": origin_bytes,
        "origin_sessions": origin.sessions.total_created,
        "wall_s": wall,
        "cache": dict(get_counters("edge_cache").as_dict()),
        "checker": checker.summary(),
    }


class TestRelayTreeScale:
    def test_bench_tree_vs_flat_cold_wave(self, benchmark):
        asf = make_asf()
        reference = blob_of(asf.packets)

        def compare():
            flat = serve_flat(asf)
            trees = [serve_tree(asf, seed, reference) for seed in SEEDS]
            return flat, trees

        flat, trees = run_once(benchmark, compare)
        tree = trees[0]
        egress_factor = flat["origin_bytes"] / tree["origin_bytes"]
        print(
            f"\n[tree] cold wave, {EDGES} edges, {REGIONS} regions, "
            f"{DURATION:.0f}s lecture:"
        )
        print(format_table(
            ["mode", "origin bytes", "origin sessions", "wall s"],
            [
                ["flat", flat["origin_bytes"], flat["origin_sessions"],
                 f"{flat['wall_s']:.3f}"],
                ["tree", tree["origin_bytes"], tree["origin_sessions"],
                 f"{tree['wall_s']:.3f}"],
            ],
        ))
        print(
            f"[tree] egress factor {egress_factor:.1f}x, "
            f"cache {tree['cache']}"
        )

        # -- acceptance bars -------------------------------------------
        # 1. the cold wave's origin egress shrank >= 4x: one egress per
        #    region replaces one per edge (byte parity asserted inside
        #    serve_tree for every leaf and every end-to-end viewer)
        assert egress_factor >= TARGET_EGRESS_FACTOR

        # 2. fill attribution: parents pulled the origin, first leaves
        #    pulled parents, everyone else pulled a sibling
        for result in trees:
            cache = result["cache"]
            assert cache["origin_fills"] == REGIONS
            assert cache["parent_fills"] == REGIONS
            assert cache["sibling_fills"] == EDGES - REGIONS
            assert cache["fills"] == EDGES + REGIONS
            assert result["origin_sessions"] == REGIONS

        # 3. the full tree audit holds for every chaos seed: no fill
        #    loops, backbone never over-reserved, every reservation
        #    released
        for result in trees:
            summary = result["checker"]
            assert summary["violations"] == 0
            assert summary["fill_requests_seen"] == EDGES + REGIONS
            assert summary["backbone_reservations"] == \
                summary["backbone_releases"] > 0

        _emit(relay_tree={
            "edges": EDGES,
            "regions": REGIONS,
            "flat_origin_bytes": flat["origin_bytes"],
            "tree_origin_bytes": tree["origin_bytes"],
            "egress_factor": egress_factor,
            "flat_origin_sessions": flat["origin_sessions"],
            "tree_origin_sessions": tree["origin_sessions"],
            "flat_wall_s": flat["wall_s"],
            "tree_wall_s": tree["wall_s"],
            "cache": tree["cache"],
            "seeds_audited": list(SEEDS),
            "checker": tree["checker"],
            "throughput": throughput_fields(tree["events"], tree["wall_s"]),
        })


def _emit(**section):
    """Merge a result section into BENCH_relay_tree.json at repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_relay_tree.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    payload.update(section)
    payload["config"] = {
        "duration_s": DURATION,
        "pacing_quantum_s": QUANTUM,
        "profile": "dsl-256k",
        "edges": EDGES,
        "regions": REGIONS,
        "seeds": list(SEEDS),
        "smoke": SMOKE,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
