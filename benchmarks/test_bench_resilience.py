"""Resilience bench — detection latency, drain vs crash, hand-off rate.

Quantifies the self-healing tier's three headline numbers and emits
``BENCH_resilience.json`` at the repo root:

* **detection_latency** — an edge is killed cold; how long until the
  heartbeat monitor suspects it (bounded by the miss threshold), per
  seed, with zero false suspicions on the healthy peer;
* **drain_vs_crash** — the same viewer loses its edge both ways: a
  graceful :meth:`EdgeRelay.drain` (warm hand-off) versus a hard crash
  (stall watchdog + reconnect). Planned removal must cost ~0 rebuffer;
  the crash path is the nonzero baseline it is measured against;
* **handoff_success** — a loaded edge drains with live sessions; the
  fraction handed off warm (vs dropped to the crash path) must be 1.0
  when the successor is healthy.

``BENCH_RESILIENCE_SMOKE=1`` shrinks to one seed for CI (<60 s).
"""

import json
import os
from pathlib import Path

from benchmarks._harness import run_once

from repro.asf import ASFEncoder, EncoderConfig, slide_commands
from repro.media import AudioObject, ImageObject, VideoObject, get_profile
from repro.metrics import format_table
from repro.metrics.counters import reset_counters
from repro.net import FaultInjector, FaultPlan
from repro.streaming import (
    MediaPlayer,
    MediaServer,
    PlayerState,
    RecoveryConfig,
    build_edge_tier,
)
from repro.web import VirtualNetwork

from repro.control import HeartbeatMonitor

SMOKE = bool(os.environ.get("BENCH_RESILIENCE_SMOKE"))
SEEDS = [0] if SMOKE else [0, 1, 2]

PROFILE = get_profile("dsl-256k")
DURATION = 20.0
SLIDES = 4
INTERVAL = 0.5
MISS = 3
CRASH_AT = 2.0
REMOVE_AT = 8.0
VIEWERS = 4 if SMOKE else 8
HORIZON = 90.0


def make_asf():
    per_slide = DURATION / SLIDES
    return ASFEncoder(EncoderConfig(profile=PROFILE)).encode_file(
        file_id="bench-resil",
        video=VideoObject("talk", DURATION, width=320, height=240, fps=10),
        audio=AudioObject("voice", DURATION),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(SLIDES)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(SLIDES)]
        ),
    )


def make_tier(asf, *, seed, viewers=("student",)):
    reset_counters("edge_cache")
    net = VirtualNetwork()
    origin = MediaServer(net, "origin", port=8080, pacing_quantum=0.5)
    origin.publish("lecture", asf)
    directory, relays = build_edge_tier(
        net, origin, ["edge0", "edge1"], pacing_quantum=0.5, seed=seed,
    )
    for relay in relays:
        for host in viewers:
            net.connect(relay.host, host, bandwidth=2_000_000, delay=0.02)
            net.link(relay.host, host).rng.seed(1000 + seed)
    return net, origin, directory, relays


def finish(net, player, horizon=HORIZON):
    net.simulator.run_until(horizon)
    if player.state is not PlayerState.FINISHED:
        player.stop()
    return player.report()


def measure_detection(asf, seed):
    net, origin, directory, relays = make_tier(asf, seed=seed)
    monitor = HeartbeatMonitor(
        net, directory, interval=INTERVAL, miss_threshold=MISS, seed=seed,
    )
    monitor.watch_directory()
    monitor.start()
    injector = FaultInjector(net)
    injector.register_directory(directory)
    injector.apply(FaultPlan("kill").edge_crash("edge0", at=CRASH_AT))
    net.simulator.run_until(CRASH_AT + 6.0)
    monitor.stop()
    suspicions = list(monitor.suspicions)
    assert [s["edge"] for s in suspicions] == ["edge0"]
    return {
        "detection_latency_s": round(suspicions[0]["time"] - CRASH_AT, 3),
        "bound_s": (MISS + 2) * INTERVAL,
        "false_suspicions": sum(
            1 for s in suspicions if s["edge"] != "edge0"
        ),
        "events": net.simulator.events_processed,
    }


def measure_removal(asf, seed, *, graceful):
    """One viewer loses its home edge at REMOVE_AT — warm or cold."""
    net, origin, directory, relays = make_tier(asf, seed=seed)
    home = directory.place("student|lecture")
    home_relay = next(r for r in relays if r.name == home)
    player = MediaPlayer(
        net, "student", directory=directory, recovery=RecoveryConfig(),
    )
    player.connect(directory.url_for("student", "lecture"))
    player.play()
    stats = {}
    if graceful:
        net.simulator.schedule_at(
            REMOVE_AT, lambda: stats.update(home_relay.drain(directory))
        )
    else:
        injector = FaultInjector(net)
        injector.register_directory(directory)
        injector.apply(FaultPlan("cold").edge_crash(home, at=REMOVE_AT))
    report = finish(net, player)
    assert abs(report.duration_watched - DURATION) <= 0.5
    return {
        "rebuffer_count": report.rebuffer_count,
        "rebuffer_time_s": round(report.rebuffer_time, 3),
        "stalls": report.recovery.get("stalls_detected", 0),
        "reconnects": report.recovery.get("reconnects", 0),
        "handoffs": report.recovery.get("handoffs", 0),
        "duration_watched_s": round(report.duration_watched, 3),
        "drain_stats": stats,
    }


def measure_handoff_rate(asf, seed):
    hosts = tuple(f"viewer{i}" for i in range(VIEWERS))
    net, origin, directory, relays = make_tier(asf, seed=seed, viewers=hosts)
    players = []
    for host in hosts:
        player = MediaPlayer(
            net, host, user=host, directory=directory,
            recovery=RecoveryConfig(),
        )
        player.connect(directory.url_for(host, "lecture"))
        player.play()
        players.append(player)
    homes = [directory.place(f"{h}|lecture") for h in hosts]
    # drain the edge carrying the most viewers, mid-stream
    target = max(set(homes), key=homes.count)
    relay = next(r for r in relays if r.name == target)
    stats = {}
    net.simulator.schedule_at(
        REMOVE_AT, lambda: stats.update(relay.drain(directory))
    )
    net.simulator.run_until(HORIZON)
    for player in players:
        if player.state is not PlayerState.FINISHED:
            player.stop()
    drained = stats["handoffs"] + stats["fallbacks"]
    handed_off = sum(
        p.report().recovery.get("handoffs", 0) for p in players
    )
    return {
        "sessions_drained": drained,
        "handoffs": stats["handoffs"],
        "fallbacks": stats["fallbacks"],
        "success_rate": stats["handoffs"] / drained if drained else 1.0,
        "clients_relocated": handed_off,
    }


class TestResilienceBench:
    def test_bench_detection_latency(self, benchmark):
        asf = make_asf()

        def scenario():
            return {s: measure_detection(asf, s) for s in SEEDS}

        rows = run_once(benchmark, scenario)
        print("\n[resil] heartbeat detection latency:")
        print(format_table(
            ["seed", "latency", "bound", "false"],
            [[s, f"{r['detection_latency_s']:.3f}s", f"{r['bound_s']:.1f}s",
              r["false_suspicions"]] for s, r in rows.items()],
        ))
        for r in rows.values():
            assert 0.0 < r["detection_latency_s"] <= r["bound_s"] + 0.01
            assert r["false_suspicions"] == 0
        _emit(detection_latency={str(s): r for s, r in rows.items()})

    def test_bench_drain_vs_crash_rebuffer(self, benchmark):
        asf = make_asf()

        def scenario():
            return {
                s: {
                    "drain": measure_removal(asf, s, graceful=True),
                    "crash": measure_removal(asf, s, graceful=False),
                }
                for s in SEEDS
            }

        rows = run_once(benchmark, scenario)
        print("\n[resil] planned drain vs cold crash (same viewer):")
        print(format_table(
            ["seed", "arm", "rebuf", "rebuf time", "stalls", "handoffs"],
            [[s, arm, r["rebuffer_count"], f"{r['rebuffer_time_s']:.3f}s",
              r["stalls"], r["handoffs"]]
             for s, arms in rows.items() for arm, r in arms.items()],
        ))
        for arms in rows.values():
            drain, crash = arms["drain"], arms["crash"]
            # planned removal: one warm hand-off, essentially free
            assert drain["handoffs"] == 1 and drain["stalls"] == 0
            assert drain["rebuffer_time_s"] <= 0.05
            # the crash path is the nonzero baseline
            assert crash["stalls"] >= 1 and crash["reconnects"] >= 1
            assert crash["rebuffer_count"] >= 1
            assert crash["rebuffer_time_s"] > drain["rebuffer_time_s"]
        _emit(drain_vs_crash={str(s): r for s, r in rows.items()})

    def test_bench_handoff_success_rate(self, benchmark):
        asf = make_asf()

        def scenario():
            return {s: measure_handoff_rate(asf, s) for s in SEEDS}

        rows = run_once(benchmark, scenario)
        print("\n[resil] warm hand-off success under drain:")
        print(format_table(
            ["seed", "drained", "handoffs", "fallbacks", "rate"],
            [[s, r["sessions_drained"], r["handoffs"], r["fallbacks"],
              f"{r['success_rate']:.2f}"] for s, r in rows.items()],
        ))
        for r in rows.values():
            assert r["sessions_drained"] >= 1
            assert r["success_rate"] == 1.0
            assert r["clients_relocated"] == r["handoffs"]
        _emit(handoff_success={str(s): r for s, r in rows.items()})


def _emit(**section):
    """Merge a result section into BENCH_resilience.json at repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    payload.update(section)
    payload["config"] = {
        "smoke": SMOKE,
        "seeds": SEEDS,
        "duration_s": DURATION,
        "profile": "dsl-256k",
        "heartbeat_interval_s": INTERVAL,
        "miss_threshold": MISS,
        "crash_at_s": CRASH_AT,
        "remove_at_s": REMOVE_AT,
        "viewers": VIEWERS,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
