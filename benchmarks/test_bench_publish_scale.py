"""Publish-scale bench — the parallel publish pipeline end to end.

Publishes the full **levels × renditions** grid of one lecture three ways:

* **serial** — ``EncodeFarm(0)``, the deterministic in-process baseline;
* **farm** — a warmed ``spawn`` pool of ``WORKERS`` workers, no cache;
* **farm + reuse** — same farm with a segment-level ``EncodeCache``:
  a clean republish and a one-slide-edited republish measure how much of
  the grid is re-encoded.

Emits ``BENCH_publish_scale.json`` at the repo root and asserts the
headline targets: the farm output is **byte-identical** to serial on
every grid cell, parallel publish is >= 2x faster at >= 4 workers, and
segment reuse cuts encodes by >= 50% on a one-slide-changed republish.

**Cost model disclosure.** The repository's codecs are parametric
simulations whose CPU cost is near zero by construction, so raw wall
time would measure only Python bookkeeping. Each encode job therefore
carries ``simulated_cost`` — modeled encoder latency proportional to the
media seconds encoded (see :mod:`repro.asf.farm`) — which shapes
scheduling but never output bytes. The byte-identity and encode-count
results are exact regardless; the speedup quantifies scheduling over the
declared latency model. ``BENCH_PUBLISH_SMOKE=1`` shrinks the grid and
the latency model for CI smoke runs.
"""

import json
import os
import time
from pathlib import Path

from benchmarks._harness import run_once

from repro.asf import EncodeCache, EncodeFarm
from repro.lod import Lecture, LODPublisher
from repro.lod.lecture import LectureSegment
from repro.media import get_profile
from repro.media.objects import ImageObject
from repro.metrics import format_table

SMOKE = os.environ.get("BENCH_PUBLISH_SMOKE", "") not in ("", "0")
WORKERS = 4
if SMOKE:
    DURATIONS = [20, 10, 15, 5]
    IMPORTANCES = [0, 1, 0, 1]  # 2 levels
    RENDITIONS = ["modem-56k", "dsl-256k"]
    COST_PER_MEDIA_SECOND = 0.008
    TARGET_SPEEDUP = 1.3  # smoke grids are small; CI boxes are noisy
else:
    DURATIONS = [20, 10, 15, 5, 20, 10, 15, 5]
    IMPORTANCES = [0, 1, 2, 3, 0, 1, 2, 3]  # 4 levels
    RENDITIONS = ["modem-56k", "dsl-256k", "lan-1m"]
    COST_PER_MEDIA_SECOND = 0.012
    TARGET_SPEEDUP = 2.0


def make_lecture():
    return Lecture.from_slide_durations(
        "Publish Scale Lecture", "Prof", DURATIONS,
        importances=IMPORTANCES, slide_width=320, slide_height=240,
    )


def edit_first_slide(lecture):
    """The republish-after-editing workflow: one slide image replaced."""
    segments = []
    for i, s in enumerate(lecture.segments):
        slide = s.slide
        if i == 0:
            slide = ImageObject(
                "slide0-fixed", s.duration, width=slide.width,
                height=slide.height,
            )
        segments.append(
            LectureSegment(s.name, slide, s.start, s.duration, s.importance)
        )
    return Lecture(
        title=lecture.title, author=lecture.author, video=lecture.video,
        audio=lecture.audio, segments=segments,
    )


def make_publisher(farm=None, cache=None):
    return LODPublisher(
        renditions=[get_profile(name) for name in RENDITIONS],
        farm=farm,
        cache=cache,
        simulated_cost_per_second=COST_PER_MEDIA_SECOND,
    )


def grid_bytes(result):
    return {key: v.asf.pack() for key, v in result.variants.items()}


class TestPublishScale:
    def test_bench_serial_vs_farm(self, benchmark):
        lecture = make_lecture()

        def publish_both_ways():
            serial_pub = make_publisher()
            t0 = time.perf_counter()
            serial = serial_pub.publish(lecture, "grid")
            serial_wall = time.perf_counter() - t0

            with EncodeFarm(WORKERS) as farm:
                farm.warm_up()  # pool start-up is a one-time service cost
                farm_pub = make_publisher(farm=farm)
                t0 = time.perf_counter()
                parallel = farm_pub.publish(lecture, "grid")
                farm_wall = time.perf_counter() - t0
            return serial, serial_wall, parallel, farm_wall

        serial, serial_wall, parallel, farm_wall = run_once(
            benchmark, publish_both_ways
        )
        identical = grid_bytes(serial) == grid_bytes(parallel)
        speedup = serial_wall / max(farm_wall, 1e-9)
        print(
            f"\n[publish] {len(serial.levels)} levels x "
            f"{len(RENDITIONS)} renditions "
            f"({serial.jobs_submitted} jobs, "
            f"{serial.encodes_performed} distinct encodes):"
        )
        print(format_table(
            ["mode", "workers", "wall (s)", "encodes", "dedup hits"],
            [
                ["serial", 0, f"{serial_wall:.3f}",
                 serial.encodes_performed, serial.dedup_hits],
                ["farm", WORKERS, f"{farm_wall:.3f}",
                 parallel.encodes_performed, parallel.dedup_hits],
            ],
        ))
        print(f"[publish] speedup {speedup:.2f}x, byte-identical: {identical}")
        assert identical  # the hard guarantee, on every grid cell
        assert parallel.encodes_performed == serial.encodes_performed
        assert speedup >= TARGET_SPEEDUP
        _emit(grid={
            "levels": list(serial.levels),
            "renditions": RENDITIONS,
            "jobs_submitted": serial.jobs_submitted,
            "encodes_performed": serial.encodes_performed,
            "dedup_hits": serial.dedup_hits,
            "serial_wall_s": serial_wall,
            "farm_wall_s": farm_wall,
            "workers": WORKERS,
            "speedup": speedup,
            "byte_identical": identical,
        })

    def test_bench_segment_reuse(self, benchmark):
        lecture = make_lecture()

        def publish_republish_edit():
            cache = EncodeCache()
            with EncodeFarm(WORKERS, cache=cache) as farm:
                farm.warm_up()
                publisher = make_publisher(farm=farm, cache=cache)
                t0 = time.perf_counter()
                first = publisher.publish(lecture, "grid")
                first_wall = time.perf_counter() - t0

                t0 = time.perf_counter()
                republish = publisher.publish(lecture, "grid")
                republish_wall = time.perf_counter() - t0

                edited = edit_first_slide(lecture)
                t0 = time.perf_counter()
                delta = publisher.publish(edited, "grid-v2")
                delta_wall = time.perf_counter() - t0
            return (
                cache, first, first_wall, republish, republish_wall,
                delta, delta_wall,
            )

        (cache, first, first_wall, republish, republish_wall,
         delta, delta_wall) = run_once(benchmark, publish_republish_edit)
        lookups = cache.segment_hits + cache.segment_misses
        hit_rate = cache.segment_hits / max(lookups, 1)
        encode_cut = 1 - delta.encodes_performed / max(
            first.encodes_performed, 1
        )
        print("\n[publish] segment-level reuse across republishes:")
        print(format_table(
            ["publish", "wall (s)", "encodes", "cache hits"],
            [
                ["cold grid", f"{first_wall:.3f}",
                 first.encodes_performed, first.cache_hits],
                ["identical republish", f"{republish_wall:.3f}",
                 republish.encodes_performed, republish.cache_hits],
                ["one slide edited", f"{delta_wall:.3f}",
                 delta.encodes_performed, delta.cache_hits],
            ],
        ))
        print(
            f"[publish] segment hit rate {hit_rate:.1%}, "
            f"edit republish cuts encodes by {encode_cut:.1%}"
        )
        assert republish.encodes_performed == 0
        assert encode_cut >= 0.5  # the headline reuse target
        assert delta.encodes_performed == 1  # exactly the edited slide
        _emit(reuse={
            "first_wall_s": first_wall,
            "first_encodes": first.encodes_performed,
            "republish_wall_s": republish_wall,
            "republish_encodes": republish.encodes_performed,
            "edit_wall_s": delta_wall,
            "edit_encodes": delta.encodes_performed,
            "encode_cut": encode_cut,
            "segment_hit_rate": hit_rate,
            "segment_hits": cache.segment_hits,
            "segment_misses": cache.segment_misses,
            "bytes_saved": cache.bytes_saved,
        })


def _emit(**section):
    """Merge a result section into BENCH_publish_scale.json at repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_publish_scale.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    payload.update(section)
    payload["config"] = {
        "slides": len(DURATIONS),
        "lecture_seconds": float(sum(DURATIONS)),
        "levels": max(IMPORTANCES) + 1,
        "renditions": RENDITIONS,
        "workers": WORKERS,
        "simulated_cost_per_media_second": COST_PER_MEDIA_SECOND,
        "cost_model": (
            "encode latency modeled as simulated_cost per media-second; "
            "shapes scheduling only, never output bytes"
        ),
        "cpu_count": os.cpu_count(),
        "smoke": SMOKE,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
