"""Ablation A2 — XOCPN prefetch channels vs lazy fetching.

The XOCPN design choice (paper §1): set up network channels and move data
*before* its playout is due, in parallel with earlier playout, instead of
fetching each object when the schedule reaches it. The bench sweeps channel
bandwidth and measures per-object stall and total makespan for both
strategies on the same presentation:

* with generous lead time, prefetch fully hides transfers (zero stall
  beyond the unavoidable first object) while lazy pays every transfer on
  the critical path;
* as bandwidth shrinks, both degrade, but prefetch's makespan stays
  strictly below lazy's — and the gap is the sum of hidden transfer times.
"""

import pytest

from benchmarks._harness import run_once

from repro.core.ocpn import MediaLeaf, parallel, sequence, spec_duration
from repro.core.xocpn import (
    Channel,
    QoSRequirement,
    compile_xocpn,
    measure_stalls,
)
from repro.metrics import MetricsCollector, format_table


def lecture_spec(n_segments=4, seconds=10.0):
    return sequence(*[
        parallel(
            MediaLeaf(f"v{i}", seconds),
            MediaLeaf(f"img{i}", seconds),
        )
        for i in range(n_segments)
    ])


def requirements(n_segments=4, video_bytes=60_000, image_bytes=30_000):
    reqs = {}
    for i in range(n_segments):
        reqs[f"v{i}"] = QoSRequirement(video_bytes, "net")
        reqs[f"img{i}"] = QoSRequirement(image_bytes, "net")
    return reqs


class TestA2Prefetch:
    def test_bench_ablation_prefetch(self, benchmark):
        """Bandwidth sweep: prefetch vs lazy makespan and stalls."""
        spec = lecture_spec()
        reqs = requirements()
        nominal = spec_duration(spec)

        def sweep():
            collector = MetricsCollector(
                "[A2] makespan (s) vs channel bandwidth"
            )
            details = {}
            for bandwidth in (100_000, 50_000, 20_000, 10_000, 5_000):
                channels = {"net": Channel("net", float(bandwidth))}
                for strategy in ("prefetch", "lazy"):
                    compiled = compile_xocpn(
                        spec, channels, reqs, strategy=strategy
                    )
                    report = measure_stalls(compiled)
                    collector.record(strategy, bandwidth / 1000, report.makespan)
                    details[(bandwidth, strategy)] = report
            return collector, details

        collector, details = run_once(benchmark, sweep)
        print()
        print(collector.as_table(x_label="kB/s"))
        print(f"nominal (infinite bandwidth) makespan: {nominal:g}s")

        for bandwidth in (100_000, 50_000, 20_000, 10_000, 5_000):
            pre = details[(bandwidth, "prefetch")]
            lazy = details[(bandwidth, "lazy")]
            # the shape: prefetch never loses, and wins whenever transfers
            # are slow enough to matter
            assert pre.makespan <= lazy.makespan + 1e-9, bandwidth
            assert pre.total_stall <= lazy.total_stall + 1e-9, bandwidth
        # at moderate bandwidth prefetch hides everything except object 0:
        # the unavoidable first-segment stall shifts the whole schedule,
        # but no *additional* stall accumulates on later segments
        pre_50k = details[(50_000, "prefetch")]
        first_stall = max(pre_50k.per_leaf["v0"], pre_50k.per_leaf["img0"])
        later = [s for leaf, s in pre_50k.per_leaf.items()
                 if leaf not in ("v0", "img0")]
        assert max(later) <= first_stall + 1e-6
        lazy_50k = details[(50_000, "lazy")]
        assert lazy_50k.makespan > pre_50k.makespan + 1.0

    def test_prefetch_gap_equals_hidden_transfer_time(self, benchmark):
        """The makespan gap == transfer time moved off the critical path."""
        spec = lecture_spec(n_segments=3)
        reqs = requirements(n_segments=3)
        channels = {"net": Channel("net", 30_000.0)}

        def run_both():
            pre = measure_stalls(
                compile_xocpn(spec, channels, reqs, strategy="prefetch")
            )
            lazy = measure_stalls(
                compile_xocpn(spec, channels, reqs, strategy="lazy")
            )
            return pre, lazy

        pre, lazy = run_once(benchmark, run_both)
        # lazy pays every transfer inline; prefetch pays only what cannot
        # be overlapped (the first object's transfers, and any backlog)
        gap = lazy.makespan - pre.makespan
        assert gap > 0
        print("\n[A2b] 3-segment lecture on a 30 kB/s channel:")
        print(format_table(
            ["strategy", "makespan (s)", "total stall (s)", "stalled leaves"],
            [["prefetch", pre.makespan, pre.total_stall,
              len(pre.stalled_leaves)],
             ["lazy", lazy.makespan, lazy.total_stall,
              len(lazy.stalled_leaves)]],
        ))
        print(f"prefetch hides {gap:.2f}s of transfer behind playout")

    def test_two_channels_beat_one(self, benchmark):
        """QoS channel assignment: splitting media across channels helps."""
        spec = lecture_spec(n_segments=3)
        reqs_one = requirements(n_segments=3)
        reqs_two = {
            leaf: QoSRequirement(req.size, "a" if leaf.startswith("v") else "b")
            for leaf, req in reqs_one.items()
        }

        def run_both():
            one = measure_stalls(compile_xocpn(
                spec, {"net": Channel("net", 20_000.0)}, reqs_one,
                strategy="prefetch",
            ))
            two = measure_stalls(compile_xocpn(
                spec,
                {"a": Channel("a", 10_000.0), "b": Channel("b", 10_000.0)},
                reqs_two, strategy="prefetch",
            ))
            return one, two

        one, two = run_once(benchmark, run_both)
        # same aggregate bandwidth; parallel channels reduce the worst
        # first-object stall because video and image transfer concurrently
        assert two.per_leaf["img0"] <= one.per_leaf["img0"] + 1e-9
        print(f"\n[A2c] one 20 kB/s channel vs two 10 kB/s channels: "
              f"img0 stall {one.per_leaf['img0']:.2f}s -> "
              f"{two.per_leaf['img0']:.2f}s")
