"""Failover bench — parent-crash recovery latency and live stall cost.

Quantifies region parent failover end to end and emits
``BENCH_failover.json`` at the repo root:

* **crash_failover** — the regional parent is killed cold under a live
  broadcast with viewers on every leaf. Measured per seed: how long
  until the heartbeat monitor suspects it and the region is re-parented
  (bounded by the miss threshold — failover runs synchronously inside
  the suspicion sweep), how many live feeds migrated, the worst viewer
  stall, and that every viewer still sees the whole broadcast exactly
  once with a leak-free backbone budget and a clean
  :class:`TraceChecker` audit;
* **planned_vs_crash** — the same region loses its parent both ways: an
  operator-initiated :meth:`HeartbeatMonitor.fail_over_now` (planned
  maintenance, no detection wait — the PR 7 planned-drain analogue for
  the parent tier) versus a hard crash. The planned arm's stall must be
  a fraction of the crash arm's, whose floor is the detection window.

``BENCH_FAILOVER_SMOKE=1`` shrinks to one seed for CI (<60 s).
"""

import json
import os
from pathlib import Path

from benchmarks._harness import run_once

from repro.control import HeartbeatMonitor
from repro.lod import LiveCaptureSession
from repro.media import get_profile
from repro.metrics import format_table
from repro.metrics.counters import get_counters, reset_counters
from repro.obs import TraceChecker, Tracer
from repro.streaming import BackboneBudget, MediaServer, build_relay_tree
from repro.web import VirtualNetwork

SMOKE = bool(os.environ.get("BENCH_FAILOVER_SMOKE"))
SEEDS = [0] if SMOKE else [0, 1, 2]

INTERVAL = 0.5
MISS = 3
DETECTION_BOUND = MISS * INTERVAL + 2 * INTERVAL + 0.01
EVENT_AT = 3.0
BROADCAST_S = 8.0


def make_live_tree(seed, tracer, budget):
    reset_counters("edge_cache")
    net = VirtualNetwork()
    tracer.bind_clock(net.simulator)
    net.simulator.tracer = tracer
    origin = MediaServer(
        net, "origin", port=8080, pacing_quantum=0.5,
        trace_label="origin", tracer=tracer,
    )
    capture = LiveCaptureSession(
        net.simulator, get_profile("isdn-dual"), chunk=0.5
    )
    origin.publish("live", capture.stream)
    directory, parents, leaves = build_relay_tree(
        net, origin, {"r0": ["e0", "e1"]},
        pacing_quantum=0.5, seed=seed, backbone_budget=budget, tracer=tracer,
    )
    for leaf in leaves:
        net.connect(leaf.host, "viewer", bandwidth=2_000_000, delay=0.02)
    monitor = HeartbeatMonitor(
        net, directory, interval=INTERVAL, miss_threshold=MISS,
        seed=seed, tracer=tracer,
    )
    monitor.watch_directory()
    monitor.start()
    return net, origin, directory, parents, leaves, monitor, capture


def measure_failover(seed, *, planned):
    """One live region loses its parent at EVENT_AT — planned or cold."""
    tracer = Tracer("bench-failover")
    budget = BackboneBudget(tracer=tracer)
    net, origin, directory, parents, leaves, monitor, capture = \
        make_live_tree(seed, tracer, budget)
    parent = parents["r0"]

    # per-leaf viewer sinks, with arrival timestamps for stall analysis
    arrivals = {leaf.name: [] for leaf in leaves}

    def sink_for(name):
        def deliver(packet):
            arrivals[name].append((net.simulator.now, packet.sequence))
        return deliver

    sessions = {}
    for leaf in leaves:
        sessions[leaf.name] = leaf.open_session(
            "live", "viewer", sink_for(leaf.name)
        )
        leaf.play(sessions[leaf.name].session_id)

    net.simulator.run_until(EVENT_AT)
    if planned:
        monitor.fail_over_now(parent.name)
        parent.shutdown()
    else:
        parent.crash()
    net.simulator.run_until(EVENT_AT + DETECTION_BOUND + 1.0)

    assert len(monitor.failovers) == 1
    failover = monitor.failovers[0]
    latency = failover["time"] - EVENT_AT

    net.simulator.run_until(BROADCAST_S + 1.0)
    capture.finish()
    monitor.stop()
    net.simulator.run(max_events=5_000_000)

    sent = {p.sequence for p in capture.stream.packets}
    stalls = {}
    for name, log in arrivals.items():
        got = [seq for _, seq in log]
        assert len(got) == len(set(got)), f"{name} saw duplicates"
        assert set(got) == sent, f"{name} missed live packets"
        times = [t for t, _ in log]
        gaps = [b - a for a, b in zip(times, times[1:])]
        pre = [g for g, t in zip(gaps, times[1:]) if t <= EVENT_AT]
        nominal = max(pre) if pre else 0.5
        stalls[name] = max(0.0, max(gaps) - nominal)

    for leaf in leaves:
        leaf.close_session(sessions[leaf.name].session_id)
        leaf.shutdown()
    net.simulator.run(max_events=1_000_000)
    budget.assert_no_leaks()
    checker = TraceChecker(tracer.records).assert_ok()
    counters = get_counters("edge_cache")
    return {
        "mode": failover["mode"],
        "failover_latency_s": round(latency, 3),
        "bound_s": round(DETECTION_BOUND, 3),
        "feeds_migrated": failover["feeds_migrated"],
        "feeds_dropped": failover["feeds_dropped"],
        "forced_releases": len(failover["forced_releases"])
        if isinstance(failover["forced_releases"], list)
        else failover["forced_releases"],
        "worst_stall_s": round(max(stalls.values()), 3),
        "stalls_by_leaf": {k: round(v, 3) for k, v in stalls.items()},
        "packets_broadcast": len(sent),
        "gap_naks": counters.get("live_gap_naks", 0),
        "duplicates_dropped": counters.get("live_duplicates_dropped", 0),
        "budget_leaks": 0,
        "checker_feeds_migrated": checker.feeds_migrated,
        "events": net.simulator.events_processed,
    }


class TestFailoverBench:
    def test_bench_crash_failover(self, benchmark):
        def scenario():
            return {s: measure_failover(s, planned=False) for s in SEEDS}

        rows = run_once(benchmark, scenario)
        print("\n[failover] parent crash under live broadcast:")
        print(format_table(
            ["seed", "latency", "bound", "migrated", "worst stall", "naks"],
            [[s, f"{r['failover_latency_s']:.3f}s", f"{r['bound_s']:.2f}s",
              r["feeds_migrated"], f"{r['worst_stall_s']:.3f}s",
              r["gap_naks"]] for s, r in rows.items()],
        ))
        for r in rows.values():
            assert r["mode"] == "promote"
            assert 0.0 < r["failover_latency_s"] <= r["bound_s"]
            assert r["feeds_migrated"] == 2 and r["feeds_dropped"] == 0
            # the stall a viewer sees is the detection window plus the
            # catch-up, never an unbounded outage
            assert r["worst_stall_s"] <= r["bound_s"] + 2.0
        _emit(crash_failover={str(s): r for s, r in rows.items()})

    def test_bench_planned_vs_crash(self, benchmark):
        def scenario():
            return {
                s: {
                    "planned": measure_failover(s, planned=True),
                    "crash": measure_failover(s, planned=False),
                }
                for s in SEEDS
            }

        rows = run_once(benchmark, scenario)
        print("\n[failover] planned maintenance vs cold crash (same region):")
        print(format_table(
            ["seed", "arm", "latency", "worst stall", "migrated"],
            [[s, arm, f"{r['failover_latency_s']:.3f}s",
              f"{r['worst_stall_s']:.3f}s", r["feeds_migrated"]]
             for s, arms in rows.items() for arm, r in arms.items()],
        ))
        for arms in rows.values():
            planned, crash = arms["planned"], arms["crash"]
            # no detection wait on the planned path
            assert planned["failover_latency_s"] <= 0.05
            assert planned["feeds_migrated"] == 2
            # the crash arm pays the detection window; the planned arm
            # must cost well under half of it
            assert planned["worst_stall_s"] < crash["worst_stall_s"]
            assert planned["worst_stall_s"] <= 1.0
        _emit(planned_vs_crash={str(s): r for s, r in rows.items()})


def _emit(**section):
    """Merge a result section into BENCH_failover.json at repo root."""
    path = Path(__file__).resolve().parent.parent / "BENCH_failover.json"
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    payload.update(section)
    payload["config"] = {
        "smoke": SMOKE,
        "seeds": SEEDS,
        "profile": "isdn-dual",
        "broadcast_s": BROADCAST_S,
        "heartbeat_interval_s": INTERVAL,
        "miss_threshold": MISS,
        "detection_bound_s": round(DETECTION_BOUND, 3),
        "event_at_s": EVENT_AT,
        "regions": 1,
        "leaves": 2,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
