"""TinyLFU-style admission for the packet-run cache.

Plain LRU admits everything, so a one-shot sequential scan of a
50-lecture catalog flushes the hot set an edge spent all day earning.
TinyLFU (Einziger, Friedman & Manes) fixes that with three small,
deterministic pieces:

* :class:`CountMinSketch` — a count-min sketch with 4-bit saturating
  counters and periodic *halving* (aging), so frequency estimates track
  a sliding window rather than all of history;
* :class:`Doorkeeper` — a Bloom filter absorbing first occurrences, so
  one-hit wonders never consume sketch counters;
* :class:`TinyLFUAdmission` — the policy object: on a full cache, a
  candidate is admitted only if its estimated frequency *beats* the LRU
  victim's. Ties favour the resident — exactly what makes a scan bounce
  off a hot set.

Everything is seeded and hashes through sha1, so admission decisions
are reproducible across processes and independent of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

from ..metrics.counters import Counters, get_counters


def _hash_pair(seed: int, salt: str, key: str) -> Tuple[int, int]:
    """Two independent 64-bit hash values for double hashing."""
    digest = hashlib.sha1(f"{seed}:{salt}:{key}".encode()).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:16], "big") | 1  # odd: full-period stride
    return h1, h2


class CountMinSketch:
    """Count-min sketch with 4-bit saturating counters and halving.

    ``width`` is rounded up to a power of two. Counters saturate at 15
    (the 4-bit ceiling; byte-backed for speed, nibble semantics).
    :meth:`halve` ages every counter by one bit — the caller decides
    when (TinyLFU resets once a sample window's worth of increments has
    accumulated).
    """

    MAX_COUNT = 15

    def __init__(self, *, width: int = 1024, depth: int = 4, seed: int = 0) -> None:
        if width < 2 or depth < 1:
            raise ValueError("sketch needs width >= 2 and depth >= 1")
        self.width = 1 << (width - 1).bit_length()
        self.depth = depth
        self.seed = seed
        self._rows: List[bytearray] = [
            bytearray(self.width) for _ in range(depth)
        ]
        self.increments = 0

    def _indexes(self, key: str) -> List[int]:
        h1, h2 = _hash_pair(self.seed, "cms", key)
        mask = self.width - 1
        return [(h1 + i * h2) & mask for i in range(self.depth)]

    def increment(self, key: str) -> None:
        self.increments += 1
        for row, idx in zip(self._rows, self._indexes(key)):
            if row[idx] < self.MAX_COUNT:
                row[idx] += 1

    def estimate(self, key: str) -> int:
        return min(
            row[idx] for row, idx in zip(self._rows, self._indexes(key))
        )

    def halve(self) -> None:
        """Age the window: every counter drops to half (floor)."""
        for row in self._rows:
            for i, value in enumerate(row):
                if value:
                    row[i] = value >> 1
        self.increments = 0


class Doorkeeper:
    """A small Bloom filter holding keys seen exactly once so far.

    The first access to a key lands here instead of the sketch; only
    repeat accesses earn sketch counters. Cleared on every sketch reset
    so its (one-sided) error also ages out.
    """

    def __init__(self, *, bits: int = 8192, hashes: int = 2, seed: int = 0) -> None:
        if bits < 8 or hashes < 1:
            raise ValueError("doorkeeper needs bits >= 8 and hashes >= 1")
        self.bits = 1 << (bits - 1).bit_length()
        self.hashes = hashes
        self.seed = seed
        self._filter = bytearray(self.bits // 8)

    def _positions(self, key: str) -> List[int]:
        h1, h2 = _hash_pair(self.seed, "door", key)
        mask = self.bits - 1
        return [(h1 + i * h2) & mask for i in range(self.hashes)]

    def __contains__(self, key: str) -> bool:
        return all(
            self._filter[pos >> 3] & (1 << (pos & 7))
            for pos in self._positions(key)
        )

    def add(self, key: str) -> bool:
        """Record the key; True when it was not already present."""
        fresh = False
        for pos in self._positions(key):
            byte, bit = pos >> 3, 1 << (pos & 7)
            if not self._filter[byte] & bit:
                fresh = True
                self._filter[byte] |= bit
        return fresh

    def clear(self) -> None:
        for i in range(len(self._filter)):
            self._filter[i] = 0


class TinyLFUAdmission:
    """The admission policy a :class:`PacketRunCache` consults when full.

    :meth:`record_access` feeds every cache lookup (hit or miss) into
    the frequency window; :meth:`admit` compares candidate vs victim
    estimates. ``sample_period`` increments trigger an aging reset
    (sketch halved, doorkeeper cleared) — counted as ``sketch_resets``
    in the shared ``edge_cache`` counter bag.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        width: int = 1024,
        depth: int = 4,
        sample_period: Optional[int] = None,
        doorkeeper_bits: int = 8192,
        counters: Optional[Counters] = None,
    ) -> None:
        self.sketch = CountMinSketch(width=width, depth=depth, seed=seed)
        self.doorkeeper = Doorkeeper(bits=doorkeeper_bits, seed=seed)
        self.sample_period = (
            sample_period if sample_period is not None else 10 * self.sketch.width
        )
        if self.sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        self.counters = counters if counters is not None else get_counters("edge_cache")
        self._samples = 0

    def record_access(self, key: str) -> None:
        if self.doorkeeper.add(key):
            # first sighting: the doorkeeper absorbs it, no sketch cost
            pass
        else:
            self.sketch.increment(key)
        self._samples += 1
        if self._samples >= self.sample_period:
            self.sketch.halve()
            self.doorkeeper.clear()
            self._samples = 0
            self.counters.inc("sketch_resets")

    def estimate(self, key: str) -> int:
        boost = 1 if key in self.doorkeeper else 0
        return self.sketch.estimate(key) + boost

    def admit(self, candidate: str, victim: str) -> bool:
        """True when the candidate's windowed frequency beats the LRU
        victim's. Ties keep the resident — the scan-resistance rule."""
        return self.estimate(candidate) > self.estimate(victim)
