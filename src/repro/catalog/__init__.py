"""Content-aware catalog and predictive caching.

The paper's content tree — script commands, slide markers, LOD levels —
is built at publish time; this package makes it earn its keep at
*delivery* time (the direction Kannan & Andres' automated
lecture-capture/navigation system points):

* :class:`CatalogIndex` — a searchable catalog built from published
  script commands and LOD metadata: per-lecture slide tables of
  contents, seek-to-slide resolution (slide id → packet-run offset via
  the ASF simple index), and deterministic full-text token search over
  titles and command parameters.
* :class:`TinyLFUAdmission` — a frequency-based admission policy for
  :class:`~repro.streaming.edge.PacketRunCache`: a 4-bit count-min
  sketch with periodic halving, a doorkeeper Bloom filter absorbing
  one-hit wonders, and admit-on-compare against the LRU victim. A
  one-shot sequential scan of the whole catalog no longer evicts the
  hot set.
* :class:`PrefetchPlanner` — scheduled cache warming: catalog start
  times + Zipf popularity decide which runs to pull to which region
  parents (optionally leaves) ahead of lecture start, through the
  ordinary fill cascade (so every warmed byte is budget-charged and
  fingerprint-verified), under an explicit byte budget traced for the
  :class:`~repro.obs.checker.TraceChecker` to audit.
"""

from .admission import CountMinSketch, Doorkeeper, TinyLFUAdmission
from .index import CatalogIndex, LectureEntry, SearchHit, SlideRef, tokenize
from .prefetch import PrefetchConfig, PrefetchItem, PrefetchPlanner

__all__ = [
    "CatalogIndex",
    "CountMinSketch",
    "Doorkeeper",
    "LectureEntry",
    "PrefetchConfig",
    "PrefetchItem",
    "PrefetchPlanner",
    "SearchHit",
    "SlideRef",
    "TinyLFUAdmission",
    "tokenize",
]
