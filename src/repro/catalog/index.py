"""The searchable lecture catalog.

A published variant already carries everything a navigable catalog
needs: its header metadata names the title/level/profile, its script
commands mark every slide change, and its simple index maps timestamps
to packet sequences. :class:`CatalogIndex` folds those into

* a per-lecture **table of contents** (:class:`SlideRef` per SLIDE
  command, each resolved to the packet-run offset playback would seek
  to — so "jump to slide s3" is one catalog lookup, no header parse);
* **deterministic full-text search**: titles and script-command
  parameters are tokenized into an inverted index; results are ranked
  by matched-token weight with lexicographic tie-breaks, so the same
  published grid always yields the same hit list.

The index also records each variant's content address
(:meth:`~repro.asf.stream.ASFFile.fingerprint`) and packed wire size —
exactly what the prefetch planner needs to warm caches honestly and
what republish invalidation needs to name stale runs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..asf.script_commands import TYPE_SLIDE
from ..asf.stream import ASFFile

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: search weight of a title token vs a command-parameter token
_TITLE_WEIGHT = 2
_COMMAND_WEIGHT = 1


def tokenize(text: str) -> List[str]:
    """Lowercased alphanumeric tokens, in order."""
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class SlideRef:
    """One table-of-contents row: a slide and where to seek for it."""

    slide: str
    timestamp_ms: int
    #: first packet sequence of the run that renders this slide's
    #: position (resolved through the ASF simple index — the same value
    #: :meth:`ASFFile.packets_from` would start from)
    packet_sequence: int

    @property
    def timestamp(self) -> float:
        return self.timestamp_ms / 1000.0


@dataclass(frozen=True)
class LectureEntry:
    """Everything the catalog knows about one published variant."""

    point: str
    lecture: str
    title: str
    level: Optional[int]
    profile: str
    duration: float
    cache_key: str
    #: packed wire size — what caching (or prefetching) this run costs
    size_bytes: int
    bitrate: float
    slides: Tuple[SlideRef, ...]


@dataclass(frozen=True)
class SearchHit:
    point: str
    score: int
    matched: Tuple[str, ...]


class CatalogIndex:
    """Searchable index over published lecture variants."""

    def __init__(self) -> None:
        self._entries: Dict[str, LectureEntry] = {}
        # token -> point -> accumulated weight
        self._postings: Dict[str, Dict[str, int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, point: str) -> bool:
        return point in self._entries

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def add_variant(
        self, point: str, asf: ASFFile, *, lecture: Optional[str] = None
    ) -> LectureEntry:
        """Index one published variant from its ASF alone.

        Works for LOD grid cells (level/profile metadata present) and
        plain single-variant publishes (metadata absent → defaults).
        """
        header = asf.header
        meta = header.metadata
        index = asf.ensure_index()
        slides = tuple(
            SlideRef(
                slide=cmd.parameter,
                timestamp_ms=cmd.timestamp_ms,
                packet_sequence=index.seek(cmd.timestamp_ms / 1000.0),
            )
            for cmd in sorted(header.script_commands)
            if cmd.type == TYPE_SLIDE
        )
        level = int(meta["level"]) if "level" in meta else None
        entry = LectureEntry(
            point=point,
            lecture=lecture or point,
            title=meta.get("title", point),
            level=level,
            profile=meta.get("profile", ""),
            duration=asf.duration,
            cache_key=asf.fingerprint(),
            size_bytes=len(header.pack())
            + sum(len(blob) for blob in asf.packed_packets()),
            bitrate=header.total_bitrate,
            slides=slides,
        )
        if point in self._entries:
            self._unindex(point)
        self._entries[point] = entry
        self._index_tokens(point, entry.title, _TITLE_WEIGHT)
        for cmd in header.script_commands:
            self._index_tokens(point, cmd.parameter, _COMMAND_WEIGHT)
        return entry

    def add_publish_result(self, result) -> List[LectureEntry]:
        """Index every variant of one :class:`LODPublishResult`."""
        return [
            self.add_variant(
                variant.point, variant.asf, lecture=result.point
            )
            for _, variant in sorted(result.variants.items())
        ]

    def remove(self, point: str) -> bool:
        if point not in self._entries:
            return False
        self._unindex(point)
        del self._entries[point]
        return True

    def _index_tokens(self, point: str, text: str, weight: int) -> None:
        for token in tokenize(text):
            self._postings.setdefault(token, {})
            self._postings[token][point] = (
                self._postings[token].get(point, 0) + weight
            )

    def _unindex(self, point: str) -> None:
        for token in list(self._postings):
            bucket = self._postings[token]
            bucket.pop(point, None)
            if not bucket:
                del self._postings[token]

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def entry(self, point: str) -> LectureEntry:
        if point not in self._entries:
            raise KeyError(f"no catalog entry for {point!r}")
        return self._entries[point]

    def entries(self) -> List[LectureEntry]:
        """Every entry, sorted by point name (deterministic order)."""
        return [self._entries[p] for p in sorted(self._entries)]

    def variants_of(self, lecture: str) -> List[LectureEntry]:
        return [e for e in self.entries() if e.lecture == lecture]

    def toc(self, point: str) -> List[SlideRef]:
        """The slide table of contents of one variant."""
        return list(self.entry(point).slides)

    def seek_to_slide(self, point: str, slide: str) -> SlideRef:
        """Where playback of ``point`` should jump to show ``slide``."""
        for ref in self.entry(point).slides:
            if ref.slide == slide:
                return ref
        raise KeyError(f"variant {point!r} has no slide {slide!r}")

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(self, query: str, *, limit: Optional[int] = None) -> List[SearchHit]:
        """Token search over titles and script-command parameters.

        Score is the summed posting weight of every matched query token;
        ties break lexicographically by point, so results are fully
        deterministic for a given published grid.
        """
        tokens = sorted(set(tokenize(query)))
        scores: Dict[str, int] = {}
        matched: Dict[str, List[str]] = {}
        for token in tokens:
            for point, weight in self._postings.get(token, {}).items():
                scores[point] = scores.get(point, 0) + weight
                matched.setdefault(point, []).append(token)
        hits = [
            SearchHit(point, score, tuple(sorted(matched[point])))
            for point, score in scores.items()
        ]
        hits.sort(key=lambda h: (-h.score, h.point))
        return hits[:limit] if limit is not None else hits

    def export(self) -> List[Dict]:
        """JSON-able snapshot (for /catalog-style endpoints and tests)."""
        return [
            {
                "point": e.point,
                "lecture": e.lecture,
                "title": e.title,
                "level": e.level,
                "profile": e.profile,
                "duration": e.duration,
                "cache_key": e.cache_key,
                "size_bytes": e.size_bytes,
                "slides": [
                    {
                        "slide": s.slide,
                        "timestamp_ms": s.timestamp_ms,
                        "packet_sequence": s.packet_sequence,
                    }
                    for s in e.slides
                ],
            }
            for e in self.entries()
        ]
