"""Scheduled prefetch: warm the tree before the flash crowd lands.

Wave-1 viewers today pay the cold fill at the lecture-start instant;
wave-2 rides the caches. :class:`PrefetchPlanner` moves that cold cost
out of the viewer window: for each scheduled (non-live) lecture it
plans a warm of every region parent — optionally the leaves too — at
``start_time - lead_time``, most popular lectures first, under an
explicit byte budget.

The planner only *plans*; execution (the load harness, or a bench)
calls :meth:`EdgeRelay.prefetch <repro.streaming.edge.EdgeRelay.prefetch>`
per item, which runs the ordinary fill cascade — origin-described,
fingerprint-verified, backbone-budget-charged — and traces a
``prefetch.begin`` / ``prefetch.end`` span per item (plus one
``prefetch.plan`` per planner run) that
:class:`~repro.obs.checker.TraceChecker` audits: spans match, warmed
bytes stay within the declared budget and byte-identical to the origin
(expected vs landed cache key), and nothing prefetches a torn-down
point.

Popularity is the workload's own Zipf regime: catalog order is rank
order (the same convention :func:`repro.load.workload.generate` samples
arrivals with), weighted ``1/(rank+1)^s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .index import CatalogIndex


@dataclass(frozen=True)
class PrefetchConfig:
    """Planner knobs (the load harness accepts this as
    ``LoadConfig.prefetch``)."""

    enabled: bool = True
    #: seconds before a lecture's start time its warm fires
    lead_time: float = 5.0
    #: warm leaf edges too (parents only by default — the leaves then
    #: fill intra-region off their warm parent on the first viewer)
    include_leaves: bool = False
    #: warm only the K most popular lectures (None: all scheduled ones)
    top_k: Optional[int] = None
    #: hard ceiling on total warmed bytes per planner run (None: unbounded)
    byte_budget: Optional[int] = None
    #: Zipf skew used for popularity ranking
    zipf_s: float = 1.1


@dataclass(frozen=True)
class PrefetchItem:
    """One planned warm: pull ``point`` to relay ``target`` at ``at``."""

    point: str
    target: str
    at: float
    rank: int
    #: authoritative content key the warm must land (byte-identity audit)
    expect_key: str = ""
    size_bytes: int = 0


class PrefetchPlanner:
    """Turns (catalog schedule × popularity × topology) into a warm plan."""

    def __init__(
        self,
        config: Optional[PrefetchConfig] = None,
        *,
        catalog: Optional[CatalogIndex] = None,
    ) -> None:
        self.config = config if config is not None else PrefetchConfig()
        self.catalog = catalog
        #: lectures dropped from the last plan by the byte budget
        self.budget_skipped = 0

    def popularity(
        self, lectures: Sequence, *, zipf_s: Optional[float] = None
    ) -> List[Tuple[str, float]]:
        """``(name, weight)`` ranked most-popular-first.

        Catalog order *is* rank order — the workload generator samples
        lecture i with weight ``1/(i+1)^s``, so the planner agrees with
        the arrivals by construction.
        """
        s = zipf_s if zipf_s is not None else self.config.zipf_s
        return [
            (spec.name, 1.0 / (i + 1) ** s)
            for i, spec in enumerate(lectures)
        ]

    def plan(
        self,
        lectures: Sequence,
        *,
        parents: Iterable[str],
        leaves: Iterable[str] = (),
    ) -> List[PrefetchItem]:
        """The warm plan for one run.

        ``lectures`` are :class:`~repro.load.workload.LectureSpec`-shaped
        (``name`` / ``start_time`` / ``live``); live simulcasts are never
        prefetched (a broadcast warm would pin the upstream feed with no
        viewer). Items are ordered by (time, popularity rank, target) —
        fully deterministic — and the byte budget cuts whole lectures,
        most popular kept first.
        """
        cfg = self.config
        self.budget_skipped = 0
        if not cfg.enabled:
            return []
        targets = list(parents)
        if cfg.include_leaves:
            targets += list(leaves)
        if not targets:
            return []
        ranked = sorted(
            (
                (rank, spec)
                for rank, spec in enumerate(lectures)
                if not getattr(spec, "live", False)
            ),
            key=lambda pair: pair[0],
        )
        if cfg.top_k is not None:
            ranked = ranked[: cfg.top_k]
        items: List[PrefetchItem] = []
        spent = 0
        for rank, spec in ranked:
            expect_key = ""
            size = 0
            if self.catalog is not None and spec.name in self.catalog:
                entry = self.catalog.entry(spec.name)
                expect_key = entry.cache_key
                size = entry.size_bytes
            cost = size * len(targets)
            if cfg.byte_budget is not None and spent + cost > cfg.byte_budget:
                self.budget_skipped += 1
                continue
            spent += cost
            at = max(0.0, getattr(spec, "start_time", 0.0) - cfg.lead_time)
            for target in targets:
                items.append(
                    PrefetchItem(
                        point=spec.name,
                        target=target,
                        at=at,
                        rank=rank,
                        expect_key=expect_key,
                        size_bytes=size,
                    )
                )
        items.sort(key=lambda item: (item.at, item.rank, item.target))
        return items

    def planned_bytes(self, items: Sequence[PrefetchItem]) -> int:
        return sum(item.size_bytes for item in items)
