"""Discrete-event network simulator: engine, links, transport, QoS."""

from .engine import EventHandle, PeriodicTask, SimulationError, Simulator
from .faults import FaultAction, FaultInjector, FaultPlan
from .link import DuplexLink, GilbertElliott, Link, LinkStats
from .qos import QoSError, QoSManager, QoSSpec, Reservation
from .transport import DatagramChannel, Message, ReliableChannel

__all__ = [
    "DatagramChannel",
    "DuplexLink",
    "EventHandle",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliott",
    "Link",
    "LinkStats",
    "Message",
    "PeriodicTask",
    "QoSError",
    "QoSManager",
    "QoSSpec",
    "ReliableChannel",
    "Reservation",
    "SimulationError",
    "Simulator",
]
