"""Discrete-event network simulator: engine, links, transport, QoS."""

from .engine import EventHandle, PeriodicTask, SimulationError, Simulator
from .link import DuplexLink, Link, LinkStats
from .qos import QoSError, QoSManager, QoSSpec, Reservation
from .transport import DatagramChannel, Message, ReliableChannel

__all__ = [
    "DatagramChannel",
    "DuplexLink",
    "EventHandle",
    "Link",
    "LinkStats",
    "Message",
    "PeriodicTask",
    "QoSError",
    "QoSManager",
    "QoSSpec",
    "ReliableChannel",
    "Reservation",
    "SimulationError",
    "Simulator",
]
