"""Transport channels over links: datagram and reliable in-order delivery.

Two channel types, matching how the real system used the network:

* :class:`DatagramChannel` — fire-and-forget, what media packets ride
  (late retransmitted video is useless, so the server doesn't try);
* :class:`ReliableChannel` — positive-ack ARQ with retransmission and
  in-order delivery, what HTTP control traffic rides (publish forms,
  play/pause/seek commands, license requests).

Messages carry arbitrary Python payloads plus an explicit ``size`` so wire
timing reflects real packet sizes without serializing everything twice.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .engine import SimulationError, Simulator
from .link import Link


@dataclass(frozen=True)
class Message:
    """A transport-level message: opaque payload with a wire size."""

    payload: Any
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError("message size must be positive")


class DatagramChannel:
    """Unreliable, unordered delivery straight over one link."""

    def __init__(
        self,
        link: Link,
        on_receive: Callable[[Message], None],
        *,
        header_size: int = 28,  # IP+UDP
    ) -> None:
        self.link = link
        self.on_receive = on_receive
        self.header_size = header_size
        self.sent = 0

    def send(self, message: Message) -> None:
        self.sent += 1
        self.link.transmit(
            message.size + self.header_size,
            lambda: self.on_receive(message),
        )


@dataclass
class _Pending:
    seq: int
    message: Message
    attempts: int = 0
    rto: float = 0.0  # current (backed-off) timeout for this message


class ReliableChannel:
    """Stop-and-wait-window ARQ with cumulative in-order delivery.

    Simple but complete: sequence numbers, a retransmission timer per
    message with exponential backoff (×``backoff`` per retry, jittered,
    capped at ``rto_max`` so partition-era retries don't hammer the link
    in lock-step), duplicate suppression, and in-order handoff to the
    receiver. Suitable for the control plane (a handful of small
    messages), not bulk media. ``max_attempts`` exhaustion calls
    ``on_fail``.
    """

    ACK_SIZE = 40

    def __init__(
        self,
        simulator: Simulator,
        out_link: Link,
        ack_link: Link,
        on_receive: Callable[[Message], None],
        *,
        rto: float = 0.25,
        max_attempts: int = 8,
        backoff: float = 2.0,
        rto_max: float = 4.0,
        jitter: float = 0.1,  # fraction of rto, uniform ±
        seed: int = 0,
        header_size: int = 40,  # IP+TCP-ish
        on_fail: Optional[Callable[[Message], None]] = None,
    ) -> None:
        if rto <= 0:
            raise SimulationError("rto must be positive")
        if backoff < 1:
            raise SimulationError("backoff must be >= 1")
        if rto_max < rto:
            raise SimulationError("rto_max must be >= rto")
        if not 0 <= jitter < 1:
            raise SimulationError("jitter must be in [0, 1)")
        self.simulator = simulator
        self.out_link = out_link
        self.ack_link = ack_link
        self.on_receive = on_receive
        self.on_fail = on_fail
        self.rto = rto
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.rto_max = rto_max
        self.jitter = jitter
        self.header_size = header_size
        self.rng = random.Random(seed)
        self._next_seq = itertools.count()
        self._unacked: Dict[int, _Pending] = {}
        self._recv_buffer: Dict[int, Message] = {}
        self._next_deliver = 0
        self.retransmissions = 0

    # -- sender side ----------------------------------------------------

    def send(self, message: Message) -> int:
        seq = next(self._next_seq)
        pending = _Pending(seq, message, rto=self.rto)
        self._unacked[seq] = pending
        self._transmit(pending)
        return seq

    def _transmit(self, pending: _Pending) -> None:
        pending.attempts += 1
        seq = pending.seq
        self.out_link.transmit(
            pending.message.size + self.header_size,
            lambda: self._arrive(seq, pending.message),
        )
        timeout = pending.rto
        # jitter desynchronizes *retries* only — first attempts keep the
        # deterministic base RTO, so loss-free timelines are unchanged
        if pending.attempts > 1 and self.jitter > 0:
            timeout *= 1 + self.rng.uniform(-self.jitter, self.jitter)
        self.simulator.schedule(timeout, lambda: self._timeout(seq))

    def _timeout(self, seq: int) -> None:
        pending = self._unacked.get(seq)
        if pending is None:
            return  # acked
        if pending.attempts >= self.max_attempts:
            del self._unacked[seq]
            if self.on_fail is not None:
                self.on_fail(pending.message)
            return
        pending.rto = min(pending.rto * self.backoff, self.rto_max)
        self.retransmissions += 1
        self._transmit(pending)

    def _acked(self, seq: int) -> None:
        self._unacked.pop(seq, None)

    @property
    def in_flight(self) -> int:
        return len(self._unacked)

    # -- receiver side ----------------------------------------------------

    def _arrive(self, seq: int, message: Message) -> None:
        # always ack, even duplicates (the ack may have been lost)
        self.ack_link.transmit(self.ACK_SIZE, lambda: self._acked(seq))
        # cumulative in-order delivery: anything below the delivery
        # frontier has already been handed up, no per-seq set needed
        if seq < self._next_deliver or seq in self._recv_buffer:
            return
        self._recv_buffer[seq] = message
        while self._next_deliver in self._recv_buffer:
            ready = self._recv_buffer.pop(self._next_deliver)
            self._next_deliver += 1
            self.on_receive(ready)
