"""Transport channels over links: datagram and reliable in-order delivery.

Two channel types, matching how the real system used the network:

* :class:`DatagramChannel` — fire-and-forget, what media packets ride
  (late retransmitted video is useless, so the server doesn't try);
* :class:`ReliableChannel` — positive-ack ARQ with retransmission and
  in-order delivery, what HTTP control traffic rides (publish forms,
  play/pause/seek commands, license requests).

Messages carry arbitrary Python payloads plus an explicit ``size`` so wire
timing reflects real packet sizes without serializing everything twice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .engine import SimulationError, Simulator
from .link import Link


@dataclass(frozen=True)
class Message:
    """A transport-level message: opaque payload with a wire size."""

    payload: Any
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError("message size must be positive")


class DatagramChannel:
    """Unreliable, unordered delivery straight over one link."""

    def __init__(
        self,
        link: Link,
        on_receive: Callable[[Message], None],
        *,
        header_size: int = 28,  # IP+UDP
    ) -> None:
        self.link = link
        self.on_receive = on_receive
        self.header_size = header_size
        self.sent = 0

    def send(self, message: Message) -> None:
        self.sent += 1
        self.link.transmit(
            message.size + self.header_size,
            lambda: self.on_receive(message),
        )


@dataclass
class _Pending:
    seq: int
    message: Message
    attempts: int = 0


class ReliableChannel:
    """Stop-and-wait-window ARQ with cumulative in-order delivery.

    Simple but complete: sequence numbers, a retransmission timer per
    message, duplicate suppression, and in-order handoff to the receiver.
    Suitable for the control plane (a handful of small messages), not bulk
    media. ``max_attempts`` exhaustion calls ``on_fail``.
    """

    ACK_SIZE = 40

    def __init__(
        self,
        simulator: Simulator,
        out_link: Link,
        ack_link: Link,
        on_receive: Callable[[Message], None],
        *,
        rto: float = 0.25,
        max_attempts: int = 8,
        header_size: int = 40,  # IP+TCP-ish
        on_fail: Optional[Callable[[Message], None]] = None,
    ) -> None:
        if rto <= 0:
            raise SimulationError("rto must be positive")
        self.simulator = simulator
        self.out_link = out_link
        self.ack_link = ack_link
        self.on_receive = on_receive
        self.on_fail = on_fail
        self.rto = rto
        self.max_attempts = max_attempts
        self.header_size = header_size
        self._next_seq = itertools.count()
        self._unacked: Dict[int, _Pending] = {}
        self._recv_buffer: Dict[int, Message] = {}
        self._next_deliver = 0
        self._delivered_seqs: set = set()
        self.retransmissions = 0

    # -- sender side ----------------------------------------------------

    def send(self, message: Message) -> int:
        seq = next(self._next_seq)
        pending = _Pending(seq, message)
        self._unacked[seq] = pending
        self._transmit(pending)
        return seq

    def _transmit(self, pending: _Pending) -> None:
        pending.attempts += 1
        seq = pending.seq
        self.out_link.transmit(
            pending.message.size + self.header_size,
            lambda: self._arrive(seq, pending.message),
        )
        self.simulator.schedule(self.rto, lambda: self._timeout(seq))

    def _timeout(self, seq: int) -> None:
        pending = self._unacked.get(seq)
        if pending is None:
            return  # acked
        if pending.attempts >= self.max_attempts:
            del self._unacked[seq]
            if self.on_fail is not None:
                self.on_fail(pending.message)
            return
        self.retransmissions += 1
        self._transmit(pending)

    def _acked(self, seq: int) -> None:
        self._unacked.pop(seq, None)

    @property
    def in_flight(self) -> int:
        return len(self._unacked)

    # -- receiver side ----------------------------------------------------

    def _arrive(self, seq: int, message: Message) -> None:
        # always ack, even duplicates (the ack may have been lost)
        self.ack_link.transmit(self.ACK_SIZE, lambda: self._acked(seq))
        if seq in self._delivered_seqs or seq in self._recv_buffer:
            return
        self._recv_buffer[seq] = message
        while self._next_deliver in self._recv_buffer:
            ready = self._recv_buffer.pop(self._next_deliver)
            self._delivered_seqs.add(self._next_deliver)
            self._next_deliver += 1
            self.on_receive(ready)
