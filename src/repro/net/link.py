"""Network links: bandwidth, propagation delay, jitter, loss, queueing.

A :class:`Link` is a unidirectional FIFO pipe on the shared simulator:
transmitting ``n`` bytes takes ``n·8/bandwidth`` of serialization after the
link becomes free (finite queue: packets beyond ``queue_limit`` in flight
are tail-dropped), then ``delay ± jitter`` of propagation, then the
receiver callback runs. Random loss is applied per packet with a seeded
RNG, so runs are reproducible. Loss can be i.i.d. (``loss_rate``) or bursty
via an optional :class:`GilbertElliott` two-state model, and a link can be
taken down/up or re-rated mid-run — the hooks the fault injector
(:mod:`repro.net.faults`) drives.

This is the substitution for the paper's campus network between the
Windows Media server and the students' browsers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .engine import SimulationError, Simulator


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state (good/bad) burst-loss model, stepped once per packet.

    In the *good* state packets drop with ``loss_good``; in *bad* with
    ``loss_bad``. After each packet the chain moves good→bad with
    ``p_enter`` and bad→good with ``p_exit``, so losses cluster into
    bursts of mean length ``1/p_exit`` instead of landing i.i.d.
    """

    p_enter: float  # good -> bad transition probability per packet
    p_exit: float  # bad -> good transition probability per packet
    loss_bad: float = 1.0
    loss_good: float = 0.0

    def __post_init__(self) -> None:
        for name in ("p_enter", "p_exit", "loss_bad", "loss_good"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {value}")
        if self.p_exit <= 0:
            raise SimulationError("p_exit must be positive (bad state must be escapable)")

    @property
    def average_loss(self) -> float:
        """Stationary loss rate of the chain."""
        pi_bad = self.p_enter / (self.p_enter + self.p_exit)
        return pi_bad * self.loss_bad + (1 - pi_bad) * self.loss_good

    @classmethod
    def from_average(
        cls, average_loss: float, *, mean_burst: float = 5.0
    ) -> "GilbertElliott":
        """Model with a target stationary loss rate and mean burst length."""
        if not 0 <= average_loss < 1:
            raise SimulationError("average_loss must be in [0, 1)")
        if mean_burst < 1:
            raise SimulationError("mean_burst must be >= 1 packet")
        p_exit = 1.0 / mean_burst
        p_enter = average_loss * p_exit / (1.0 - average_loss)
        return cls(p_enter=min(p_enter, 1.0), p_exit=p_exit)


@dataclass
class LinkStats:
    """Counters a link accumulates over a run."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_queue: int = 0
    dropped_down: int = 0
    bytes_delivered: int = 0

    @property
    def loss_rate(self) -> float:
        return 1 - self.delivered / self.sent if self.sent else 0.0


class Link:
    """A unidirectional link with finite queue and random loss."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        bandwidth: float = 1_000_000.0,  # bits/second
        delay: float = 0.02,  # propagation seconds
        jitter: float = 0.0,  # uniform ± seconds on propagation
        loss_rate: float = 0.0,
        burst_loss: Optional[GilbertElliott] = None,
        queue_limit: int = 64,  # packets queued awaiting serialization
        seed: int = 0,
        name: str = "link",
        tracer=None,
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        if delay < 0 or jitter < 0:
            raise SimulationError("delay/jitter must be >= 0")
        if not 0 <= loss_rate < 1:
            raise SimulationError("loss_rate must be in [0, 1)")
        if queue_limit < 1:
            raise SimulationError("queue_limit must be >= 1")
        self.simulator = simulator
        self.bandwidth = bandwidth
        self.delay = delay
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.burst_loss = burst_loss
        self.queue_limit = queue_limit
        self.name = name
        self.up = True
        self.rng = random.Random(seed)
        self.stats = LinkStats()
        # optional repro.obs.Tracer: link-state events only (per-packet
        # drops are summarized in stats — tracing them would dominate the
        # record stream and the overhead budget)
        self.tracer = tracer
        self._busy_until = 0.0
        self._queued = 0
        self._burst_bad = False

    def serialization_time(self, size_bytes: int) -> float:
        return size_bytes * 8 / self.bandwidth

    # -- fault hooks (driven by repro.net.faults) -----------------------

    def take_down(self) -> None:
        """Cut the link: every subsequent transmit drops until brought up.

        Packets already past serialization keep propagating — a cut wire
        does not reach back into the receiver's NIC.
        """
        self.up = False
        if self.tracer is not None:
            self.tracer.event("link.down", link=self.name)

    def bring_up(self) -> None:
        self.up = True
        if self.tracer is not None:
            self.tracer.event("link.up", link=self.name)

    def set_bandwidth(self, bandwidth: float) -> None:
        """Re-rate the link (bandwidth collapse / recovery) mid-run."""
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        self.bandwidth = bandwidth

    def set_loss(
        self,
        *,
        loss_rate: Optional[float] = None,
        burst_loss: Optional[GilbertElliott] = None,
    ) -> None:
        """Replace the loss process; burst model state restarts in *good*."""
        if loss_rate is not None:
            if not 0 <= loss_rate < 1:
                raise SimulationError("loss_rate must be in [0, 1)")
            self.loss_rate = loss_rate
        self.burst_loss = burst_loss
        self._burst_bad = False

    def _packet_lost(self) -> bool:
        """Sample the active loss process for one packet."""
        model = self.burst_loss
        if model is None:
            return self.rng.random() < self.loss_rate
        rate = model.loss_bad if self._burst_bad else model.loss_good
        lost = self.rng.random() < rate
        flip = model.p_exit if self._burst_bad else model.p_enter
        if self.rng.random() < flip:
            self._burst_bad = not self._burst_bad
        return lost

    @property
    def queue_depth(self) -> int:
        return self._queued

    def utilization_until(self) -> float:
        """Time at which the link drains everything already accepted."""
        return max(self._busy_until, self.simulator.now)

    def transmit(
        self,
        size_bytes: int,
        on_delivery: Callable[[], None],
        *,
        on_drop: Optional[Callable[[str], None]] = None,
    ) -> bool:
        """Enqueue a packet; returns False if tail-dropped immediately.

        ``on_delivery`` runs at the receiver when the packet arrives;
        ``on_drop(reason)`` runs (immediately for queue drops, at
        would-have-arrived time for loss) when it does not.
        """
        if size_bytes <= 0:
            raise SimulationError("packet size must be positive")
        self.stats.sent += 1
        if not self.up:
            self.stats.dropped_down += 1
            if on_drop is not None:
                on_drop("down")
            return False
        if self._queued >= self.queue_limit:
            self.stats.dropped_queue += 1
            if on_drop is not None:
                on_drop("queue")
            return False
        start = max(self._busy_until, self.simulator.now)
        finish = start + self.serialization_time(size_bytes)
        self._busy_until = finish
        self._queued += 1

        propagation = self.delay
        if self.jitter > 0:
            propagation = max(0.0, propagation + self.rng.uniform(-self.jitter, self.jitter))
        lost = self._packet_lost()

        def serialized() -> None:
            self._queued -= 1

        self.simulator.schedule_at(finish, serialized, priority=-1)

        arrival = finish + propagation
        if lost:
            self.stats.dropped_loss += 1
            if on_drop is not None:
                self.simulator.schedule_at(arrival, lambda: on_drop("loss"))
            return True

        def delivered() -> None:
            self.stats.delivered += 1
            self.stats.bytes_delivered += size_bytes
            on_delivery()

        self.simulator.schedule_at(arrival, delivered)
        return True


@dataclass
class DuplexLink:
    """A symmetric pair of links (client↔server convenience)."""

    forward: Link
    backward: Link

    @classmethod
    def create(cls, simulator: Simulator, *, seed: int = 0, name: str = "duplex",
               **kwargs) -> "DuplexLink":
        return cls(
            forward=Link(simulator, seed=seed, name=f"{name}-fwd", **kwargs),
            backward=Link(simulator, seed=seed + 1, name=f"{name}-bwd", **kwargs),
        )
