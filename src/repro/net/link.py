"""Network links: bandwidth, propagation delay, jitter, loss, queueing.

A :class:`Link` is a unidirectional FIFO pipe on the shared simulator:
transmitting ``n`` bytes takes ``n·8/bandwidth`` of serialization after the
link becomes free (finite queue: packets beyond ``queue_limit`` in flight
are tail-dropped), then ``delay ± jitter`` of propagation, then the
receiver callback runs. Random loss is applied per packet with a seeded
RNG, so runs are reproducible.

This is the substitution for the paper's campus network between the
Windows Media server and the students' browsers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .engine import SimulationError, Simulator


@dataclass
class LinkStats:
    """Counters a link accumulates over a run."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_queue: int = 0
    bytes_delivered: int = 0

    @property
    def loss_rate(self) -> float:
        return 1 - self.delivered / self.sent if self.sent else 0.0


class Link:
    """A unidirectional link with finite queue and random loss."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        bandwidth: float = 1_000_000.0,  # bits/second
        delay: float = 0.02,  # propagation seconds
        jitter: float = 0.0,  # uniform ± seconds on propagation
        loss_rate: float = 0.0,
        queue_limit: int = 64,  # packets queued awaiting serialization
        seed: int = 0,
        name: str = "link",
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        if delay < 0 or jitter < 0:
            raise SimulationError("delay/jitter must be >= 0")
        if not 0 <= loss_rate < 1:
            raise SimulationError("loss_rate must be in [0, 1)")
        if queue_limit < 1:
            raise SimulationError("queue_limit must be >= 1")
        self.simulator = simulator
        self.bandwidth = bandwidth
        self.delay = delay
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.queue_limit = queue_limit
        self.name = name
        self.rng = random.Random(seed)
        self.stats = LinkStats()
        self._busy_until = 0.0
        self._queued = 0

    def serialization_time(self, size_bytes: int) -> float:
        return size_bytes * 8 / self.bandwidth

    @property
    def queue_depth(self) -> int:
        return self._queued

    def utilization_until(self) -> float:
        """Time at which the link drains everything already accepted."""
        return max(self._busy_until, self.simulator.now)

    def transmit(
        self,
        size_bytes: int,
        on_delivery: Callable[[], None],
        *,
        on_drop: Optional[Callable[[str], None]] = None,
    ) -> bool:
        """Enqueue a packet; returns False if tail-dropped immediately.

        ``on_delivery`` runs at the receiver when the packet arrives;
        ``on_drop(reason)`` runs (immediately for queue drops, at
        would-have-arrived time for loss) when it does not.
        """
        if size_bytes <= 0:
            raise SimulationError("packet size must be positive")
        self.stats.sent += 1
        if self._queued >= self.queue_limit:
            self.stats.dropped_queue += 1
            if on_drop is not None:
                on_drop("queue")
            return False
        start = max(self._busy_until, self.simulator.now)
        finish = start + self.serialization_time(size_bytes)
        self._busy_until = finish
        self._queued += 1

        propagation = self.delay
        if self.jitter > 0:
            propagation = max(0.0, propagation + self.rng.uniform(-self.jitter, self.jitter))
        lost = self.rng.random() < self.loss_rate

        def serialized() -> None:
            self._queued -= 1

        self.simulator.schedule_at(finish, serialized, priority=-1)

        arrival = finish + propagation
        if lost:
            self.stats.dropped_loss += 1
            if on_drop is not None:
                self.simulator.schedule_at(arrival, lambda: on_drop("loss"))
            return True

        def delivered() -> None:
            self.stats.delivered += 1
            self.stats.bytes_delivered += size_bytes
            on_delivery()

        self.simulator.schedule_at(arrival, delivered)
        return True


@dataclass
class DuplexLink:
    """A symmetric pair of links (client↔server convenience)."""

    forward: Link
    backward: Link

    @classmethod
    def create(cls, simulator: Simulator, *, seed: int = 0, name: str = "duplex",
               **kwargs) -> "DuplexLink":
        return cls(
            forward=Link(simulator, seed=seed, name=f"{name}-fwd", **kwargs),
            backward=Link(simulator, seed=seed + 1, name=f"{name}-bwd", **kwargs),
        )
