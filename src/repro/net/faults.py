"""Deterministic fault injection: scripted timelines of network/server faults.

The chaos suite's backbone. A :class:`FaultPlan` is pure data — *what*
goes wrong, *when*, for *how long*: link-down/up windows, burst loss
(:class:`~repro.net.link.GilbertElliott`), i.i.d. loss, bandwidth
collapse, control-plane partitions, and media-server crash/restart. A
:class:`FaultInjector` binds a plan to a live
:class:`~repro.web.http.VirtualNetwork` (plus named servers) and schedules
the exact mutations on the shared simulator, so the same plan against the
same seeds replays the same run event for event.

Faults mutate existing objects in place (``Link.take_down()``,
``Link.set_loss()``, ``MediaServer.crash()``); nothing here knows how the
streaming layer recovers — that is :mod:`repro.streaming.recovery`'s job.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .engine import SimulationError, Simulator
from .link import GilbertElliott, Link

#: action kinds the injector understands
KINDS = (
    "link_down",
    "link_up",
    "loss",
    "burst_loss",
    "clear_loss",
    "bandwidth",
    "restore_bandwidth",
    "server_crash",
    "server_restart",
)


@dataclass
class FaultAction:
    """One scheduled mutation: ``kind`` applied to ``target`` at ``at``."""

    at: float
    kind: str
    target: Tuple[str, ...] = ()
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise SimulationError("fault time must be >= 0")
        if self.kind not in KINDS:
            raise SimulationError(f"unknown fault kind {self.kind!r}")


class FaultPlan:
    """A named, scripted fault timeline.

    Builder methods append directed actions (and their reversals when
    ``until`` is given); hosts pairs apply to both directions by default,
    matching how a cable cut or a congested last mile behaves.
    """

    def __init__(self, name: str = "chaos") -> None:
        self.name = name
        self.actions: List[FaultAction] = []
        #: (family, directed target) -> [(start, end)] windows already
        #: claimed through the builder methods; the validation ledger
        self._windows: Dict[Tuple[str, Tuple[str, ...]], List[Tuple[float, float]]] = {}

    def add(self, action: FaultAction) -> "FaultPlan":
        """Append a raw action. Bypasses window validation — the builder
        methods are the checked surface; ``add`` is the escape hatch for
        deliberately pathological timelines."""
        self.actions.append(action)
        return self

    def _register_window(
        self,
        family: str,
        target: Tuple[str, ...],
        at: float,
        until: Optional[float],
    ) -> None:
        """Claim [at, until) for ``family`` on ``target`` or refuse.

        A plan where two windows of the same family overlap on the same
        directed target is almost always a scripting bug — the second
        reversal silently clobbers the first and the timeline no longer
        means what it reads as. Out-of-order (``until <= at``) windows are
        rejected for the same reason. Boundary-touching windows (one ends
        exactly where the next starts) are fine.
        """
        end = float("inf") if until is None else until
        if end <= at:
            raise SimulationError(
                f"plan {self.name!r}: {family} window on "
                f"{'/'.join(target)} is out of order "
                f"(starts at {at:g}s, ends at {end:g}s)"
            )
        claimed = self._windows.setdefault((family, target), [])
        for start, stop in claimed:
            if at < stop and start < end:
                raise SimulationError(
                    f"plan {self.name!r}: {family} window "
                    f"[{at:g}s, {end:g}s) on {'/'.join(target)} overlaps "
                    f"existing window [{start:g}s, {stop:g}s)"
                )
        claimed.append((at, end))

    def _pairs(self, a: str, b: str, both: bool) -> List[Tuple[str, str]]:
        return [(a, b), (b, a)] if both else [(a, b)]

    # -- link faults ----------------------------------------------------

    def link_down(
        self, a: str, b: str, *, at: float, until: Optional[float] = None,
        both: bool = True,
    ) -> "FaultPlan":
        """Cut a↔b at ``at``; restore at ``until`` if given."""
        for pair in self._pairs(a, b, both):
            self._register_window("link", pair, at, until)
            self.add(FaultAction(at, "link_down", pair))
            if until is not None:
                self.add(FaultAction(until, "link_up", pair))
        return self

    def loss(
        self, a: str, b: str, *, at: float, rate: float,
        until: Optional[float] = None, both: bool = False,
    ) -> "FaultPlan":
        """i.i.d. loss at ``rate`` on a→b (both directions if asked)."""
        for pair in self._pairs(a, b, both):
            self._register_window("loss", pair, at, until)
            self.add(FaultAction(at, "loss", pair, {"rate": rate}))
            if until is not None:
                self.add(FaultAction(until, "clear_loss", pair))
        return self

    def burst_loss(
        self, a: str, b: str, *, at: float, average: float,
        mean_burst: float = 5.0, until: Optional[float] = None,
        both: bool = False,
    ) -> "FaultPlan":
        """Gilbert–Elliott burst loss with the given stationary rate."""
        model = GilbertElliott.from_average(average, mean_burst=mean_burst)
        for pair in self._pairs(a, b, both):
            self._register_window("loss", pair, at, until)
            self.add(FaultAction(at, "burst_loss", pair, {"model": model}))
            if until is not None:
                self.add(FaultAction(until, "clear_loss", pair))
        return self

    def bandwidth(
        self, a: str, b: str, *, at: float, factor: Optional[float] = None,
        bps: Optional[float] = None, until: Optional[float] = None,
        both: bool = True,
    ) -> "FaultPlan":
        """Collapse a↔b capacity to ``bps`` (or current × ``factor``)."""
        if (factor is None) == (bps is None):
            raise SimulationError("bandwidth fault needs exactly one of factor/bps")
        for pair in self._pairs(a, b, both):
            self._register_window("bandwidth", pair, at, until)
            self.add(FaultAction(at, "bandwidth", pair,
                                 {"factor": factor, "bps": bps}))
            if until is not None:
                self.add(FaultAction(until, "restore_bandwidth", pair))
        return self

    def partition(
        self, host: str, peers: Sequence[str], *, at: float,
        until: Optional[float] = None,
    ) -> "FaultPlan":
        """Isolate ``host`` from every peer (control plane included)."""
        for peer in peers:
            self.link_down(host, peer, at=at, until=until, both=True)
        return self

    # -- server faults --------------------------------------------------

    def server_crash(
        self, label: str, *, at: float, restart_at: Optional[float] = None
    ) -> "FaultPlan":
        """Kill the named server's process; optionally restart it later."""
        if restart_at is not None and restart_at < at:
            raise SimulationError("restart must not precede the crash")
        self._register_window("server", (label,), at, restart_at)
        self.add(FaultAction(at, "server_crash", (label,)))
        if restart_at is not None:
            self.add(FaultAction(restart_at, "server_restart", (label,)))
        return self

    def edge_crash(
        self, label: str, *, at: float, restart_at: Optional[float] = None
    ) -> "FaultPlan":
        """Kill a named edge relay; optionally restart it later.

        Relays expose the same ``crash()``/``restart()`` hooks as the
        origin server, so this reuses the server fault kinds — the alias
        exists so chaos timelines read as what they target.
        """
        return self.server_crash(label, at=at, restart_at=restart_at)

    def sorted_actions(self) -> List[FaultAction]:
        return sorted(
            self.actions, key=lambda a: (a.at, KINDS.index(a.kind))
        )

    def describe(self) -> str:
        """Human-readable timeline, for chaos-test failure messages.

        A failing chaos assertion is unreadable without knowing what the
        run was supposed to suffer; embedding this in the message makes
        the fault script part of the evidence.
        """
        lines = [f"FaultPlan {self.name!r}: {len(self.actions)} action(s)"]
        for action in self.sorted_actions():
            line = (
                f"  t={action.at:>8.3f}s  {action.kind:<17} "
                f"{'/'.join(action.target) or '-'}"
            )
            shown = {
                k: v for k, v in sorted(action.params.items()) if v is not None
            }
            if shown:
                line += "  " + ", ".join(f"{k}={v}" for k, v in shown.items())
            lines.append(line)
        return "\n".join(lines)


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a network's simulator.

    ``servers`` maps plan labels to objects exposing ``crash()`` /
    ``restart()`` (a :class:`~repro.streaming.server.MediaServer`).
    ``log`` records every applied action as ``(time, kind, target)`` so
    tests and benches can assert the timeline actually ran.
    """

    def __init__(
        self,
        network,
        servers: Optional[Dict[str, Any]] = None,
        *,
        tracer=None,
    ) -> None:
        self.network = network
        self.simulator: Simulator = network.simulator
        self.servers: Dict[str, Any] = dict(servers or {})
        self.log: List[Tuple[float, str, Tuple[str, ...]]] = []
        self._saved_bandwidth: Dict[Tuple[str, str], float] = {}
        self.tracer = tracer  # optional repro.obs.Tracer

    def register_server(self, label: str, server: Any) -> None:
        self.servers[label] = server

    def register_directory(self, directory: Any) -> None:
        """Register every relay of an edge directory under its edge name,
        so plans can target ``edge_crash("edge0", ...)`` directly."""
        for name, relay in directory.relays().items():
            if relay is not None:
                self.register_server(name, relay)

    def apply(self, plan: FaultPlan, *, offset: float = 0.0) -> int:
        """Schedule every action of ``plan``; returns the count scheduled.

        ``offset`` shifts the whole timeline — harnesses whose setup
        (prefetch, warm-up) consumes simulated time rebase plans to
        "seconds after setup" instead of rewriting every action.
        """
        if offset < 0.0:
            raise SimulationError(f"plan offset must be >= 0, got {offset}")
        actions = plan.sorted_actions()
        for action in actions:
            self.simulator.schedule_at(
                action.at + offset, functools.partial(self._execute, action)
            )
        return len(actions)

    # ------------------------------------------------------------------

    def _link(self, target: Tuple[str, ...]) -> Link:
        if len(target) != 2:
            raise SimulationError(f"link fault needs (src, dst), got {target}")
        return self.network.link(*target)

    def _server(self, target: Tuple[str, ...]):
        try:
            return self.servers[target[0]]
        except (KeyError, IndexError):
            raise SimulationError(
                f"no server registered under {target!r}"
            ) from None

    def _execute(self, action: FaultAction) -> None:
        kind, target, params = action.kind, action.target, action.params
        if kind == "link_down":
            self._link(target).take_down()
        elif kind == "link_up":
            self._link(target).bring_up()
        elif kind == "loss":
            self._link(target).set_loss(loss_rate=params["rate"], burst_loss=None)
        elif kind == "burst_loss":
            self._link(target).set_loss(burst_loss=params["model"])
        elif kind == "clear_loss":
            self._link(target).set_loss(loss_rate=0.0, burst_loss=None)
        elif kind == "bandwidth":
            link = self._link(target)
            key = tuple(target)
            self._saved_bandwidth.setdefault(key, link.bandwidth)
            bps = params["bps"]
            if bps is None:
                bps = link.bandwidth * params["factor"]
            link.set_bandwidth(bps)
        elif kind == "restore_bandwidth":
            saved = self._saved_bandwidth.pop(tuple(target), None)
            if saved is not None:
                self._link(target).set_bandwidth(saved)
        elif kind == "server_crash":
            self._server(target).crash()
        elif kind == "server_restart":
            self._server(target).restart()
        self.log.append((self.simulator.now, kind, tuple(target)))
        if self.tracer is not None:
            self.tracer.event(f"fault.{kind}", target="/".join(target))
