"""QoS channel management — the XOCPN idea made operational.

XOCPN "set[s] up channels according to the required QoS of the data"
(paper §1). :class:`QoSManager` performs admission control over a link's
capacity: a reservation names a bandwidth (plus optional latency/loss
requirements the link must structurally satisfy); admitted reservations
subtract from available capacity until released. The streaming server uses
this to decide whether a new client at a given profile can be admitted or
must be offered a lower profile.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .engine import SimulationError
from .link import Link


class QoSError(Exception):
    """Admission failures and reservation misuse."""


@dataclass(frozen=True)
class QoSSpec:
    """What a media stream needs from the network."""

    bandwidth: float  # bits/second
    max_latency: Optional[float] = None  # seconds, propagation bound
    max_loss: Optional[float] = None  # fraction

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise QoSError("bandwidth must be positive")
        if self.max_latency is not None and self.max_latency <= 0:
            raise QoSError("max_latency must be positive")
        if self.max_loss is not None and not 0 <= self.max_loss < 1:
            raise QoSError("max_loss must be in [0, 1)")


@dataclass(frozen=True)
class Reservation:
    """An admitted QoS channel."""

    reservation_id: int
    spec: QoSSpec
    owner: str


class QoSManager:
    """Admission control over one link's capacity.

    ``headroom`` keeps a fraction of the raw bandwidth unreservable
    (protocol overhead, cross traffic) — the same margin
    :func:`repro.media.profiles.select_profile` assumes.
    """

    def __init__(
        self,
        link: Link,
        *,
        headroom: float = 0.9,
        tracer=None,
        label: str = "",
    ) -> None:
        if not 0 < headroom <= 1:
            raise QoSError("headroom must be in (0, 1]")
        self.link = link
        self.capacity = link.bandwidth * headroom
        self._reservations: Dict[int, Reservation] = {}
        self._ids = itertools.count(1)
        self.rejected = 0
        # optional repro.obs.Tracer; label disambiguates reservation ids
        # across managers (the server runs one manager per client link)
        self.tracer = tracer
        self.label = label

    def _rid(self, reservation: Reservation) -> str:
        return f"{self.label or 'qos'}#{reservation.reservation_id}"

    @property
    def reserved(self) -> float:
        return sum(r.spec.bandwidth for r in self._reservations.values())

    @property
    def available(self) -> float:
        return self.capacity - self.reserved

    def can_admit(self, spec: QoSSpec) -> bool:
        if spec.bandwidth > self.available:
            return False
        if spec.max_latency is not None and self.link.delay > spec.max_latency:
            return False
        if spec.max_loss is not None and self.link.loss_rate > spec.max_loss:
            return False
        return True

    def reserve(self, spec: QoSSpec, *, owner: str = "") -> Reservation:
        """Admit or raise :class:`QoSError` explaining the failure."""
        if spec.bandwidth > self.available:
            self.rejected += 1
            raise QoSError(
                f"insufficient bandwidth: need {spec.bandwidth:g}, "
                f"available {self.available:g}"
            )
        if spec.max_latency is not None and self.link.delay > spec.max_latency:
            self.rejected += 1
            raise QoSError(
                f"link delay {self.link.delay:g}s exceeds required "
                f"{spec.max_latency:g}s"
            )
        if spec.max_loss is not None and self.link.loss_rate > spec.max_loss:
            self.rejected += 1
            raise QoSError(
                f"link loss {self.link.loss_rate:g} exceeds required "
                f"{spec.max_loss:g}"
            )
        reservation = Reservation(next(self._ids), spec, owner)
        self._reservations[reservation.reservation_id] = reservation
        if self.tracer is not None:
            self.tracer.event(
                "qos.reserve",
                rid=self._rid(reservation),
                owner=owner,
                bandwidth=spec.bandwidth,
            )
        return reservation

    def release(self, reservation: Reservation) -> None:
        if reservation.reservation_id not in self._reservations:
            raise QoSError(f"reservation {reservation.reservation_id} not active")
        del self._reservations[reservation.reservation_id]
        if self.tracer is not None:
            self.tracer.event(
                "qos.release",
                rid=self._rid(reservation),
                owner=reservation.owner,
            )

    def active(self) -> List[Reservation]:
        return list(self._reservations.values())

    def assert_no_leaks(self) -> None:
        """Raise :class:`QoSError` if any reservation is still held.

        Tests call this at teardown: every admission path — clean close,
        crash, abort, failed handshake — must have released its channel.
        """
        if self._reservations:
            owners = ", ".join(
                f"#{r.reservation_id} owner={r.owner or '?'} "
                f"bw={r.spec.bandwidth:g}"
                for r in self._reservations.values()
            )
            raise QoSError(f"leaked reservations: {owners}")

    def best_effort_bandwidth(self, demand: float) -> float:
        """Rate available to an unreserved flow asking for ``demand``."""
        return max(0.0, min(demand, self.available))
