"""Discrete-event simulation engine — the clock under every network run.

A minimal but complete DES core: events are ``(time, priority, seq,
callback)`` entries in a heap; :meth:`Simulator.run_until` executes them in
order, advancing :attr:`Simulator.now`. Everything in :mod:`repro.net`,
:mod:`repro.web` and :mod:`repro.streaming` schedules onto one shared
simulator, so a whole lecture delivery (server pacing, link queues, client
rendering) is one deterministic event sequence.

The hot loop is tuned for the million-viewer load harness
(:mod:`repro.load`): :meth:`Simulator.run_until` drains the heap in a
single pass (no peek-then-pop double scan of cancelled entries),
:class:`PeriodicTask` schedules against its epoch so a million ticks stay
exactly aligned, :class:`SharedTicker` lets many clients ride one
simulator event per aligned tick instant, and
:meth:`Simulator.fast_forward` leaps across quiet windows in which only
*skippable* periodic ticks remain pending.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple


class SimulationError(Exception):
    """Scheduling misuse (negative delays, running backwards...)."""


class EventHandle(NamedTuple):
    """Returned by :meth:`Simulator.schedule`; lets callers cancel.

    A tuple subclass rather than a dataclass: handles are minted once per
    scheduled event, which puts their construction cost on the engine's
    hottest path.
    """

    time: float
    seq: int


class Simulator:
    """A deterministic discrete-event scheduler."""

    #: compaction threshold: rebuild the heap once cancelled entries both
    #: outnumber half the queue and exceed this floor (tiny queues churn)
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Tuple[float, int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._cancelled: set = set()
        self._pending_seqs: set = set()
        #: seqs of pending events whose owner tolerates being leapt over
        #: (see fast_forward); always a subset of _pending_seqs
        self._skippable_seqs: set = set()
        #: seq -> owner (PeriodicTask/SharedTicker) for skippable events
        self._skippable_owners: Dict[int, object] = {}
        self.events_processed = 0
        #: cancelled entries drained from the heap (each exactly once) —
        #: the regression counter for the unified drain path
        self.cancelled_drained = 0
        #: events leapt (never executed) by fast_forward
        self.events_leapt = 0
        # optional repro.obs.Tracer: only coarse run begin/end records —
        # per-event tracing would multiply the record stream by the event
        # count and is deliberately not offered
        self.tracer = None

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        skippable_owner: Optional[object] = None,
    ) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now.

        Ties on time break by ``priority`` (lower first), then insertion
        order — so a send scheduled before a receive at the same instant
        stays ordered. ``skippable_owner`` marks the event as a periodic
        tick :meth:`fast_forward` may leap; the owner must implement the
        ``next_time`` / ``leap_to`` protocol (see :class:`PeriodicTask`).
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        seq = next(self._seq)
        heapq.heappush(self._queue, (self.now + delay, priority, seq, callback))
        self._pending_seqs.add(seq)
        if skippable_owner is not None:
            self._skippable_seqs.add(seq)
            self._skippable_owners[seq] = skippable_owner
        return EventHandle(self.now + delay, seq)

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        skippable_owner: Optional[object] = None,
    ) -> EventHandle:
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        return self.schedule(
            when - self.now, callback, priority=priority,
            skippable_owner=skippable_owner,
        )

    def schedule_batch(
        self,
        events: Iterable[Tuple[float, Callable[[], None]]],
        *,
        priority: int = 0,
    ) -> List[EventHandle]:
        """Schedule many ``(delay, callback)`` pairs in one heap operation.

        For large batches the heap is extended and re-heapified once —
        O(n) instead of O(k·log n) sifts — which is what the packet pacer
        uses when a live capture chunk lands as dozens of packets at once.
        """
        entries = []
        handles = []
        for delay, callback in events:
            if delay < 0:
                raise SimulationError(f"negative delay {delay}")
            seq = next(self._seq)
            entries.append((self.now + delay, priority, seq, callback))
            handles.append(EventHandle(self.now + delay, seq))
            self._pending_seqs.add(seq)
        if not entries:
            return handles
        # heapify beats repeated pushes once the batch rivals log2(queue)
        if len(entries) > 8 and len(entries) ** 2 > len(self._queue):
            self._queue.extend(entries)
            heapq.heapify(self._queue)
        else:
            for entry in entries:
                heapq.heappush(self._queue, entry)
        return handles

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        if handle.seq not in self._pending_seqs:
            return
        self._pending_seqs.discard(handle.seq)
        self._cancelled.add(handle.seq)
        if self._skippable_seqs:
            self._skippable_seqs.discard(handle.seq)
            self._skippable_owners.pop(handle.seq, None)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Purge cancelled entries when they dominate the heap.

        Cancelled events otherwise linger until popped; a pacer that
        cancels most of what it schedules would make every push/pop pay
        for dead entries.
        """
        if (
            len(self._cancelled) > self.COMPACT_MIN_CANCELLED
            and len(self._cancelled) * 2 > len(self._queue)
        ):
            self._queue = [e for e in self._queue if e[2] not in self._cancelled]
            heapq.heapify(self._queue)
            self.cancelled_drained += len(self._cancelled)
            self._cancelled.clear()

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None."""
        while self._queue and self._queue[0][2] in self._cancelled:
            self._cancelled.discard(heapq.heappop(self._queue)[2])
            self.cancelled_drained += 1
        return self._queue[0][0] if self._queue else None

    def _discard_bookkeeping(self, seq: int) -> None:
        """Drop a popped live event's registry entries."""
        self._pending_seqs.discard(seq)
        if self._skippable_seqs:
            self._skippable_seqs.discard(seq)
            self._skippable_owners.pop(seq, None)

    def step(self) -> bool:
        """Execute the next event; False when the queue is empty."""
        while self._queue:
            time, _, seq, callback = heapq.heappop(self._queue)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                self.cancelled_drained += 1
                continue
            self._discard_bookkeeping(seq)
            self.now = time
            callback()
            self.events_processed += 1
            return True
        return False

    def run_until(self, when: float, *, max_events: int = 1_000_000) -> None:
        """Process every event up to (and including) time ``when``.

        The hot loop: one heap pop per entry, dead (cancelled) entries
        drained in the same pass as live ones — the former
        ``peek_time()``-then-``step()`` shape paid a second membership
        scan per event, which cancellation-heavy pacing turned into pure
        overhead.
        """
        if when < self.now:
            raise SimulationError("cannot run backwards")
        span = None
        if self.tracer is not None:
            span = self.tracer.begin("sim.run", until=when)
        # local bindings: every attribute lookup shaved here is paid back
        # once per event at 100k-viewer scale
        queue = self._queue
        cancelled = self._cancelled
        pending = self._pending_seqs
        pop = heapq.heappop
        processed = 0
        while queue:
            time = queue[0][0]
            if time > when:
                break
            entry = pop(queue)
            seq = entry[2]
            if seq in cancelled:
                cancelled.discard(seq)
                self.cancelled_drained += 1
                continue
            pending.discard(seq)
            if self._skippable_seqs:
                self._skippable_seqs.discard(seq)
                self._skippable_owners.pop(seq, None)
            self.now = entry[0]
            entry[3]()
            processed += 1
            if processed > max_events:
                self.events_processed += processed
                if self.tracer is not None:
                    self.tracer.end(span, events=processed, livelock=True)
                raise SimulationError(
                    f"more than {max_events} events before t={when} "
                    "(livelock in the model?)"
                )
        self.events_processed += processed
        self.now = when
        if self.tracer is not None:
            self.tracer.end(span, events=processed)

    def run(self, *, max_events: int = 1_000_000) -> None:
        """Process events until the queue drains."""
        queue = self._queue
        cancelled = self._cancelled
        pending = self._pending_seqs
        pop = heapq.heappop
        processed = 0
        while queue:
            entry = pop(queue)
            seq = entry[2]
            if seq in cancelled:
                cancelled.discard(seq)
                self.cancelled_drained += 1
                continue
            pending.discard(seq)
            if self._skippable_seqs:
                self._skippable_seqs.discard(seq)
                self._skippable_owners.pop(seq, None)
            self.now = entry[0]
            entry[3]()
            processed += 1
            if processed > max_events:
                self.events_processed += processed
                raise SimulationError(f"more than {max_events} events (livelock?)")
        self.events_processed += processed

    def fast_forward(self, to: float, *, max_events: int = 1_000_000) -> int:
        """Like :meth:`run_until`, but leap quiet windows.

        Whenever every pending event belongs to a *skippable* periodic
        owner (render-tick buses, cohort heartbeats — anything scheduled
        with ``skippable_owner``), the engine stops executing them one by
        one: due ticks are cancelled, the clock jumps to ``to``, and each
        owner is resynchronized against its epoch (tick indices advance as
        if every tick had fired; callbacks are **not** invoked — owners
        observe the gap through their ``on_skip`` hook). Events that are
        not skippable are executed normally, so the method degrades to
        ``run_until`` in busy windows.

        Returns the number of tick events leapt (never executed).
        """
        if to < self.now:
            raise SimulationError("cannot run backwards")
        leapt = 0
        processed = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > to:
                break
            if len(self._pending_seqs) == len(self._skippable_seqs):
                # quiet window: only periodic ticks remain — leap
                owners = {
                    owner
                    for owner in self._skippable_owners.values()
                    if owner.next_time <= to
                }
                self.now = to
                for owner in owners:
                    leapt += owner.leap_to(self, to)
                continue
            self.step()
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"more than {max_events} events before t={to} "
                    "(livelock in the model?)"
                )
        self.now = to
        self.events_leapt += leapt
        return leapt

    def pending(self) -> int:
        """Live (scheduled, not yet run or cancelled) event count — O(1)."""
        return len(self._pending_seqs)

    def pending_blockers(self) -> int:
        """Pending events that are not skippable periodic ticks — O(1).

        Zero means :meth:`fast_forward` can leap the current window.
        """
        return len(self._pending_seqs) - len(self._skippable_seqs)


class PeriodicTask:
    """A repeating event: fires every ``interval`` seconds until
    :meth:`stop` — e.g. a client's render tick or a beacon sender.

    Every tick is scheduled against the task's **epoch**
    (``start + n·interval``), not ``now + interval``: rescheduling off the
    current clock accumulates one float rounding error per tick, which
    after a million ticks walks the task measurably off its grid (and off
    the shared pacing groups aligned to it).

    ``skippable=True`` declares that the task tolerates
    :meth:`Simulator.fast_forward` leaping its ticks in quiet windows:
    callbacks for leapt ticks are not invoked; ``on_skip(n)`` (if given)
    is called once per leap with the number of ticks skipped, and
    :attr:`ticks` advances as if they had fired.
    """

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        callback: Callable[[], None],
        *,
        start_delay: float = 0.0,
        skippable: bool = False,
        on_skip: Optional[Callable[[int], None]] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError("interval must be positive")
        self.simulator = simulator
        self.interval = interval
        self.callback = callback
        self.skippable = skippable
        self.on_skip = on_skip
        self._stopped = False
        self.ticks = 0
        #: first-tick instant; every later tick lands on epoch + n·interval
        self.epoch = simulator.now + start_delay
        self.next_time = self.epoch
        self._handle: Optional[EventHandle] = simulator.schedule(
            start_delay, self._tick,
            skippable_owner=self if skippable else None,
        )

    def _tick(self) -> None:
        self._handle = None
        if self._stopped:
            return
        self.callback()
        self.ticks += 1
        if not self._stopped:
            self._schedule_next()

    def _schedule_next(self) -> None:
        when = self.epoch + self.ticks * self.interval
        now = self.simulator.now
        if when < now:
            when = now  # float fuzz or a leap landed us past the grid point
        self.next_time = when
        self._handle = self.simulator.schedule_at(
            when, self._tick, skippable_owner=self if self.skippable else None,
        )

    def leap_to(self, simulator: Simulator, to: float) -> int:
        """fast_forward protocol: absorb every tick due by ``to``.

        Cancels the pending tick event, advances :attr:`ticks` to the
        first grid point strictly after ``to``, reports the gap through
        ``on_skip``, and reschedules. Returns the number of ticks leapt.
        """
        if self._stopped or self.next_time > to:
            return 0
        if self._handle is not None:
            simulator.cancel(self._handle)
            self._handle = None
        # first tick index whose instant is > to
        target = math.floor((to - self.epoch) / self.interval) + 1
        while self.epoch + (target - 1) * self.interval > to:
            target -= 1  # float fuzz pushed us one grid point too far
        while self.epoch + target * self.interval <= to:
            target += 1
        skipped = target - self.ticks
        self.ticks = target
        if skipped > 0 and self.on_skip is not None:
            self.on_skip(skipped)
        self._schedule_next()
        return max(0, skipped)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self.simulator.cancel(self._handle)
            self._handle = None


class _TickerSlot:
    """One callback's registration on a :class:`SharedTicker`."""

    __slots__ = ("ticker", "key")

    def __init__(self, ticker: "SharedTicker", key: int) -> None:
        self.ticker = ticker
        self.key = key

    def stop(self) -> None:
        self.ticker.unregister(self)


class SharedTicker:
    """Many periodic callbacks riding **one** simulator event per instant.

    A thousand cohort delegates each running a private 50 ms render
    :class:`PeriodicTask` cost a thousand heap entries per tick instant.
    Registering them on one :class:`SharedTicker` collapses that to a
    single event whose firing walks the callback list in registration
    order. Ticks are epoch-aligned (``epoch + n·interval``), so every
    client on the ticker renders on the same grid — which is also what
    lets their deliveries coalesce into shared pacing groups upstream.

    The ticker only occupies the event queue while it has registrants;
    late registrants join at the next grid instant.
    """

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        *,
        skippable: bool = False,
    ) -> None:
        if interval <= 0:
            raise SimulationError("interval must be positive")
        self.simulator = simulator
        self.interval = interval
        self.skippable = skippable
        self.epoch = simulator.now
        self.ticks = 0
        self.next_time = self.epoch
        self._callbacks: Dict[int, Callable[[], None]] = {}
        self._keys = itertools.count()
        self._handle: Optional[EventHandle] = None

    def __len__(self) -> int:
        return len(self._callbacks)

    def register(self, callback: Callable[[], None]) -> _TickerSlot:
        slot = _TickerSlot(self, next(self._keys))
        self._callbacks[slot.key] = callback
        if self._handle is None:
            self._schedule_next()
        return slot

    def unregister(self, slot: _TickerSlot) -> None:
        self._callbacks.pop(slot.key, None)
        if not self._callbacks and self._handle is not None:
            self.simulator.cancel(self._handle)
            self._handle = None

    def _schedule_next(self) -> None:
        now = self.simulator.now
        if now > self.epoch:
            # next grid instant at or after now
            n = math.ceil((now - self.epoch) / self.interval - 1e-12)
            self.ticks = max(self.ticks, n)
        when = self.epoch + self.ticks * self.interval
        if when < now:
            when = now
        self.next_time = when
        self._handle = self.simulator.schedule_at(
            when, self._fire, skippable_owner=self if self.skippable else None,
        )

    def _fire(self) -> None:
        self._handle = None
        for callback in list(self._callbacks.values()):
            callback()
        self.ticks += 1
        if self._callbacks:
            self._schedule_next()

    def leap_to(self, simulator: Simulator, to: float) -> int:
        """fast_forward protocol — see :meth:`PeriodicTask.leap_to`."""
        if not self._callbacks or self.next_time > to:
            return 0
        if self._handle is not None:
            simulator.cancel(self._handle)
            self._handle = None
        start = self.ticks
        target = math.floor((to - self.epoch) / self.interval) + 1
        while self.epoch + (target - 1) * self.interval > to:
            target -= 1
        while self.epoch + target * self.interval <= to:
            target += 1
        self.ticks = max(start, target)
        self._schedule_next()
        return max(0, self.ticks - start)
