"""Discrete-event simulation engine — the clock under every network run.

A minimal but complete DES core: events are ``(time, priority, seq,
callback)`` entries in a heap; :meth:`Simulator.run_until` executes them in
order, advancing :attr:`Simulator.now`. Everything in :mod:`repro.net`,
:mod:`repro.web` and :mod:`repro.streaming` schedules onto one shared
simulator, so a whole lecture delivery (server pacing, link queues, client
rendering) is one deterministic event sequence.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple


class SimulationError(Exception):
    """Scheduling misuse (negative delays, running backwards...)."""


@dataclass(frozen=True)
class EventHandle:
    """Returned by :meth:`Simulator.schedule`; lets callers cancel."""

    time: float
    seq: int


class Simulator:
    """A deterministic discrete-event scheduler."""

    #: compaction threshold: rebuild the heap once cancelled entries both
    #: outnumber half the queue and exceed this floor (tiny queues churn)
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Tuple[float, int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._cancelled: set = set()
        self._pending_seqs: set = set()
        self.events_processed = 0
        # optional repro.obs.Tracer: only coarse run begin/end records —
        # per-event tracing would multiply the record stream by the event
        # count and is deliberately not offered
        self.tracer = None

    def schedule(
        self, delay: float, callback: Callable[[], None], *, priority: int = 0
    ) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now.

        Ties on time break by ``priority`` (lower first), then insertion
        order — so a send scheduled before a receive at the same instant
        stays ordered.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        seq = next(self._seq)
        heapq.heappush(self._queue, (self.now + delay, priority, seq, callback))
        self._pending_seqs.add(seq)
        return EventHandle(self.now + delay, seq)

    def schedule_at(
        self, when: float, callback: Callable[[], None], *, priority: int = 0
    ) -> EventHandle:
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        return self.schedule(when - self.now, callback, priority=priority)

    def schedule_batch(
        self,
        events: Iterable[Tuple[float, Callable[[], None]]],
        *,
        priority: int = 0,
    ) -> List[EventHandle]:
        """Schedule many ``(delay, callback)`` pairs in one heap operation.

        For large batches the heap is extended and re-heapified once —
        O(n) instead of O(k·log n) sifts — which is what the packet pacer
        uses when a live capture chunk lands as dozens of packets at once.
        """
        entries = []
        handles = []
        for delay, callback in events:
            if delay < 0:
                raise SimulationError(f"negative delay {delay}")
            seq = next(self._seq)
            entries.append((self.now + delay, priority, seq, callback))
            handles.append(EventHandle(self.now + delay, seq))
            self._pending_seqs.add(seq)
        if not entries:
            return handles
        # heapify beats repeated pushes once the batch rivals log2(queue)
        if len(entries) > 8 and len(entries) ** 2 > len(self._queue):
            self._queue.extend(entries)
            heapq.heapify(self._queue)
        else:
            for entry in entries:
                heapq.heappush(self._queue, entry)
        return handles

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        if handle.seq not in self._pending_seqs:
            return
        self._pending_seqs.discard(handle.seq)
        self._cancelled.add(handle.seq)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Purge cancelled entries when they dominate the heap.

        Cancelled events otherwise linger until popped; a pacer that
        cancels most of what it schedules would make every push/pop pay
        for dead entries.
        """
        if (
            len(self._cancelled) > self.COMPACT_MIN_CANCELLED
            and len(self._cancelled) * 2 > len(self._queue)
        ):
            self._queue = [e for e in self._queue if e[2] not in self._cancelled]
            heapq.heapify(self._queue)
            self._cancelled.clear()

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None."""
        while self._queue and self._queue[0][2] in self._cancelled:
            self._cancelled.discard(heapq.heappop(self._queue)[2])
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the next event; False when the queue is empty."""
        while self._queue:
            time, _, seq, callback = heapq.heappop(self._queue)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._pending_seqs.discard(seq)
            self.now = time
            callback()
            self.events_processed += 1
            return True
        return False

    def run_until(self, when: float, *, max_events: int = 1_000_000) -> None:
        """Process every event up to (and including) time ``when``."""
        if when < self.now:
            raise SimulationError("cannot run backwards")
        span = None
        if self.tracer is not None:
            span = self.tracer.begin("sim.run", until=when)
        processed = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > when:
                break
            self.step()
            processed += 1
            if processed > max_events:
                if self.tracer is not None:
                    self.tracer.end(span, events=processed, livelock=True)
                raise SimulationError(
                    f"more than {max_events} events before t={when} "
                    "(livelock in the model?)"
                )
        self.now = when
        if self.tracer is not None:
            self.tracer.end(span, events=processed)

    def run(self, *, max_events: int = 1_000_000) -> None:
        """Process events until the queue drains."""
        processed = 0
        while self.step():
            processed += 1
            if processed > max_events:
                raise SimulationError(f"more than {max_events} events (livelock?)")

    def pending(self) -> int:
        """Live (scheduled, not yet run or cancelled) event count — O(1)."""
        return len(self._pending_seqs)


class PeriodicTask:
    """A repeating event: reschedules itself every ``interval`` seconds
    until :meth:`stop` — e.g. a client's render tick or a beacon sender."""

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        callback: Callable[[], None],
        *,
        start_delay: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise SimulationError("interval must be positive")
        self.simulator = simulator
        self.interval = interval
        self.callback = callback
        self._stopped = False
        self.ticks = 0
        simulator.schedule(start_delay, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.callback()
        self.ticks += 1
        if not self._stopped:
            self.simulator.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._stopped = True
