"""Discrete-event simulation engine — the clock under every network run.

A minimal but complete DES core: events are ``(time, priority, seq,
callback)`` entries in a heap; :meth:`Simulator.run_until` executes them in
order, advancing :attr:`Simulator.now`. Everything in :mod:`repro.net`,
:mod:`repro.web` and :mod:`repro.streaming` schedules onto one shared
simulator, so a whole lecture delivery (server pacing, link queues, client
rendering) is one deterministic event sequence.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


class SimulationError(Exception):
    """Scheduling misuse (negative delays, running backwards...)."""


@dataclass(frozen=True)
class EventHandle:
    """Returned by :meth:`Simulator.schedule`; lets callers cancel."""

    time: float
    seq: int


class Simulator:
    """A deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Tuple[float, int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._cancelled: set = set()
        self.events_processed = 0

    def schedule(
        self, delay: float, callback: Callable[[], None], *, priority: int = 0
    ) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now.

        Ties on time break by ``priority`` (lower first), then insertion
        order — so a send scheduled before a receive at the same instant
        stays ordered.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        seq = next(self._seq)
        heapq.heappush(self._queue, (self.now + delay, priority, seq, callback))
        return EventHandle(self.now + delay, seq)

    def schedule_at(
        self, when: float, callback: Callable[[], None], *, priority: int = 0
    ) -> EventHandle:
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        return self.schedule(when - self.now, callback, priority=priority)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        self._cancelled.add(handle.seq)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None."""
        while self._queue and self._queue[0][2] in self._cancelled:
            self._cancelled.discard(heapq.heappop(self._queue)[2])
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the next event; False when the queue is empty."""
        while self._queue:
            time, _, seq, callback = heapq.heappop(self._queue)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self.now = time
            callback()
            self.events_processed += 1
            return True
        return False

    def run_until(self, when: float, *, max_events: int = 1_000_000) -> None:
        """Process every event up to (and including) time ``when``."""
        if when < self.now:
            raise SimulationError("cannot run backwards")
        processed = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > when:
                break
            self.step()
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"more than {max_events} events before t={when} "
                    "(livelock in the model?)"
                )
        self.now = when

    def run(self, *, max_events: int = 1_000_000) -> None:
        """Process events until the queue drains."""
        processed = 0
        while self.step():
            processed += 1
            if processed > max_events:
                raise SimulationError(f"more than {max_events} events (livelock?)")

    def pending(self) -> int:
        return sum(1 for e in self._queue if e[2] not in self._cancelled)


class PeriodicTask:
    """A repeating event: reschedules itself every ``interval`` seconds
    until :meth:`stop` — e.g. a client's render tick or a beacon sender."""

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        callback: Callable[[], None],
        *,
        start_delay: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise SimulationError("interval must be positive")
        self.simulator = simulator
        self.interval = interval
        self.callback = callback
        self._stopped = False
        self.ticks = 0
        simulator.schedule(start_delay, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.callback()
        self.ticks += 1
        if not self._stopped:
            self.simulator.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._stopped = True
