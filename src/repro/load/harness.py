"""Drive an :class:`~repro.load.workload.ArrivalScript` against the tier.

Two interchangeable execution modes consume the *same* deterministic
script:

* ``mode="real"`` — one :class:`~repro.streaming.client.MediaPlayer` per
  scripted viewer. Ground truth; cost grows linearly with the audience.
* ``mode="cohort"`` — arrivals are collapsed by
  :func:`~repro.load.workload.plan_cohorts` into per-edge
  :class:`~repro.load.cohort.CohortViewer` delegates; members that
  individuate mid-run are split out (seek) or departed (churn) at their
  scripted instants. Cost grows with the number of *distinct behaviours*,
  which is what lets one core model 10^5–10^6 viewers.

The driver walks scripted actions in time order, using
:meth:`Simulator.fast_forward` between them so quiet windows — where the
only pending work is skippable cohort heartbeats — are leapt instead of
ticked through. Render loops ride one :class:`SharedTicker` (one
simulator event per 50 ms tick regardless of player count) and are *not*
skippable: active playback is always simulated faithfully.
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..asf import ASFEncoder, EncoderConfig, slide_commands
from ..media import AudioObject, ImageObject, VideoObject, get_profile
from ..net.engine import SharedTicker
from ..obs.qoe import QoEAggregator, SessionQoE
from ..streaming import MediaServer, PublishError, SessionError, build_edge_tier
from ..streaming.client import MediaPlayer, PlayerError, PlayerState
from ..web.http import HTTPError
from ..web.http import VirtualNetwork
from .cohort import CohortViewer
from .workload import (
    ArrivalScript,
    LectureSpec,
    ViewerArrival,
    WorkloadSpec,
    generate,
    plan_cohorts,
)

#: grace period past the script horizon before the run is drained — covers
#: preroll buffering and the close handshakes that trail the last render
TAIL_SECONDS = 15.0


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (Linux ru_maxrss
    is reported in KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def lecture_catalog(
    count: int,
    duration: float,
    *,
    stagger: float = 0.0,
    live_fraction: float = 0.0,
) -> Tuple[LectureSpec, ...]:
    """A simple catalog: ``count`` lectures, start times ``stagger``
    apart, the first ``live_fraction`` of them marked live simulcasts."""
    live_count = int(round(count * live_fraction))
    return tuple(
        LectureSpec(
            name=f"lec{i}",
            duration=duration,
            start_time=i * stagger,
            live=i < live_count,
        )
        for i in range(count)
    )


def encode_lecture(
    name: str,
    duration: float,
    *,
    profile: str = "dsl-256k",
    slides: int = 2,
    fps: int = 10,
):
    """Encode one synthetic lecture ASF (video + audio + slide flips)."""
    per_slide = duration / max(slides, 1)
    return ASFEncoder(EncoderConfig(profile=get_profile(profile))).encode_file(
        file_id=name,
        video=VideoObject("talk", duration, width=320, height=240, fps=fps),
        audio=AudioObject("voice", duration),
        images=[
            (ImageObject(f"s{i}", per_slide, width=320, height=240),
             i * per_slide)
            for i in range(slides)
        ],
        commands=slide_commands(
            [(f"s{i}", i * per_slide) for i in range(slides)]
        ),
    )


@dataclass
class LoadConfig:
    """Serving-tier and client knobs for a harness run."""

    edges: int = 4
    #: > 0 builds a multi-level relay tree (:func:`build_relay_tree`)
    #: with this many regional parents, edges assigned round-robin;
    #: 0 keeps the flat one-level tier
    regions: int = 0
    #: publish lectures the catalog marks ``live`` as *real*
    #: :class:`~repro.lod.LiveCaptureSession` broadcasts (multicast
    #: passthrough) instead of pre-encoded VOD files
    live_capture: bool = False
    #: optional :class:`~repro.streaming.BackboneBudget` charged by every
    #: tree fill and live feed
    backbone_budget: Any = None
    #: bounded live history served to late joiners (tree mode); kept
    #: small by default — a flash crowd of real players each receiving
    #: a long catch-up train costs wall clock, not insight
    live_history_seconds: float = 5.0
    profile: str = "dsl-256k"
    slides: int = 2
    fps: int = 10
    pacing_quantum: float = 0.5
    burst_factor: float = 1.0
    #: > 0 arms a skippable presence beacon per cohort at this interval
    heartbeat_interval: float = 0.0
    client_bandwidth: float = 2_000_000.0
    client_delay: float = 0.02
    #: cache warming before viewers arrive. Three shapes:
    #: ``True`` (legacy) — naively pre-fill *every* edge with *every*
    #: lecture during setup; ``False`` — cold start; a
    #: :class:`~repro.catalog.PrefetchConfig` — scheduled warming: a
    #: :class:`~repro.catalog.PrefetchPlanner` turns the catalog's
    #: lecture start times + Zipf popularity into per-(lecture, relay)
    #: warm actions on the run's own timeline, traced and audited
    prefetch: Any = True
    #: per-relay packet-run cache budget handed to the tier builders
    cache_bytes: int = 64 * 1024 * 1024
    #: give every relay cache a TinyLFU admission policy (scan resistance)
    cache_admission: bool = False
    admission_seed: int = 0
    #: prefix for generated client host names — lets two runs share one
    #: :class:`ServingTier` (warm wave-2 measurements) without host
    #: collisions
    client_prefix: str = ""
    collect_qoe: bool = True
    max_events: int = 50_000_000
    tracer: Any = None
    #: :class:`~repro.streaming.recovery.RecoveryConfig` for every player
    #: (None: stalls are terminal, the pre-chaos behaviour). With a config
    #: set, each client host is linked to *every* relay so a reconnect can
    #: re-route to a surviving edge.
    recovery: Any = None
    #: :class:`~repro.net.faults.FaultPlan` applied to the built tier
    #: (origin registered as "origin", relays under their edge names)
    fault_plan: Any = None
    #: arm a :class:`~repro.control.HeartbeatMonitor` over the tier so
    #: crashes are *detected* (directory marked down) rather than known
    heartbeat_monitor: bool = False
    monitor_interval: float = 0.5
    monitor_miss_threshold: int = 3
    #: >= 0 crashes ``parent_kill_region``'s parent relay that many
    #: seconds after the tier is ready (same clock as fault-plan times)
    #: — the scripted trigger for heartbeat-driven region failover;
    #: requires ``regions > 0`` and (for recovery) ``heartbeat_monitor``
    parent_kill_at: float = -1.0
    parent_kill_region: str = "r0"
    #: shut surviving relays down after the run (settles replica sessions
    #: so post-run audits can demand an empty origin session table)
    teardown: bool = False


@dataclass
class ServingTier:
    """A built origin + relay tier, reusable across harness runs.

    ``run_workload(..., keep_tier=True)`` returns one on the result;
    passing it back via ``tier=`` replays a second wave against the
    *same* warm caches instead of rebuilding cold — the warm-vs-cold
    comparison the predictive-cache bench is made of. Use
    ``LoadConfig.client_prefix`` on the second run so generated client
    hosts don't collide with the first wave's.
    """

    net: Any
    origin: Any
    directory: Any
    parents: Dict[str, Any]
    relays: List[Any]
    captures: Dict[str, Any]
    #: :class:`~repro.catalog.CatalogIndex` over the published lectures
    #: (built when planner prefetch is configured; else None)
    catalog: Any = None


@dataclass
class LoadResult:
    """What a harness run measured."""

    mode: str
    viewers: int          #: modeled viewers (Σ multiplicity)
    sessions: int         #: real player objects driven
    cohorts: int
    splits: int
    departures: int
    events_processed: int
    events_leapt: int
    cancelled_drained: int
    beacons: int
    horizon: float        #: simulated seconds covered
    wall_s: float
    peak_rss: int         #: bytes
    qoe: Dict[str, Any] = field(default_factory=dict)
    #: supervision-plane facts when a monitor/fault plan ran: monitor
    #: counters, suspicion timeline, applied fault log
    control: Dict[str, Any] = field(default_factory=dict)
    #: the built tier, populated when ``keep_tier=True`` (not serialized)
    tier: Any = None

    @property
    def events_per_sec(self) -> float:
        return self.events_processed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def viewers_per_core(self) -> float:
        """Modeled viewers carried by this (single-core) run."""
        return float(self.viewers)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "viewers": self.viewers,
            "sessions": self.sessions,
            "cohorts": self.cohorts,
            "splits": self.splits,
            "departures": self.departures,
            "events_processed": self.events_processed,
            "events_leapt": self.events_leapt,
            "cancelled_drained": self.cancelled_drained,
            "beacons": self.beacons,
            "horizon_s": self.horizon,
            "wall_s": self.wall_s,
            "events_per_sec": self.events_per_sec,
            "viewers_per_core": self.viewers_per_core,
            "peak_rss_bytes": self.peak_rss,
            "qoe": self.qoe,
            "control": self.control,
        }


def run_workload(
    script: Union[ArrivalScript, WorkloadSpec],
    *,
    mode: str = "cohort",
    config: Optional[LoadConfig] = None,
    tier: Optional[ServingTier] = None,
    keep_tier: bool = False,
) -> LoadResult:
    """Build the serving tier, execute the script, measure everything.

    ``tier`` reuses an already-built :class:`ServingTier` (publishing,
    topology and — crucially — cache state carry over); ``keep_tier``
    returns the tier on ``result.tier`` for a later run to reuse.
    """
    if isinstance(script, WorkloadSpec):
        script = generate(script)
    if mode not in ("real", "cohort"):
        raise ValueError(f"unknown mode {mode!r}")
    cfg = config or LoadConfig()
    spec = script.spec

    # the prefetch knob is polymorphic: bool keeps the legacy behaviours
    # (True: naive warm-everything at setup; False: cold), anything else
    # is PrefetchConfig-shaped and engages the scheduled planner
    planner_cfg = None
    naive_prefetch = False
    if isinstance(cfg.prefetch, bool):
        naive_prefetch = cfg.prefetch
    elif cfg.prefetch is not None:
        planner_cfg = cfg.prefetch

    if tier is None:
        net = VirtualNetwork()
        sim = net.simulator
        if cfg.tracer is not None:
            cfg.tracer.bind_clock(sim)
        origin = MediaServer(
            net, "origin", port=8080,
            shared_pacing=True, pacing_quantum=cfg.pacing_quantum,
            tracer=cfg.tracer, trace_label="origin",
        )
        captures: Dict[str, Any] = {}
        catalog = None
        if planner_cfg is not None:
            from ..catalog import CatalogIndex

            catalog = CatalogIndex()
        for lecture in spec.lectures:
            if cfg.live_capture and lecture.live:
                from ..lod import LiveCaptureSession

                capture = LiveCaptureSession(
                    sim, get_profile(cfg.profile), chunk=0.5
                )
                captures[lecture.name] = capture
                origin.publish(lecture.name, capture.stream)
            else:
                asf = encode_lecture(
                    lecture.name, lecture.duration,
                    profile=cfg.profile, slides=cfg.slides, fps=cfg.fps,
                )
                origin.publish(lecture.name, asf)
                if catalog is not None:
                    catalog.add_variant(lecture.name, asf)
        parents: Dict[str, Any] = {}
        if cfg.regions > 0:
            from ..streaming import build_relay_tree

            region_map: Dict[str, List[str]] = {
                f"r{i}": [] for i in range(cfg.regions)
            }
            for i in range(cfg.edges):
                region_map[f"r{i % cfg.regions}"].append(f"edge{i}")
            directory, parents, relays = build_relay_tree(
                net, origin, region_map,
                pacing_quantum=cfg.pacing_quantum,
                join_quantum=spec.join_quantum,
                backbone_budget=cfg.backbone_budget,
                live_history_seconds=cfg.live_history_seconds,
                cache_bytes=cfg.cache_bytes,
                cache_admission=cfg.cache_admission,
                admission_seed=cfg.admission_seed,
                tracer=cfg.tracer,
            )
        else:
            directory, relays = build_edge_tier(
                net, origin, [f"edge{i}" for i in range(cfg.edges)],
                pacing_quantum=cfg.pacing_quantum,
                join_quantum=spec.join_quantum,
                cache_bytes=cfg.cache_bytes,
                cache_admission=cfg.cache_admission,
                admission_seed=cfg.admission_seed,
                tracer=cfg.tracer,
            )
        tier = ServingTier(
            net=net, origin=origin, directory=directory,
            parents=parents, relays=list(relays), captures=captures,
            catalog=catalog,
        )
    else:
        net = tier.net
        sim = net.simulator
        if cfg.tracer is not None:
            cfg.tracer.bind_clock(sim)
        origin = tier.origin
        directory = tier.directory
        parents = tier.parents
        relays = tier.relays
        captures = tier.captures
    relay_by_name = {r.name: r for r in relays}
    # tree mode keeps parents out of the leaf list; prefetch targets them
    for p in parents.values():
        relay_by_name.setdefault(p.name, p)
    origin_sessions_before = origin.sessions.total_created
    origin_bytes_before = origin.bytes_served
    if naive_prefetch:
        for relay in relays:
            for lecture in spec.lectures:
                if lecture.name in captures:
                    # a broadcast prefetch would pin the upstream feed
                    # before any viewer exists; live points attach on
                    # first join instead
                    continue
                relay.prefetch(lecture.name)

    monitor = None
    if cfg.heartbeat_monitor:
        from ..control import HeartbeatMonitor

        monitor = HeartbeatMonitor(
            net, directory,
            interval=cfg.monitor_interval,
            miss_threshold=cfg.monitor_miss_threshold,
            tracer=cfg.tracer,
        )
        monitor.watch_directory()
        monitor.start()

    injector = None
    fault_offset = 0.0
    if cfg.fault_plan is not None:
        from ..net.faults import FaultInjector

        injector = FaultInjector(net, {"origin": origin}, tracer=cfg.tracer)
        injector.register_directory(directory)
        # setup (prefetch fills) consumed simulated time; plan times mean
        # "seconds after the tier is ready", never "before setup ended"
        fault_offset = sim.now
        injector.apply(cfg.fault_plan, offset=fault_offset)

    parent_kill: Optional[Dict[str, Any]] = None
    if cfg.parent_kill_at >= 0.0:
        target = parents.get(cfg.parent_kill_region)
        if target is None:
            raise ValueError(
                f"parent_kill_region {cfg.parent_kill_region!r} has no "
                f"parent relay (regions={cfg.regions})"
            )
        kill_time = sim.now + cfg.parent_kill_at
        parent_kill = {
            "region": cfg.parent_kill_region,
            "parent": target.name,
            "time": kill_time,
        }
        sim.schedule(cfg.parent_kill_at, target.crash)

    def place(arrival: ViewerArrival) -> str:
        return directory.place(f"{arrival.viewer}|{arrival.lecture}")

    # every render loop in the run shares one ticker: one simulator event
    # per 50 ms instant no matter how many players are live. NOT skippable
    # — active playback is never leapt over.
    render_ticker = SharedTicker(sim, MediaPlayer.RENDER_TICK)

    # (time, seq, fn) — seq keeps the sort stable and deterministic
    actions: List[Tuple[float, int, Any]] = []
    seq = iter(range(1 << 30))

    # -- scheduled prefetch: plan warms onto the same action timeline --
    prefetch_stats: Dict[str, Any] = {}
    if planner_cfg is not None and planner_cfg.enabled:
        from ..catalog import PrefetchPlanner

        planner = PrefetchPlanner(planner_cfg, catalog=tier.catalog)
        if cfg.regions > 0:
            parent_names = sorted(p.name for p in parents.values())
            leaf_names = sorted(
                r.name for r in relays if not r.is_parent
            )
        else:
            # a flat tier has no hierarchy to warm through: the edges
            # themselves are the warm targets
            parent_names = sorted(r.name for r in relays)
            leaf_names = []
        items = planner.plan(
            spec.lectures, parents=parent_names, leaves=leaf_names,
        )
        run_id = f"{cfg.client_prefix or ''}prefetch"
        prefetch_stats = {
            "run": run_id,
            "items": len(items),
            "planned_bytes": planner.planned_bytes(items),
            "budget_skipped": planner.budget_skipped,
            "ok": 0,
            "failed": 0,
            "warmed_bytes": 0,
            "origin_egress_bytes": 0,
        }
        if cfg.tracer is not None:
            cfg.tracer.event(
                "prefetch.plan",
                run=run_id, items=len(items),
                planned_bytes=prefetch_stats["planned_bytes"],
                budget_bytes=planner_cfg.byte_budget,
            )

        def _warm(item) -> None:
            relay = relay_by_name.get(item.target)
            span = None
            if cfg.tracer is not None:
                span = cfg.tracer.begin(
                    "prefetch",
                    run=run_id, edge=item.target, point=item.point,
                    expect_key=item.expect_key, rank=item.rank,
                )
            egress_before = origin.bytes_served
            ok = False
            landed = ""
            if relay is not None and not relay.crashed:
                try:
                    relay.prefetch(item.point)
                except (PublishError, SessionError, HTTPError):
                    pass  # a failed warm is a cold-start, not a run abort
                else:
                    landed = relay._cache_keys.get(item.point, "")
                    ok = bool(landed) and (
                        not item.expect_key or landed == item.expect_key
                    )
            warmed = item.size_bytes if ok else 0
            prefetch_stats["ok" if ok else "failed"] += 1
            prefetch_stats["warmed_bytes"] += warmed
            prefetch_stats["origin_egress_bytes"] += (
                origin.bytes_served - egress_before
            )
            if span is not None:
                cfg.tracer.end(
                    span, ok=ok, bytes=warmed, cache_key=landed,
                )

        for item in items:
            actions.append((item.at, next(seq), lambda it=item: _warm(it)))

    cohorts: List[CohortViewer] = []
    players: List[MediaPlayer] = []
    #: (viewer object, lecture) for everyone watching a live capture —
    #: a broadcast has no end-of-stream on the wire, so the harness
    #: stops these explicitly once the capture finishes
    live_watchers: List[Tuple[Any, str]] = []

    def _member_seek(cohort: CohortViewer, member: ViewerArrival,
                     relay_host: str, position: float) -> None:
        """A cohort member seeks: split it out as a real player — unless
        it is the *only* member left, in which case the delegate simply
        seeks itself."""
        delegate = cohort.delegate
        if delegate.multiplicity >= 2:
            if delegate.state not in (PlayerState.BUFFERING,
                                      PlayerState.PLAYING,
                                      PlayerState.PAUSED):
                return  # playback already over; nothing to diverge from
            net.connect(relay_host, member.viewer,
                        bandwidth=cfg.client_bandwidth, delay=cfg.client_delay)
            cohort.split(member.viewer, user=member.viewer, seek_to=position)
        elif delegate.state in (PlayerState.PLAYING, PlayerState.PAUSED):
            delegate.seek(position)

    # with recovery armed, a player may re-route to any surviving relay,
    # so its host needs a provisioned link to each of them up front
    def _connect_client(host: str, placed_relay) -> None:
        targets = relays if cfg.recovery is not None else [placed_relay]
        for r in targets:
            net.connect(r.host, host,
                        bandwidth=cfg.client_bandwidth, delay=cfg.client_delay)

    client_directory = directory if cfg.recovery is not None else None

    # a flash-crowd arrival can land on an edge that died moments earlier
    # — before the monitor's suspicion re-routes placement. With recovery
    # armed those joins are *deferred*: re-resolved through the directory
    # and retried until detection catches up (bounded), instead of
    # aborting the whole run on one unlucky viewer.
    joins_deferred = [0]
    join_retry_delay = max(cfg.monitor_interval, 0.5)

    def _deferred_join(host: str, lecture: str, start_fn, attempt: int = 0):
        try:
            start_fn(directory.url_for(host, lecture) if attempt else None)
        except (PlayerError, PublishError, HTTPError):
            if client_directory is None or attempt >= 8:
                raise
            joins_deferred[0] += 1
            sim.schedule(
                join_retry_delay,
                lambda: _deferred_join(host, lecture, start_fn, attempt + 1),
            )

    if mode == "cohort":
        plans = plan_cohorts(script, place, join_quantum=spec.join_quantum)
        for idx, plan in enumerate(plans):
            relay = relay_by_name[plan.edge]
            host = f"{cfg.client_prefix}cohort{idx}"
            _connect_client(host, relay)
            cohort = CohortViewer(
                net, host,
                f"{directory.edge_url(plan.edge)}/lod/{plan.lecture}",
                size=plan.multiplicity,
                tracer=cfg.tracer,
                render_ticker=render_ticker,
                recovery=cfg.recovery,
                directory=client_directory,
                heartbeat_interval=cfg.heartbeat_interval,
            )
            cohorts.append(cohort)
            if plan.lecture in captures:
                live_watchers.append((cohort, plan.lecture))

            def _cohort_start(url, c=cohort, p=plan):
                if url is not None:
                    c.url = url
                c.start(start=p.start_position, burst_factor=cfg.burst_factor)

            actions.append((
                plan.join_time, next(seq),
                lambda h=host, p=plan, fn=_cohort_start:
                    _deferred_join(h, p.lecture, fn),
            ))
            for member in plan.individuating_members():
                if member.seek is not None:
                    seek_at, seek_to = member.seek
                    actions.append((
                        seek_at, next(seq),
                        lambda c=cohort, m=member, r=relay.host, p=seek_to:
                            _member_seek(c, m, r, p),
                    ))
                elif member.leave_time is not None:
                    actions.append((
                        member.leave_time, next(seq),
                        lambda c=cohort, m=member: c.depart(user=m.viewer),
                    ))
    else:
        def _join(player: MediaPlayer, relay, arrival: ViewerArrival,
                  url: Optional[str] = None) -> None:
            if url is None:
                url = f"{directory.edge_url(relay.name)}/lod/{arrival.lecture}"
            player.connect(url)
            player.play(start=arrival.start_position,
                        burst_factor=cfg.burst_factor)

        def _leave(player: MediaPlayer) -> None:
            if player.state not in (PlayerState.IDLE, PlayerState.FINISHED):
                player.stop()

        def _seek(player: MediaPlayer, position: float) -> None:
            if player.state in (PlayerState.PLAYING, PlayerState.PAUSED):
                player.seek(position)

        for arrival in script.arrivals:
            relay = relay_by_name[place(arrival)]
            viewer_host = f"{cfg.client_prefix}{arrival.viewer}"
            _connect_client(viewer_host, relay)
            player = MediaPlayer(
                net, viewer_host, user=arrival.viewer,
                tracer=cfg.tracer, render_ticker=render_ticker,
                recovery=cfg.recovery, directory=client_directory,
            )
            players.append(player)
            if arrival.lecture in captures:
                live_watchers.append((player, arrival.lecture))
            actions.append((
                arrival.join_time, next(seq),
                lambda p=player, r=relay, a=arrival, h=viewer_host:
                    _deferred_join(
                        h, a.lecture,
                        lambda url, p=p, r=r, a=a: _join(p, r, a, url=url),
                    ),
            ))
            if arrival.seek is not None:
                seek_at, seek_to = arrival.seek
                actions.append((
                    seek_at, next(seq),
                    lambda p=player, pos=seek_to: _seek(p, pos),
                ))
            if arrival.leave_time is not None:
                actions.append((
                    arrival.leave_time, next(seq),
                    lambda p=player: _leave(p),
                ))

    # ------------------------------------------------------------------
    # drive: fast-forward between scripted instants, act inline. Between
    # actions only simulator-scheduled work (packets, renders, beacons)
    # is pending, so beacon-only windows are leapt, never ticked.
    # ------------------------------------------------------------------
    actions.sort(key=lambda a: (a[0], a[1]))
    events_before = sim.events_processed
    t0 = time.perf_counter()
    for when, _, fn in actions:
        if when > sim.now:
            sim.fast_forward(when, max_events=cfg.max_events)
        fn()
    horizon = max(script.horizon, sim.now) + TAIL_SECONDS
    sim.fast_forward(horizon, max_events=cfg.max_events)
    for cohort in cohorts:
        cohort.stop_heartbeat()
    if monitor is not None:
        # beacons and sweeps are non-skippable by design; a live monitor
        # would keep the queue populated forever
        monitor.stop()
    for capture in captures.values():
        # a live capture's chunk task would otherwise feed the queue
        # forever; finishing closes the broadcast stream end to end
        capture.finish()
    for watcher, _ in live_watchers:
        watcher_players = (
            [watcher.delegate, *watcher.splits.values()]
            if isinstance(watcher, CohortViewer) else [watcher]
        )
        for p in watcher_players:
            if p.state not in (PlayerState.IDLE, PlayerState.FINISHED):
                p.stop()
    sim.run(max_events=cfg.max_events)
    if cfg.teardown:
        # children before parents: a leaf's upstream close must reach a
        # parent that is still serving. Leaves *promoted* to acting
        # parent during a failover go in the parent wave — their former
        # siblings now hold upstream sessions at them.
        for relay in relays:
            if not relay.is_parent and not relay.crashed and not relay.draining:
                relay.shutdown()
        for relay in relays:
            if relay.is_parent and not relay.crashed and not relay.draining:
                relay.shutdown()
        for parent in parents.values():
            if not parent.crashed and not parent.draining:
                parent.shutdown()
        sim.run(max_events=cfg.max_events)
    wall = time.perf_counter() - t0

    qoe_summary: Dict[str, Any] = {}
    if cfg.collect_qoe:
        aggregator = QoEAggregator()
        for cohort in cohorts:
            for qoe in cohort.qoes():
                aggregator.add(qoe)
        for player in players:
            aggregator.add(
                SessionQoE.from_report(player.report(), client=player.user)
            )
        qoe_summary = aggregator.summary()

    control_facts: Dict[str, Any] = {
        # per-run deltas, so a reused ServingTier's second wave reports
        # its own origin cost, not the accumulated total
        "origin": {
            "sessions_created":
                origin.sessions.total_created - origin_sessions_before,
            "bytes_served": origin.bytes_served - origin_bytes_before,
        }
    }
    if prefetch_stats:
        control_facts["prefetch"] = prefetch_stats
    if monitor is not None:
        control_facts["monitor"] = monitor.counters.as_dict()
        control_facts["suspicions"] = list(monitor.suspicions)
        control_facts["failovers"] = list(monitor.failovers)
    if parent_kill is not None:
        control_facts["parent_kill"] = parent_kill
    if joins_deferred[0]:
        control_facts["joins_deferred"] = joins_deferred[0]
    if injector is not None:
        control_facts["fault_offset"] = fault_offset
        control_facts["faults_applied"] = [
            {"time": at, "kind": kind, "target": "/".join(target)}
            for at, kind, target in injector.log
        ]

    splits = sum(len(c.splits) for c in cohorts)
    if mode == "cohort":
        viewers = sum(c.size for c in cohorts)
        sessions = len(cohorts) + splits
    else:
        viewers = len(players)
        sessions = len(players)
    return LoadResult(
        mode=mode,
        viewers=viewers,
        sessions=sessions,
        cohorts=len(cohorts),
        splits=splits,
        departures=sum(len(c.departed) for c in cohorts),
        events_processed=sim.events_processed - events_before,
        events_leapt=sim.events_leapt,
        cancelled_drained=sim.cancelled_drained,
        beacons=sum(c.beacons for c in cohorts),
        horizon=sim.now,
        wall_s=wall,
        peak_rss=peak_rss_bytes(),
        qoe=qoe_summary,
        control=control_facts,
        tier=tier if keep_tier else None,
    )
