"""Catalog-driven workload generation for the load harness.

The paper's system served campus lectures; the workloads that stress a
distributed serving tier have well-known shape (Kannan & Andres; the
VCoIP e-learning measurements): **Zipf-skewed** popularity across the
lecture catalog, **flash crowds** at scheduled start times, background
arrivals modulated by a **diurnal** cycle, and early-leave **churn**.
:func:`generate` turns a :class:`WorkloadSpec` into a deterministic
:class:`ArrivalScript` — the same seed always yields the same viewers,
lectures, join/leave/seek times — consumable by both the real-client
path and the cohort-scaled path of :mod:`repro.load.harness`.

:func:`plan_cohorts` is the aggregation step: viewers landing on the same
edge, same lecture, inside the same ``join_quantum`` bucket form one
:class:`CohortPlan` served by a single delegate session. Members whose
script individuates them later (a seek, an early leave) stay listed on
the plan so the harness can split or depart them at the right instant.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple


class WorkloadError(Exception):
    """Spec misuse (no lectures, bad rates...)."""


@dataclass(frozen=True)
class LectureSpec:
    """One catalog entry.

    ``start_time`` anchors the flash crowd (the scheduled lecture slot);
    ``live`` marks a simulcast — its viewers join mid-stream at the
    current broadcast position instead of playing from zero.
    """

    name: str
    duration: float
    start_time: float = 0.0
    live: bool = False

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError(f"lecture {self.name!r} needs duration > 0")
        if self.start_time < 0:
            raise WorkloadError(f"lecture {self.name!r} starts before t=0")

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


class ViewerArrival(NamedTuple):
    """One viewer's scripted behaviour (tuple-backed: a million of these
    must stay cheap)."""

    viewer: str
    lecture: str
    join_time: float
    #: play offset into the content at join (0 for on-demand; the current
    #: broadcast position for live mid-joins)
    start_position: float
    #: absolute time the viewer leaves early, or None (watch to the end)
    leave_time: Optional[float]
    #: (absolute_time, target_position) of a mid-watch seek, or None
    seek: Optional[Tuple[float, float]]
    live: bool

    @property
    def individuates(self) -> bool:
        """True when this member diverges from a cohort mid-run."""
        return self.seek is not None or self.leave_time is not None


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs of the generated audience."""

    viewers: int
    lectures: Tuple[LectureSpec, ...]
    seed: int = 0
    #: Zipf exponent over catalog rank (order given): weight 1/rank^s.
    #: 0 = uniform; ~1 = classic web popularity skew
    zipf_s: float = 1.1
    #: fraction of each lecture's audience arriving in the scheduled burst
    flash_fraction: float = 0.7
    #: burst spread: flash arrivals land within this many seconds after
    #: the lecture's start_time (truncated-exponential, front-loaded)
    flash_width: float = 2.0
    #: fraction of viewers that leave before the end
    churn_rate: float = 0.0
    #: fraction of (on-demand, staying) viewers that seek once mid-watch
    seek_rate: float = 0.0
    #: > 0: background (non-flash) arrivals are weighted by a sinusoidal
    #: day curve of this period instead of landing uniformly
    diurnal_period: float = 0.0
    #: arrival quantization for cohort planning (see plan_cohorts)
    join_quantum: float = 0.5

    def __post_init__(self) -> None:
        if self.viewers < 1:
            raise WorkloadError("need at least one viewer")
        if not self.lectures:
            raise WorkloadError("need at least one lecture")
        for name, rate in (
            ("flash_fraction", self.flash_fraction),
            ("churn_rate", self.churn_rate),
            ("seek_rate", self.seek_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1]")
        if self.zipf_s < 0:
            raise WorkloadError("zipf_s must be >= 0")
        if self.flash_width < 0:
            raise WorkloadError("flash_width must be >= 0")
        if self.join_quantum <= 0:
            raise WorkloadError("join_quantum must be > 0")


@dataclass
class ArrivalScript:
    """A deterministic, time-ordered audience script."""

    spec: WorkloadSpec
    arrivals: List[ViewerArrival] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def horizon(self) -> float:
        """Latest instant any scripted playback can still be running."""
        latest = 0.0
        by_name = {lec.name: lec for lec in self.spec.lectures}
        for arrival in self.arrivals:
            lecture = by_name[arrival.lecture]
            end = arrival.join_time + (lecture.duration - arrival.start_position)
            if arrival.seek is not None:
                # seeking backwards can extend the watch past the natural end
                seek_at, seek_to = arrival.seek
                end = max(end, seek_at + (lecture.duration - seek_to))
            if arrival.leave_time is not None:
                end = min(end, arrival.leave_time)
            latest = max(latest, end)
        return latest

    def by_lecture(self) -> Dict[str, List[ViewerArrival]]:
        out: Dict[str, List[ViewerArrival]] = {}
        for arrival in self.arrivals:
            out.setdefault(arrival.lecture, []).append(arrival)
        return out


def _zipf_cumulative(n: int, s: float) -> List[float]:
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    cumulative[-1] = 1.0  # guard float undershoot for bisect
    return cumulative


def _diurnal_sample(rng: random.Random, lo: float, hi: float, period: float) -> float:
    """Arrival time in [lo, hi] weighted by a sinusoidal day curve.

    Rejection sampling with a bounded number of rounds keeps generation
    deterministic and O(1) amortized; after the bound, the last candidate
    is accepted (a slight flattening, never a hang).
    """
    for _ in range(16):
        t = rng.uniform(lo, hi)
        w = 0.5 * (1.0 + math.sin(2.0 * math.pi * (t % period) / period))
        if rng.random() <= w:
            return t
    return t


def generate(spec: WorkloadSpec) -> ArrivalScript:
    """Deterministically expand a spec into per-viewer arrivals."""
    rng = random.Random(spec.seed)
    cumulative = _zipf_cumulative(len(spec.lectures), spec.zipf_s)
    arrivals: List[ViewerArrival] = []
    for i in range(spec.viewers):
        lecture = spec.lectures[bisect.bisect_left(cumulative, rng.random())]
        flash = rng.random() < spec.flash_fraction
        if flash or lecture.live:
            # the scheduled burst: front-loaded within flash_width. Live
            # simulcasts have no on-demand tail — stragglers still join
            # during the broadcast window
            if lecture.live and not flash:
                join = rng.uniform(lecture.start_time, lecture.end_time)
            elif spec.flash_width > 0:
                join = lecture.start_time + min(
                    rng.expovariate(3.0 / spec.flash_width), spec.flash_width
                )
            else:
                join = lecture.start_time
        else:
            # background on-demand arrivals over the catalog day
            lo = lecture.start_time
            hi = lecture.end_time
            if spec.diurnal_period > 0:
                join = _diurnal_sample(rng, lo, hi, spec.diurnal_period)
            else:
                join = rng.uniform(lo, hi)
        if lecture.live:
            start_position = min(
                max(0.0, join - lecture.start_time), lecture.duration
            )
        else:
            start_position = 0.0
        remaining = lecture.duration - start_position
        leave_time: Optional[float] = None
        seek: Optional[Tuple[float, float]] = None
        if rng.random() < spec.churn_rate:
            leave_time = join + rng.uniform(0.25, 0.9) * remaining
        elif (
            not lecture.live
            and spec.seek_rate > 0
            and rng.random() < spec.seek_rate
        ):
            seek_at = join + rng.uniform(0.3, 0.6) * remaining
            seek_to = rng.uniform(0.5, 0.95) * lecture.duration
            seek = (seek_at, seek_to)
        arrivals.append(
            ViewerArrival(
                viewer=f"v{i}",
                lecture=lecture.name,
                join_time=join,
                start_position=start_position,
                leave_time=leave_time,
                seek=seek,
                live=lecture.live,
            )
        )
    arrivals.sort(key=lambda a: (a.join_time, a.viewer))
    return ArrivalScript(spec=spec, arrivals=arrivals)


@dataclass
class CohortPlan:
    """Viewers collapsed onto one delegate session.

    ``join_time`` is the bucket boundary every member is snapped to —
    the same quantization the edge tier's ``join_quantum`` applies to
    real arrivals, so a cohort joins exactly where its members' pacing
    group would have formed.
    """

    edge: str
    lecture: str
    join_time: float
    start_position: float
    live: bool
    members: List[ViewerArrival] = field(default_factory=list)

    @property
    def multiplicity(self) -> int:
        return len(self.members)

    def individuating_members(self) -> List[ViewerArrival]:
        return [m for m in self.members if m.individuates]


def plan_cohorts(
    script: ArrivalScript,
    place: Callable[[ViewerArrival], str],
    *,
    join_quantum: Optional[float] = None,
) -> List[CohortPlan]:
    """Group a script into per-edge cohorts.

    ``place`` maps each arrival to an edge name (typically the consistent-
    hash directory). Viewers of one lecture landing on one edge within one
    ``join_quantum`` bucket become a single :class:`CohortPlan`; live
    mid-joins additionally bucket by quantized start position, since
    members attaching at different broadcast offsets never shared a
    delivery. Plans come back ordered by ``join_time``.
    """
    quantum = join_quantum if join_quantum is not None else script.spec.join_quantum
    if quantum <= 0:
        raise WorkloadError("join_quantum must be > 0")
    plans: Dict[tuple, CohortPlan] = {}
    for arrival in script.arrivals:
        edge = place(arrival)
        bucket = math.floor(arrival.join_time / quantum + 1e-9)
        position_bucket = (
            math.floor(arrival.start_position / quantum + 1e-9)
            if arrival.live else 0
        )
        key = (edge, arrival.lecture, bucket, position_bucket)
        plan = plans.get(key)
        if plan is None:
            plan = CohortPlan(
                edge=edge,
                lecture=arrival.lecture,
                join_time=bucket * quantum,
                start_position=position_bucket * quantum,
                live=arrival.live,
            )
            plans[key] = plan
        plan.members.append(arrival)
    ordered = sorted(
        plans.values(), key=lambda p: (p.join_time, p.edge, p.lecture)
    )
    return ordered
