"""Per-edge viewer cohorts — one real session standing for N viewers.

A :class:`CohortViewer` owns a single delegate
:class:`~repro.streaming.client.MediaPlayer` opened with
``multiplicity=N``: the server paces exactly one carrier stream, the
delegate renders it once, and every QoE measurement counts N times in the
rollups. This is the aggregation that takes the simulator from tens of
viewers to a million — the cost of a cohort is the cost of one client,
whatever its size.

De-aggregation is lazy: the moment a member individuates (a scripted
seek, a reconnect-style fault), :meth:`split` peels a real player out via
:meth:`MediaPlayer.split_member` — byte-identical, from that instant, to
a viewer that had been independent all along (see
``tests/test_cohort_equivalence.py``). Members that merely leave early
:meth:`depart` with an honest snapshot of the delegate's state at that
moment; no split is needed because a leaver's history never diverged.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..net.engine import PeriodicTask, Simulator
from ..obs.qoe import SessionQoE
from ..streaming.client import MediaPlayer, PlayerState
from ..web.http import VirtualNetwork


class CohortError(Exception):
    """Cohort lifecycle misuse."""


class CohortViewer:
    """N modeled viewers riding one delegate player.

    ``heartbeat_interval`` > 0 runs a *skippable* presence beacon — the
    kind of periodic per-viewer tick (liveness, telemetry) a real fleet
    would emit. It is scheduled with ``skippable_owner`` so
    :meth:`Simulator.fast_forward` can leap beacon-only windows after
    playback drains; leapt ticks still count via ``on_skip``.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        host: str,
        url: str,
        *,
        size: int,
        user: str = "",
        tracer=None,
        render_ticker=None,
        recovery=None,
        directory=None,
        preroll_override: Optional[float] = None,
        heartbeat_interval: float = 0.0,
    ) -> None:
        if size < 1:
            raise CohortError(f"cohort size must be >= 1, got {size}")
        self.network = network
        self.simulator: Simulator = network.simulator
        self.url = url
        self.size = size
        self.delegate = MediaPlayer(
            network,
            host,
            user=user or host,
            tracer=tracer,
            recovery=recovery,
            directory=directory,
            preroll_override=preroll_override,
            multiplicity=size,
            render_ticker=render_ticker,
        )
        self.splits: Dict[str, MediaPlayer] = {}
        self.departed: List[SessionQoE] = []
        #: beacon ticks x multiplicity accumulated (including leapt ones)
        self.beacons = 0
        self._heartbeat: Optional[PeriodicTask] = None
        self._heartbeat_interval = heartbeat_interval

    # ------------------------------------------------------------------

    @property
    def multiplicity(self) -> int:
        """Viewers still aggregated behind the delegate."""
        return self.delegate.multiplicity

    def start(self, *, start: float = 0.0, burst_factor: float = 1.0) -> None:
        """Connect and play the delegate; arm the presence beacon."""
        self.delegate.connect(self.url)
        self.delegate.play(start=start, burst_factor=burst_factor)
        if self._heartbeat_interval > 0:
            self._heartbeat = PeriodicTask(
                self.simulator,
                self._heartbeat_interval,
                self._beat,
                skippable=True,
                on_skip=self._beats_skipped,
            )

    def _beat(self) -> None:
        self.beacons += self.delegate.multiplicity

    def _beats_skipped(self, ticks: int) -> None:
        # fast_forward leapt `ticks` beacon instants; account for them as
        # if each had fired against the current cohort size
        self.beacons += ticks * self.delegate.multiplicity

    # ------------------------------------------------------------------
    # de-aggregation
    # ------------------------------------------------------------------

    def split(
        self,
        member_host: str,
        *,
        user: str = "",
        seek_to: Optional[float] = None,
        render_ticker=None,
    ) -> MediaPlayer:
        """Peel one member out as a real, independent player."""
        twin = self.delegate.split_member(
            member_host, user=user, seek_to=seek_to,
            render_ticker=render_ticker,
        )
        self.splits[twin.user] = twin
        return twin

    def depart(self, *, user: str = "") -> Optional[SessionQoE]:
        """One member leaves early: snapshot its QoE, shrink the cohort.

        The leaver's experience up to this instant is exactly the
        delegate's, so the snapshot is honest without any divergent
        delivery. Departing the *last* member stops the delegate itself
        and returns None — the final member's QoE comes from
        :meth:`qoes` like every other delegate measurement.
        """
        if self.delegate.multiplicity <= 1:
            if self.delegate.state not in (
                PlayerState.FINISHED, PlayerState.IDLE
            ):
                self.delegate.stop()
            self.stop_heartbeat()
            return None
        report = self.delegate.report()
        qoe = SessionQoE.from_report(
            report,
            client=user or f"{self.delegate.user}#departed{len(self.departed)}",
            multiplicity=1,
        )
        self.departed.append(qoe)
        self.delegate.multiplicity -= 1
        return qoe

    # ------------------------------------------------------------------
    # teardown & reporting
    # ------------------------------------------------------------------

    def stop_heartbeat(self) -> None:
        if self._heartbeat is not None:
            self._heartbeat.stop()
            self._heartbeat = None

    def finished(self) -> bool:
        players = [self.delegate, *self.splits.values()]
        return all(p.state is PlayerState.FINISHED for p in players)

    def qoes(self, *, clean_media_bytes: int = 0) -> List[SessionQoE]:
        """Every modeled viewer's QoE: the delegate measurement weighted
        by the remaining cohort size, one entry per split twin, and the
        departure snapshots."""
        out: List[SessionQoE] = []
        if self.delegate.state is not PlayerState.IDLE:
            out.append(
                SessionQoE.from_report(
                    self.delegate.report(),
                    client=self.delegate.user,
                    clean_media_bytes=clean_media_bytes,
                    multiplicity=self.delegate.multiplicity,
                )
            )
        for name, twin in self.splits.items():
            out.append(
                SessionQoE.from_report(
                    twin.report(), client=name, multiplicity=1,
                )
            )
        out.extend(self.departed)
        return out
