"""Million-viewer load harness: workload generation, per-edge viewer
cohorts, and the driver that executes either against the serving tier.

See :mod:`repro.load.workload` for the catalog-driven generator (Zipf
popularity, flash crowds, diurnal churn), :mod:`repro.load.cohort` for
the N-viewers-one-session aggregation with lazy de-aggregation, and
:mod:`repro.load.harness` for the real/cohort execution modes and the
measurements behind ``BENCH_load_scale.json``.
"""

from .cohort import CohortError, CohortViewer
from .harness import (
    LoadConfig,
    LoadResult,
    encode_lecture,
    lecture_catalog,
    peak_rss_bytes,
    run_workload,
)
from .workload import (
    ArrivalScript,
    CohortPlan,
    LectureSpec,
    ViewerArrival,
    WorkloadError,
    WorkloadSpec,
    generate,
    plan_cohorts,
)

__all__ = [
    "ArrivalScript",
    "CohortError",
    "CohortPlan",
    "CohortViewer",
    "LectureSpec",
    "LoadConfig",
    "LoadResult",
    "ViewerArrival",
    "WorkloadError",
    "WorkloadSpec",
    "encode_lecture",
    "generate",
    "lecture_catalog",
    "peak_rss_bytes",
    "plan_cohorts",
    "run_workload",
]
