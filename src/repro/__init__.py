"""repro — reproduction of "Implementing a Distributed Lecture-on-Demand
Multimedia Presentation System" (Deng, Shih, Shiau, Chang & Liu, ICDCS
Workshops 2002).

Subpackages
-----------
:mod:`repro.core`
    Petri nets: base model, analysis, timed semantics, OCPN/XOCPN
    compilers, and the paper's extended timed Petri net (interaction,
    distributed sync, floor control) plus the prioritized-net baseline.
:mod:`repro.contenttree`
    The multiple-level content tree and the Abstractor.
:mod:`repro.media`
    Synthetic media objects, simulated codecs, bandwidth profiles, clocks.
:mod:`repro.asf`
    The ASF-like container: header, packets, script commands, index, DRM,
    and the encoder (stored files and live broadcast).
:mod:`repro.net`
    Discrete-event network simulator: links, transport, QoS admission.
:mod:`repro.web`
    Minimal HTTP substrate over the simulator.
:mod:`repro.streaming`
    The media server (publishing points, unicast/broadcast pacing) and the
    jitter-buffered player.
:mod:`repro.control`
    Supervision plane: heartbeat failure detection, graceful drains with
    warm session hand-off, and the latent-edge autoscaler.
:mod:`repro.load`
    Million-viewer workload generation and the cohort load harness.
:mod:`repro.obs`
    End-to-end observability: tracer, cross-layer trace checker, QoE.
:mod:`repro.lod`
    The Lecture-on-Demand application: recorder, orchestrator, web
    publishing manager, level-based replay, classroom floor control.
:mod:`repro.metrics`
    Statistics and experiment collectors used by the benchmarks.

Quick start
-----------
>>> from repro.lod import Lecture, MediaStore, WebPublishingManager
>>> from repro.streaming import MediaPlayer, MediaServer
>>> from repro.web import VirtualNetwork
>>> lecture = Lecture.from_slide_durations("Demo", "Prof", [10.0, 10.0])
>>> network = VirtualNetwork()
>>> server = MediaServer(network, "server", port=8080)
>>> store = MediaStore()
>>> store.register_lecture("/v/demo.mpg", "/slides/", lecture)
>>> manager = WebPublishingManager(server, store)
>>> record = manager.publish(video_path="/v/demo.mpg", slide_dir="/slides/",
...                          point="demo")
>>> report = MediaPlayer(network, "student").watch(record.url)
>>> [c.command.parameter for c in report.slide_changes()]
['slide0', 'slide1']
"""

__version__ = "1.0.0"

__all__ = [
    "asf",
    "contenttree",
    "control",
    "core",
    "load",
    "lod",
    "media",
    "metrics",
    "net",
    "obs",
    "streaming",
    "web",
]
