"""Elastic edge capacity in the buildbot latent-worker mold.

A :class:`LatentEdge` is capacity that exists as *potential*: a name and
a factory. ``substantiate()`` builds (or re-awakens) the relay and joins
it to the :class:`~repro.streaming.edge.EdgeDirectory`; the consistent-
hash ring's bounded-reshuffle property keeps the join cheap.
``insubstantiate()`` gracefully *drains* the relay — warm-handing its
live sessions to ring successors — before removing it, so scaling down
never looks like a crash. A previously substantiated relay keeps its
:class:`~repro.streaming.edge.PacketRunCache` warm across latency, the
same way a stopped EC2 latent worker keeps its disk.

The :class:`Autoscaler` is the supervisor loop: it samples ``repro.obs``
rollup signals (per-edge modeled viewer counts via ``multiplicity``,
``bytes_served`` deltas, an optional QoE-percentile probe) on a periodic
tick and compares audience-per-live-edge against a
:class:`CapacityPolicy`. Hysteresis is two-fold: a signal must *sustain*
for ``policy.sustain`` consecutive samples before acting, and actions
are separated by ``policy.cooldown`` seconds — a flash crowd spike
produces one scale-up, not a thrash storm, and the tail of the wave
produces one drain.

The sampling task **is** skippable: unlike the heartbeat sweep, a
skipped sample in a quiet fast-forward window observes nothing that a
later sample will not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..metrics.counters import Counters
from ..net.engine import PeriodicTask


@dataclass(frozen=True)
class CapacityPolicy:
    """Scaling thresholds and hysteresis knobs."""

    #: modeled viewers per live edge above which we want more capacity
    high_load: float = 48.0
    #: modeled viewers per live edge below which capacity is surplus
    low_load: float = 8.0
    #: consecutive out-of-band samples required before acting
    sustain: int = 2
    #: minimum seconds between consecutive scaling actions
    cooldown: float = 10.0
    #: never drain below this many live edges
    min_edges: int = 1
    #: QoE guard: startup-delay p95 above this also counts as a high
    #: signal (None disables the probe)
    max_startup_p95: Optional[float] = None
    #: QoE guard: rebuffer-ratio p95 above this also counts as a high
    #: signal (None disables the probe)
    max_rebuffer_p95: Optional[float] = None
    #: throughput guard: tier-wide bytes_served rate (bytes/second of
    #: sim time) above this counts as a high signal even while viewer
    #: counts look calm — multicast passthrough moves bytes, not
    #: sessions (None disables the guard)
    high_bytes_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.low_load >= self.high_load:
            raise ValueError("low_load must be < high_load")
        if self.sustain < 1:
            raise ValueError("sustain must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.min_edges < 1:
            raise ValueError("min_edges must be >= 1")


class LatentEdge:
    """A named edge that exists only as a factory until needed.

    ``factory(name)`` must build a connected
    :class:`~repro.streaming.edge.EdgeRelay` (host wired to the origin
    and any client hosts the deployment needs) and return it. The relay
    object is kept across insubstantiation so a re-substantiated edge
    comes back with a warm packet-run cache.
    """

    def __init__(self, name: str, factory: Callable[[str], Any], *, capacity: Optional[int] = None) -> None:
        self.name = name
        self.factory = factory
        self.capacity = capacity
        self.relay = None
        self.substantiated = False

    def substantiate(self, directory):
        """Build (or re-awaken) the relay and join it to the ring."""
        if self.substantiated:
            return self.relay
        if self.relay is None:
            self.relay = self.factory(self.name)
        elif self.relay.crashed:
            self.relay.restart()
        # a relay parked by a previous drain is admitting again
        self.relay.draining = False
        directory.add_edge(self.name, relay=self.relay, capacity=self.capacity)
        self.substantiated = True
        return self.relay

    def insubstantiate(self, directory) -> Dict[str, int]:
        """Gracefully drain the relay and leave the ring."""
        if not self.substantiated:
            return {"handoffs": 0, "fallbacks": 0}
        stats = self.relay.drain(directory)
        directory.remove_edge(self.name)
        self.substantiated = False
        return stats


class Autoscaler:
    """Watches per-edge load and drives latent capacity with hysteresis."""

    def __init__(
        self,
        simulator,
        directory,
        *,
        latent=(),
        policy: Optional[CapacityPolicy] = None,
        interval: float = 1.0,
        monitor=None,
        qoe_probe: Optional[Callable[[], Optional[float]]] = None,
        tracer=None,
    ) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be > 0")
        self.simulator = simulator
        self.directory = directory
        self.policy = policy if policy is not None else CapacityPolicy()
        self.interval = interval
        self.monitor = monitor
        #: optional callable returning either the current startup-delay
        #: p95 (a repro.obs QoE rollup), a dict of percentiles such as
        #: ``{"startup_p95": ..., "rebuffer_p95": ...}``, or None when
        #: no data yet
        self.qoe_probe = qoe_probe
        self.tracer = tracer
        self.counters = Counters("control-autoscaler")
        self._latent: List[LatentEdge] = list(latent)
        #: LIFO of latent edges we substantiated — scale-down unwinds
        #: our own actions, never the tier's base edges
        self._active: List[LatentEdge] = []
        self._high_streak = 0
        self._low_streak = 0
        self._last_action: Optional[float] = None
        self._task: Optional[PeriodicTask] = None
        #: (time, per_edge_load, live_edges) per sample
        self.samples: List[Dict[str, Any]] = []
        self._last_bytes: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            # skippable: a sample skipped in a quiet window is information-
            # free; the heartbeat sweep is the non-skippable watchdog
            self._task = PeriodicTask(
                self.simulator,
                self.interval,
                self.sample,
                start_delay=self.interval,
                skippable=True,
            )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # ------------------------------------------------------------------

    def _signals(self) -> Dict[str, Any]:
        live = 0
        viewers = 0
        bytes_delta = 0
        for name in sorted(self.directory.edges()):
            if not self.directory.is_available(name):
                continue
            live += 1
            viewers += self.directory.edge_load(name)
            relay = self.directory.relays().get(name)
            if relay is not None:
                served = relay.bytes_served
                if name in self._last_bytes:
                    bytes_delta += served - self._last_bytes[name]
                # an edge seen for the first time contributes nothing:
                # its lifetime byte total is history, not a trend
                self._last_bytes[name] = served
        per_edge = viewers / live if live else float(viewers)
        return {
            "live_edges": live,
            "viewers": viewers,
            "per_edge": per_edge,
            "bytes_delta": bytes_delta,
            "bytes_rate": bytes_delta / self.interval,
        }

    def sample(self) -> Dict[str, Any]:
        now = self.simulator.now
        signals = self._signals()
        self.counters.inc("samples")
        # the probe returns either a bare startup-delay p95 (the PR 7
        # contract) or a dict of QoE percentiles from QoEAggregator
        # rollups, e.g. {"startup_p95": ..., "rebuffer_p95": ...}
        probed = self.qoe_probe() if self.qoe_probe is not None else None
        if isinstance(probed, dict):
            startup_p95 = probed.get("startup_p95")
            rebuffer_p95 = probed.get("rebuffer_p95")
        else:
            startup_p95 = probed
            rebuffer_p95 = None
        high = signals["per_edge"] > self.policy.high_load
        if (
            self.policy.max_startup_p95 is not None
            and startup_p95 is not None
            and startup_p95 > self.policy.max_startup_p95
        ):
            high = True
        if (
            self.policy.max_rebuffer_p95 is not None
            and rebuffer_p95 is not None
            and rebuffer_p95 > self.policy.max_rebuffer_p95
        ):
            high = True
        if (
            self.policy.high_bytes_rate is not None
            and signals["bytes_rate"] > self.policy.high_bytes_rate
        ):
            high = True
        low = signals["per_edge"] < self.policy.low_load
        self._high_streak = self._high_streak + 1 if high else 0
        self._low_streak = self._low_streak + 1 if low else 0
        self.samples.append({"time": now, **signals})
        if self.tracer is not None:
            self.tracer.event(
                "scale.sample",
                live_edges=signals["live_edges"],
                viewers=signals["viewers"],
                per_edge=round(signals["per_edge"], 3),
            )
        in_cooldown = (
            self._last_action is not None
            and now - self._last_action < self.policy.cooldown
        )
        if not in_cooldown:
            if self._high_streak >= self.policy.sustain:
                self._scale_up(now, signals)
            elif self._low_streak >= self.policy.sustain:
                self._scale_down(now, signals)
        return signals

    # ------------------------------------------------------------------

    def _next_latent(self) -> Optional[LatentEdge]:
        for latent in self._latent:
            if not latent.substantiated:
                return latent
        return None

    def _scale_up(self, now: float, signals: Dict[str, Any]) -> None:
        latent = self._next_latent()
        if latent is None:
            return
        relay = latent.substantiate(self.directory)
        self._active.append(latent)
        if self.monitor is not None:
            self.monitor.watch(relay)
        self._last_action = now
        self._high_streak = 0
        self.counters.inc("scale_ups")
        if self.tracer is not None:
            self.tracer.event(
                "scale.up", edge=latent.name, per_edge=round(signals["per_edge"], 3)
            )

    def _scale_down(self, now: float, signals: Dict[str, Any]) -> None:
        if signals["live_edges"] <= self.policy.min_edges or not self._active:
            return
        latent = self._active.pop()
        if self.monitor is not None:
            self.monitor.unwatch(latent.name)
        stats = latent.insubstantiate(self.directory)
        self._last_bytes.pop(latent.name, None)
        self._last_action = now
        self._low_streak = 0
        self.counters.inc("scale_downs")
        if self.tracer is not None:
            self.tracer.event(
                "scale.down",
                edge=latent.name,
                handoffs=stats.get("handoffs", 0),
                fallbacks=stats.get("fallbacks", 0),
            )

    # ------------------------------------------------------------------

    @property
    def active_latent(self) -> List[str]:
        return [latent.name for latent in self._active]
