"""Supervision plane for the edge tier.

The serving tier (``repro.streaming.edge``) knows how to *react* to
membership changes — ``EdgeDirectory`` admission skips down edges, the
player re-routes — but until this package nothing in the system
*detected* failure or *drove* capacity. ``repro.control`` closes that
loop in three layers:

* :class:`HeartbeatMonitor` — edges emit sim-clock heartbeat datagrams;
  a deterministic missed-beat suspicion mechanism (per-edge adaptive
  intervals) drives ``EdgeDirectory.mark_down``/``mark_up`` organically
  and settles the upstream sessions a crashed edge orphaned.
* :meth:`EdgeRelay.drain` (in ``repro.streaming.edge``) — graceful
  decommission with warm session hand-off, traced as ``drain.begin`` /
  ``session.handoff`` / ``drain.end`` for :class:`TraceChecker` audit.
* :class:`Autoscaler` + :class:`LatentEdge` — buildbot-latent-worker
  style elastic capacity: substantiate latent edges under load,
  gracefully drain surplus ones, with hysteresis and cooldown so flash
  crowds don't thrash the consistent-hash ring.
"""

from .heartbeat import HEARTBEAT_WIRE_SIZE, HeartbeatMonitor
from .autoscaler import Autoscaler, CapacityPolicy, LatentEdge

__all__ = [
    "HEARTBEAT_WIRE_SIZE",
    "HeartbeatMonitor",
    "Autoscaler",
    "CapacityPolicy",
    "LatentEdge",
]
