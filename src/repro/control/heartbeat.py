"""Heartbeat failure detection for the edge tier.

Edges do not *report* failure — they just stop talking. The
:class:`HeartbeatMonitor` arms a small beacon task on every watched
relay's host that sends a heartbeat datagram to the controller host over
the real simulated network, so everything that can silence an edge in
production silences it here too: a crash stops the beacon at the source,
a severed or partitioned link drops it in flight, a lossy link thins it.

Suspicion is a sweep over last-heard times: an edge silent for more than
``miss_threshold`` expected intervals is marked down in the
:class:`~repro.streaming.edge.EdgeDirectory` — the only caller of
``mark_down``/``mark_up`` in the system; tests never need to touch them
again. Intervals are **per-edge adaptive**: each edge can declare its
own beacon interval, and the monitor additionally learns the largest
benign inter-beat gap it has observed (a lossy beacon path that drops
every other beat teaches the monitor a wider tolerance instead of a
false suspicion). Suspicion periods never feed the learner, so a long
outage does not permanently deafen detection.

A suspected edge that beats again rejoins cleanly (``mark_up``); its
in-flight fills and viewer sessions were never touched. A suspected edge
that actually *crashed* left upstream replica sessions orphaned on the
origin — the monitor settles those immediately at suspicion time
(posting the close on the origin's control route) instead of letting
them leak until a restart or shutdown that may never come. Settlement
runs in **both directions**: the crashed relay's own upstream orphans
(what *it* held elsewhere) and every surviving relay's references *at*
the dead host (what others held there — in-flight fills abort and
re-plan, live feeds migrate or drop).

Crashed **regional parents** additionally trigger region failover
(``parent_failover=True``): the directory elects the healthiest
same-region leaf as acting parent (:meth:`EdgeDirectory.promote_parent`)
— or falls the region flat to origin-only when no leaf qualifies — and
every surviving leaf re-attaches its live feeds to the new upstream with
bounded catch-up from live history, the viewer-facing stream untouched.
Any backbone reservation still charged on the dead parent's links is
force-released as a final safety net, so ``assert_no_leaks`` holds the
moment suspicion fires. The whole sequence is traced
(``region.failover`` / ``region.failover_end``) for
:class:`~repro.obs.checker.TraceChecker` audit.

Everything is deterministic: beacon phases are sha1-derived from
``(seed, edge name)``, tasks are epoch-anchored
:class:`~repro.net.engine.PeriodicTask`\\ s, and both beacons and sweeps
are deliberately **not** skippable — a leapt beacon would look exactly
like a dead edge to the next sweep.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional

from ..metrics.counters import Counters
from ..net.engine import PeriodicTask
from ..net.transport import DatagramChannel, Message
from ..streaming.edge import PlacementError
from ..web.http import HTTPClient, HTTPError

#: heartbeat datagram payload size (bytes on the wire, before UDP/IP
#: framing) — edge name plus a tiny fixed header
HEARTBEAT_WIRE_SIZE = 32


class _WatchState:
    """Everything the monitor tracks about one edge."""

    __slots__ = (
        "name",
        "relay",
        "interval",
        "expected",
        "last_beat",
        "suspected",
        "suspected_at",
        "beacon",
        "channel",
    )

    def __init__(self, name, relay, interval, armed_at):
        self.name = name
        self.relay = relay
        #: declared beacon interval for this edge
        self.interval = interval
        #: adaptive expected gap: starts at the declared interval, only
        #: ever widened by observed benign gaps
        self.expected = interval
        #: arming counts as a beat — a freshly watched edge gets a full
        #: grace window before it can be suspected
        self.last_beat = armed_at
        self.suspected = False
        self.suspected_at = None
        self.beacon = None
        self.channel = None


class HeartbeatMonitor:
    """Missed-heartbeat failure detector driving the edge directory.

    ``watch_directory()`` arms a beacon on every relay the directory
    knows; ``start()`` arms the suspicion sweep. Beacon send phases are
    staggered deterministically per edge so a fleet of edges never
    synchronizes its beats onto one simulator instant.
    """

    def __init__(
        self,
        network,
        directory,
        *,
        host: str = "controller",
        interval: float = 0.5,
        miss_threshold: int = 3,
        sweep_interval: Optional[float] = None,
        seed: int = 0,
        beacon_bandwidth: float = 1_000_000.0,
        beacon_delay: float = 0.005,
        parent_failover: bool = True,
        tracer=None,
    ) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be > 0")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.network = network
        self.simulator = network.simulator
        self.directory = directory
        self.host = network.add_host(host)
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.sweep_interval = sweep_interval if sweep_interval is not None else interval
        self.seed = seed
        self.beacon_bandwidth = beacon_bandwidth
        self.beacon_delay = beacon_delay
        self.parent_failover = parent_failover
        self.tracer = tracer
        self.counters = Counters("control-monitor")
        #: (time, edge, silence) per suspicion — detection-latency data
        self.suspicions: List[Dict[str, Any]] = []
        #: one entry per region failover — what was promoted (or that
        #: the region fell flat), when, and what moved
        self.failovers: List[Dict[str, Any]] = []
        self._watched: Dict[str, _WatchState] = {}
        self._sweep_task: Optional[PeriodicTask] = None
        #: (origin_url, session_id) closes that failed and await retry
        self._settle_retry: List[tuple] = []
        self._http = HTTPClient(network, host)

    # ------------------------------------------------------------------
    # arming

    def watch(self, relay, *, interval: Optional[float] = None) -> None:
        """Arm a heartbeat beacon on ``relay``'s host.

        ``interval`` overrides the monitor default for this edge — the
        per-edge half of the adaptive-interval contract (the other half
        is learned from observed gaps).
        """
        name = relay.name
        if name in self._watched:
            return
        beat_interval = interval if interval is not None else self.interval
        if beat_interval <= 0:
            raise ValueError("beacon interval must be > 0")
        # dedicated control link, created only if the pair is not wired
        # yet — connect() would *replace* an existing link and silently
        # shed any fault state scripted onto it
        if (relay.host, self.host) not in self.network._links:
            self.network.connect(
                relay.host,
                self.host,
                bandwidth=self.beacon_bandwidth,
                delay=self.beacon_delay,
            )
        state = _WatchState(name, relay, beat_interval, self.simulator.now)
        state.channel = DatagramChannel(
            self.network.link(relay.host, self.host), self._on_beat
        )
        # deterministic per-edge phase stagger in [0, interval)
        digest = hashlib.sha1(f"{self.seed}:{name}".encode()).hexdigest()
        phase = (int(digest[:8], 16) / float(1 << 32)) * beat_interval
        # NOT skippable: a quiet-window fast_forward that leapt beacons
        # would present the next sweep with a silent, healthy edge
        state.beacon = PeriodicTask(
            self.simulator,
            beat_interval,
            lambda s=state: self._beat(s),
            start_delay=phase,
            skippable=False,
        )
        self._watched[name] = state

    def watch_directory(self) -> None:
        """Arm beacons for every relay the directory holds an object for."""
        for name, relay in sorted(self.directory.relays().items()):
            if relay is not None:
                self.watch(relay)

    def unwatch(self, name: str) -> None:
        """Stop the beacon and forget the edge (e.g. scaled away)."""
        state = self._watched.pop(name, None)
        if state is not None and state.beacon is not None:
            state.beacon.stop()

    def start(self) -> None:
        """Arm the suspicion sweep (idempotent)."""
        if self._sweep_task is None:
            # NOT skippable, same reasoning as the beacons
            self._sweep_task = PeriodicTask(
                self.simulator,
                self.sweep_interval,
                self._sweep,
                start_delay=self.sweep_interval,
                skippable=False,
            )

    def stop(self) -> None:
        """Stop sweep and all beacons (a stopped monitor schedules
        nothing, so a drained simulator stays drained)."""
        if self._sweep_task is not None:
            self._sweep_task.stop()
            self._sweep_task = None
        for state in self._watched.values():
            if state.beacon is not None:
                state.beacon.stop()
                state.beacon = None

    # ------------------------------------------------------------------
    # beacon path

    def _beat(self, state: _WatchState) -> None:
        # a crashed relay's host sends nothing — silence at the source
        if state.relay is not None and state.relay.crashed:
            return
        state.channel.send(Message(("beat", state.name), HEARTBEAT_WIRE_SIZE))

    def _on_beat(self, message: Message) -> None:
        kind, name = message.payload
        state = self._watched.get(name)
        if kind != "beat" or state is None:
            return
        now = self.simulator.now
        self.counters.inc("beats")
        gap = now - state.last_beat
        if not state.suspected and gap <= self.miss_threshold * state.expected:
            # benign gap (e.g. a lossy beacon path eating alternate
            # beats): widen tolerance. Suspicion-period gaps are outage
            # evidence, not cadence, and must not deafen the detector.
            state.expected = max(state.expected, gap)
        state.last_beat = now
        if state.suspected:
            state.suspected = False
            state.suspected_at = None
            try:
                self.directory.mark_up(name)
            except PlacementError:
                # removed from the directory while suspected (scaled
                # away, or a failed-over parent): the beat is just noise
                pass
            self.counters.inc("rejoins")
            if self.tracer is not None:
                self.tracer.event("control.rejoin", edge=name)

    # ------------------------------------------------------------------
    # suspicion sweep

    def _threshold(self, state: _WatchState) -> float:
        return self.miss_threshold * max(state.expected, state.interval)

    def _sweep(self) -> None:
        now = self.simulator.now
        self.counters.inc("sweeps")
        self._retry_settlements()
        for name in sorted(self._watched):
            state = self._watched[name]
            if state.suspected:
                continue
            silence = now - state.last_beat
            threshold = self._threshold(state)
            if silence > threshold:
                self._suspect(state, silence, threshold)

    def _suspect(self, state: _WatchState, silence: float, threshold: float) -> None:
        now = self.simulator.now
        state.suspected = True
        state.suspected_at = now
        try:
            self.directory.mark_down(state.name)
        except PlacementError:
            pass  # already removed from the directory
        self.counters.inc("suspicions")
        self.suspicions.append(
            {"time": now, "edge": state.name, "silence": silence}
        )
        if self.tracer is not None:
            self.tracer.event(
                "control.suspect",
                edge=state.name,
                silence=round(silence, 6),
                threshold=round(threshold, 6),
            )
        # a crashed edge left its origin-side replica sessions orphaned;
        # settle them now instead of waiting for a restart/shutdown that
        # may never come. A suspected-but-alive *leaf* keeps everything
        # (it may rejoin), but a suspected **parent** is failed over
        # either way: the region cannot tell a dead parent from a
        # silently partitioned one, and every leaf behind it is stalled
        # until someone re-parents them. A partitioned parent that later
        # rejoins comes back demoted — the slot already has a successor.
        if state.relay is not None and state.relay.crashed:
            self._settle_orphans(state.relay)
        if self.parent_failover and state.relay is not None:
            if getattr(state.relay, "is_parent", False):
                self._fail_over_parent(state)
            elif state.relay.crashed:
                self._abort_downstream(state.relay)

    # ------------------------------------------------------------------
    # region parent failover

    def _region_relays(self, region: str, *, exclude: str):
        """Surviving relay objects of ``region``, deterministic order."""
        out = []
        for name, relay in sorted(self.directory.relays().items()):
            if name == exclude or relay is None or relay.crashed:
                continue
            try:
                if self.directory.region_of(name) != region:
                    continue
            except PlacementError:
                continue
            out.append(relay)
        return out

    def _fail_over_parent(self, state: _WatchState) -> None:
        """Re-parent a region whose parent relay crashed.

        Runs synchronously inside the suspicion sweep, in a fixed
        order: elect → promote → migrate the successor's own feeds to
        the origin → re-point every other leaf at the successor (their
        feeds migrate with bounded catch-up, fills abort and re-plan) →
        force-release whatever the dead parent's links still hold. When
        no leaf qualifies the region falls **flat**: the parent slot is
        cleared and leaves work straight against the origin.
        """
        relay = state.relay
        region = getattr(relay, "region", None)
        if region is None or self.directory.parent_name(region) != state.name:
            return  # not this region's acting parent (already failed over)
        dead_url = f"http://{relay.host}:{relay.port}"
        successor_name = self.directory.elect_parent(region)
        successor = None
        if successor_name is not None:
            successor = self.directory.relays().get(successor_name)
        mode = "promote" if successor is not None else "flat"
        self.counters.inc("failovers")
        if self.tracer is not None:
            self.tracer.event(
                "region.failover",
                region=region,
                dead=state.name,
                dead_host=relay.host,
                mode=mode,
                successor=successor_name if successor is not None else None,
            )
        stats = {"fills_aborted": 0, "feeds_migrated": 0,
                 "feeds_dropped": 0, "refs_settled": 0}

        def merge(part):
            for key in stats:
                stats[key] += part.get(key, 0)

        if successor is not None:
            # promote first so every subsequent _current_parent_url()
            # lookup — including ones inside re-entrant migration
            # round-trips — already answers the new parent
            self.directory.promote_parent(region, successor_name)
            successor.is_parent = True
            successor.parent_url = None
            # the successor's own feeds now enter the region from the
            # origin; its viewers ride the same local streams throughout
            merge(successor.upstream_crashed(
                dead_url, migrate_to=successor.origin_url
            ))
            new_upstream = self.directory.edge_url(successor_name)
        else:
            self.directory.clear_parent(region)
            new_upstream = None
        for peer in self._region_relays(region, exclude=state.name):
            if successor is not None and peer.name == successor_name:
                continue
            peer.parent_url = new_upstream
            merge(peer.upstream_crashed(
                dead_url,
                migrate_to=new_upstream if new_upstream is not None
                else peer.origin_url,
            ))
        # safety net: anything still charged on the dead parent's links
        # (e.g. an aborted fill whose driver frame has not unwound yet)
        # is settled now; the holder's own later release is a tolerated
        # no-op, so the budget is leak-free the moment suspicion fires
        forced = []
        backbone = getattr(relay, "backbone", None)
        if backbone is not None:
            forced = backbone.force_release_host(relay.host)
        self.counters.inc("feeds_migrated", stats["feeds_migrated"])
        self.counters.inc("fills_aborted", stats["fills_aborted"])
        self.counters.inc("downstream_settled", stats["refs_settled"])
        self.counters.inc("budget_force_released", len(forced))
        record = {
            "time": self.simulator.now,
            "region": region,
            "dead": state.name,
            "mode": mode,
            "successor": successor_name if successor is not None else None,
            "forced_releases": len(forced),
        }
        record.update(stats)
        self.failovers.append(record)
        if self.tracer is not None:
            self.tracer.event(
                "region.failover_end",
                region=region,
                dead=state.name,
                dead_host=relay.host,
                mode=mode,
                successor=record["successor"],
                migrated=stats["feeds_migrated"],
                aborted=stats["fills_aborted"],
                dropped=stats["feeds_dropped"],
                settled=stats["refs_settled"],
                forced_releases=len(forced),
            )

    def _abort_downstream(self, relay) -> None:
        """Settle what surviving relays hold *at* a crashed non-parent:
        a sibling fill in flight through it aborts and re-plans instead
        of waiting out its timeout; leaf-side replica refs are settled
        (the dead host's session table died with it)."""
        dead_url = f"http://{relay.host}:{relay.port}"
        for name, peer in sorted(self.directory.relays().items()):
            if peer is None or peer is relay or peer.crashed:
                continue
            if not hasattr(peer, "upstream_crashed"):
                continue
            part = peer.upstream_crashed(dead_url)
            self.counters.inc("fills_aborted", part["fills_aborted"])
            self.counters.inc("downstream_settled", part["refs_settled"])

    # ------------------------------------------------------------------
    # orphan settlement (the suspicion/fill interaction fix)

    def _settle_orphans(self, relay) -> None:
        # orphans carry their upstream url: in a relay tree a crashed
        # edge may have held sessions at siblings and its regional
        # parent, not just the origin
        for url, session_id in relay.take_upstream_orphans():
            self._settle(url, session_id)

    def _settle(self, origin_url: str, session_id: int) -> None:
        try:
            response = self._http.post(
                f"{origin_url}/control/close", body={"session_id": session_id}
            )
        except HTTPError:
            response = None
        if response is not None and (response.ok or response.status == 409):
            # 409: the origin already dropped it (e.g. its own crash)
            self.counters.inc("orphans_settled")
        else:
            self._settle_retry.append((origin_url, session_id))

    def _retry_settlements(self) -> None:
        if not self._settle_retry:
            return
        pending, self._settle_retry = self._settle_retry, []
        for origin_url, session_id in pending:
            self._settle(origin_url, session_id)

    def fail_over_now(self, name: str) -> None:
        """Operator-initiated (planned) parent failover.

        The maintenance path: same election, promotion, feed migration
        and budget settlement as the suspicion path, minus the detection
        wait — so a planned parent removal costs viewers only the
        bounded catch-up, never the silence window. The parent is marked
        down first so no new placement or fill lands on it mid-move.
        """
        state = self._watched.get(name)
        if state is None or state.relay is None:
            raise KeyError(f"unknown or object-less edge {name!r}")
        if not getattr(state.relay, "is_parent", False):
            raise ValueError(f"{name!r} is not a region parent")
        try:
            self.directory.mark_down(name)
        except PlacementError:
            pass
        self._fail_over_parent(state)

    # ------------------------------------------------------------------
    # introspection

    def is_suspected(self, name: str) -> bool:
        state = self._watched.get(name)
        return state is not None and state.suspected

    def watched(self) -> List[str]:
        return sorted(self._watched)

    def expected_interval(self, name: str) -> float:
        return self._watched[name].expected
