"""Presentation clocks: mapping wall time to media time.

The renderer and the script-command dispatcher both need "what is the
presentation time now?" under pause/resume and speed changes; the encoder
needs millisecond *send times* for packets. :class:`PresentationClock`
answers the first, :class:`TimestampGenerator` the second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


class ClockError(Exception):
    """Clock misuse (e.g. pausing a paused clock)."""


class PresentationClock:
    """Piecewise-linear media clock driven by explicit wall time.

    All methods take the current wall time; the clock never reads a real
    OS clock, so simulations are deterministic. Supports pause/resume and
    rate changes; :meth:`media_time` is the presentation position.
    """

    def __init__(self, *, rate: float = 1.0) -> None:
        if rate <= 0:
            raise ClockError("rate must be positive")
        self._rate = rate
        self._anchor_wall: Optional[float] = None  # None = not started
        self._anchor_media = 0.0
        self._paused = False

    @property
    def started(self) -> bool:
        return self._anchor_wall is not None

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def rate(self) -> float:
        return self._rate

    def start(self, wall_time: float, *, media_time: float = 0.0) -> None:
        if self.started:
            raise ClockError("clock already started")
        self._anchor_wall = wall_time
        self._anchor_media = media_time

    def media_time(self, wall_time: float) -> float:
        """Presentation position at ``wall_time``."""
        if not self.started:
            return self._anchor_media
        if self._paused:
            return self._anchor_media
        return self._anchor_media + (wall_time - self._anchor_wall) * self._rate

    def pause(self, wall_time: float) -> None:
        if not self.started or self._paused:
            raise ClockError("cannot pause: clock not running")
        self._anchor_media = self.media_time(wall_time)
        self._paused = True

    def resume(self, wall_time: float) -> None:
        if not self._paused:
            raise ClockError("cannot resume: clock not paused")
        self._anchor_wall = wall_time
        self._paused = False

    def set_rate(self, wall_time: float, rate: float) -> None:
        if rate <= 0:
            raise ClockError("rate must be positive")
        self._anchor_media = self.media_time(wall_time)
        self._anchor_wall = wall_time
        self._rate = rate

    def seek(self, wall_time: float, media_time: float) -> None:
        if media_time < 0:
            raise ClockError("media time must be >= 0")
        self._anchor_media = media_time
        self._anchor_wall = wall_time

    def wall_time_of(self, wall_now: float, media_time: float) -> float:
        """Wall time at which ``media_time`` will be reached (running clock)."""
        if not self.started or self._paused:
            raise ClockError("clock is not running")
        return wall_now + (media_time - self.media_time(wall_now)) / self._rate


@dataclass
class TimestampGenerator:
    """Millisecond presentation timestamps for packetization.

    ASF timestamps are 32-bit milliseconds with a configurable preroll (the
    player buffers ``preroll_ms`` before rendering). The generator converts
    float seconds to the wire representation and back, asserting
    monotonicity the way the real indexer does.
    """

    preroll_ms: int = 3_000
    _last: int = -1

    def to_wire(self, seconds: float) -> int:
        if seconds < 0:
            raise ClockError("timestamps must be >= 0")
        ms = round(seconds * 1000) + self.preroll_ms
        if ms < self._last:
            raise ClockError(
                f"non-monotonic timestamp: {ms}ms after {self._last}ms"
            )
        self._last = ms
        return ms

    def from_wire(self, ms: int) -> float:
        return max(0, ms - self.preroll_ms) / 1000.0

    def reset(self) -> None:
        self._last = -1
