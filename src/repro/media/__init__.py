"""Media model: synthetic objects, simulated codecs, bandwidth profiles."""

from .clock import ClockError, PresentationClock, TimestampGenerator
from .codecs import (
    CODEC_REGISTRY,
    Codec,
    CodecError,
    EncodedStream,
    EncodedUnit,
    ImageCodec,
    get_codec,
)
from .objects import (
    AnnotationObject,
    AudioObject,
    Frame,
    ImageObject,
    MediaError,
    MediaObject,
    MediaType,
    TextObject,
    VideoObject,
)
from .profiles import (
    PROFILE_BY_NAME,
    STANDARD_PROFILES,
    BandwidthProfile,
    get_profile,
    rendition_ladder,
    select_profile,
)

__all__ = [
    "AnnotationObject", "AudioObject", "BandwidthProfile", "CODEC_REGISTRY",
    "ClockError", "Codec", "CodecError", "EncodedStream", "EncodedUnit",
    "Frame", "ImageCodec", "ImageObject", "MediaError", "MediaObject",
    "MediaType", "PROFILE_BY_NAME", "PresentationClock", "STANDARD_PROFILES",
    "TextObject", "TimestampGenerator", "VideoObject", "get_codec",
    "get_profile", "rendition_ladder", "select_profile",
]
