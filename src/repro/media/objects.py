"""Synthetic media objects — the substitution for real capture devices.

The paper's system encodes "a media file (video/audio) or … attached
devices (video camera or microphone)". Offline we model media as typed
descriptors plus deterministic synthetic sample generators: what matters
downstream (codecs, packetization, streaming, synchronization) is the
*timing and size* of the data, not the pixels. Every generator is seeded,
so whole-pipeline tests are reproducible byte-for-byte.
"""

from __future__ import annotations

import enum
import hashlib
import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple


class MediaType(enum.Enum):
    VIDEO = "video"
    AUDIO = "audio"
    IMAGE = "image"
    TEXT = "text"
    ANNOTATION = "annotation"


class MediaError(Exception):
    """Invalid media parameters."""


def _pseudo_bytes(seed: str, index: int, size: int) -> bytes:
    """Deterministic pseudo-random payload of ``size`` bytes.

    SHA-256 in counter mode — cheap, dependency-free, and stable across
    runs/platforms, which the container round-trip tests rely on.
    """
    out = bytearray()
    counter = 0
    while len(out) < size:
        block = hashlib.sha256(
            f"{seed}:{index}:{counter}".encode("ascii")
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:size])


@dataclass(frozen=True)
class MediaObject:
    """Base descriptor: a named piece of media with a playout duration."""

    name: str
    duration: float

    def __post_init__(self) -> None:
        if not self.name:
            raise MediaError("media object needs a name")
        if self.duration <= 0:
            raise MediaError(f"{self.name!r}: duration must be positive")

    @property
    def media_type(self) -> MediaType:  # pragma: no cover - abstract
        raise NotImplementedError

    def raw_size(self) -> int:  # pragma: no cover - abstract
        """Uncompressed size in bytes."""
        raise NotImplementedError


@dataclass(frozen=True)
class Frame:
    """One raw video frame (or one encoded unit, after a codec ran)."""

    index: int
    timestamp: float
    size: int
    keyframe: bool = True
    data: bytes = b""


@dataclass(frozen=True)
class VideoObject(MediaObject):
    """A synthetic video: resolution, frame rate, 24-bit RGB raw frames."""

    width: int = 320
    height: int = 240
    fps: float = 25.0
    seed: str = "video"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.width <= 0 or self.height <= 0:
            raise MediaError(f"{self.name!r}: bad resolution")
        if self.fps <= 0:
            raise MediaError(f"{self.name!r}: fps must be positive")

    @property
    def media_type(self) -> MediaType:
        return MediaType.VIDEO

    @property
    def frame_count(self) -> int:
        return max(1, round(self.duration * self.fps))

    @property
    def frame_size(self) -> int:
        return self.width * self.height * 3

    def raw_size(self) -> int:
        return self.frame_count * self.frame_size

    def frames(self, *, with_data: bool = False) -> Iterator[Frame]:
        """Raw frame sequence with exact timestamps."""
        for i in range(self.frame_count):
            data = _pseudo_bytes(self.seed, i, self.frame_size) if with_data else b""
            yield Frame(i, i / self.fps, self.frame_size, keyframe=True, data=data)

    def cut(
        self, start: float, duration: float, *, name: Optional[str] = None
    ) -> "VideoObject":
        """A contiguous sub-clip ``[start, start + duration)`` as its own object.

        The derived seed depends only on the source seed and the window, so
        equal windows of equal sources compare (and hash) equal — the
        content-addressing property segment-level encode reuse keys on.
        """
        if start < 0 or duration <= 0 or start + duration > self.duration + 1e-9:
            raise MediaError(
                f"{self.name!r}: cut [{start:g}, {start + duration:g}) outside "
                f"[0, {self.duration:g})"
            )
        return VideoObject(
            name=name or f"{self.name}[{start:g}+{duration:g}]",
            duration=duration,
            width=self.width,
            height=self.height,
            fps=self.fps,
            seed=f"{self.seed}@{start:g}+{duration:g}",
        )


@dataclass(frozen=True)
class AudioObject(MediaObject):
    """Synthetic PCM audio."""

    sample_rate: int = 22_050
    channels: int = 1
    sample_width: int = 2  # bytes per sample
    seed: str = "audio"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sample_rate <= 0 or self.channels <= 0 or self.sample_width <= 0:
            raise MediaError(f"{self.name!r}: bad audio parameters")

    @property
    def media_type(self) -> MediaType:
        return MediaType.AUDIO

    @property
    def byte_rate(self) -> int:
        return self.sample_rate * self.channels * self.sample_width

    def raw_size(self) -> int:
        return round(self.duration * self.byte_rate)

    def cut(
        self, start: float, duration: float, *, name: Optional[str] = None
    ) -> "AudioObject":
        """A contiguous sub-track ``[start, start + duration)`` (see
        :meth:`VideoObject.cut` for the content-addressing contract)."""
        if start < 0 or duration <= 0 or start + duration > self.duration + 1e-9:
            raise MediaError(
                f"{self.name!r}: cut [{start:g}, {start + duration:g}) outside "
                f"[0, {self.duration:g})"
            )
        return AudioObject(
            name=name or f"{self.name}[{start:g}+{duration:g}]",
            duration=duration,
            sample_rate=self.sample_rate,
            channels=self.channels,
            sample_width=self.sample_width,
            seed=f"{self.seed}@{start:g}+{duration:g}",
        )

    def blocks(self, *, block_duration: float = 0.1, with_data: bool = False) -> Iterator[Frame]:
        """PCM blocks of ``block_duration`` seconds (last may be shorter)."""
        if block_duration <= 0:
            raise MediaError("block_duration must be positive")
        total = self.raw_size()
        block_size = round(block_duration * self.byte_rate)
        index, offset = 0, 0
        while offset < total:
            size = min(block_size, total - offset)
            data = _pseudo_bytes(self.seed, index, size) if with_data else b""
            yield Frame(index, offset / self.byte_rate, size, keyframe=True, data=data)
            offset += size
            index += 1


@dataclass(frozen=True)
class ImageObject(MediaObject):
    """A presentation slide: a still image displayed for ``duration``."""

    width: int = 1024
    height: int = 768
    seed: str = "image"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.width <= 0 or self.height <= 0:
            raise MediaError(f"{self.name!r}: bad resolution")

    @property
    def media_type(self) -> MediaType:
        return MediaType.IMAGE

    def raw_size(self) -> int:
        return self.width * self.height * 3

    def data(self) -> bytes:
        return _pseudo_bytes(self.seed, 0, self.raw_size())


@dataclass(frozen=True)
class TextObject(MediaObject):
    """A text caption/subtitle shown for ``duration``."""

    text: str = ""

    @property
    def media_type(self) -> MediaType:
        return MediaType.TEXT

    def raw_size(self) -> int:
        return len(self.text.encode("utf-8"))


@dataclass(frozen=True)
class AnnotationObject(MediaObject):
    """A teacher's annotation/comment anchored to a slide region."""

    text: str = ""
    slide: str = ""
    region: Tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        super().__post_init__()
        x0, y0, x1, y1 = self.region
        if not (0 <= x0 < x1 <= 1 and 0 <= y0 < y1 <= 1):
            raise MediaError(
                f"{self.name!r}: region must be normalized (x0<x1, y0<y1 in [0,1])"
            )

    @property
    def media_type(self) -> MediaType:
        return MediaType.ANNOTATION

    def raw_size(self) -> int:
        return len(self.text.encode("utf-8")) + 4 * 8  # text + region floats
