"""Simulated codecs — the substitution for the Windows Media codec suite.

Paper §2.1 lists the codecs ASF supports: Windows Media Audio, Sipro Labs
ACELP, and MPEG-3 for audio; MPEG-4, TrueMotion RT, and ClearVideo for
video. We model each as a **parametric rate/quality codec**: encoding maps
raw media to a sequence of encoded units whose sizes follow the codec's
rate model (target bitrate, keyframe interval with larger I-frames,
smaller P-frames), and quality is a monotone function of bits-per-pixel
(video) or bits-per-sample (audio). That preserves everything the rest of
the pipeline observes — unit timing, unit sizes, total rate, and the
encode→packetize→stream→decode code path — without licensed bitstream
formats.

Use :func:`get_codec` / :data:`CODEC_REGISTRY` to look codecs up by the
names the paper uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .objects import (
    AudioObject,
    Frame,
    ImageObject,
    MediaError,
    MediaObject,
    MediaType,
    VideoObject,
    _pseudo_bytes,
)


class CodecError(MediaError):
    """Encoding/decoding misuse."""


@dataclass(frozen=True)
class EncodedUnit:
    """One encoded access unit (video frame, audio block, or image blob)."""

    index: int
    timestamp: float
    size: int
    keyframe: bool
    data: bytes = b""


@dataclass
class EncodedStream:
    """Output of one codec run over one media object."""

    media: MediaObject
    codec: str
    units: List[EncodedUnit]
    quality: float  # 0..1, codec-model estimate

    @property
    def total_size(self) -> int:
        return sum(u.size for u in self.units)

    @property
    def bitrate(self) -> float:
        """Average encoded bitrate in bits/second."""
        if self.media.duration == 0:
            return 0.0
        return self.total_size * 8 / self.media.duration

    @property
    def compression_ratio(self) -> float:
        raw = self.media.raw_size()
        return raw / self.total_size if self.total_size else float("inf")

    def keyframe_timestamps(self) -> List[float]:
        return [u.timestamp for u in self.units if u.keyframe]


@dataclass(frozen=True)
class Codec:
    """A parametric codec model.

    Parameters
    ----------
    name:
        Registry name, e.g. ``"mpeg4"``.
    kind:
        Which :class:`MediaType` it accepts.
    efficiency:
        Rate-distortion efficiency in (0, 1]; at the same bitrate a codec
        with higher efficiency yields higher modeled quality. (MPEG-4 ≫
        ClearVideo, mirroring their era.)
    keyframe_interval:
        Seconds between video keyframes (I-frames). Ignored for audio.
    i_to_p_ratio:
        How many times larger an I-frame is than a P-frame.
    """

    name: str
    kind: MediaType
    efficiency: float = 0.8
    keyframe_interval: float = 2.0
    i_to_p_ratio: float = 6.0

    def __post_init__(self) -> None:
        if not 0 < self.efficiency <= 1:
            raise CodecError(f"{self.name!r}: efficiency must be in (0, 1]")
        if self.keyframe_interval <= 0 or self.i_to_p_ratio < 1:
            raise CodecError(f"{self.name!r}: bad GOP parameters")

    def fingerprint(self) -> tuple:
        """Every parameter that shapes the encoded bytes, as a hashable key.

        Two codecs with equal fingerprints produce identical output for
        identical input — the content-addressing contract the segment-level
        encode cache (:mod:`repro.asf.farm`) keys on.
        """
        return (
            "codec",
            self.name,
            self.kind.value,
            self.efficiency,
            self.keyframe_interval,
            self.i_to_p_ratio,
        )

    # ------------------------------------------------------------------

    def encode(
        self,
        media: MediaObject,
        *,
        target_bitrate: float,
        with_data: bool = False,
    ) -> EncodedStream:
        """Encode ``media`` at ``target_bitrate`` bits/second."""
        if target_bitrate <= 0:
            raise CodecError("target_bitrate must be positive")
        if media.media_type is not self.kind:
            raise CodecError(
                f"codec {self.name!r} encodes {self.kind.value}, "
                f"got {media.media_type.value}"
            )
        if isinstance(media, VideoObject):
            return self._encode_video(media, target_bitrate, with_data)
        if isinstance(media, AudioObject):
            return self._encode_audio(media, target_bitrate, with_data)
        raise CodecError(f"cannot encode {type(media).__name__}")

    def _encode_video(
        self, media: VideoObject, target_bitrate: float, with_data: bool
    ) -> EncodedStream:
        total_bytes = target_bitrate * media.duration / 8
        n = media.frame_count
        gop = max(1, round(self.keyframe_interval * media.fps))
        n_key = math.ceil(n / gop)
        n_pred = n - n_key
        # sizes: n_key * r * p + n_pred * p = total
        p_size = total_bytes / (n_key * self.i_to_p_ratio + n_pred)
        i_size = p_size * self.i_to_p_ratio
        units = []
        for frame in media.frames():
            keyframe = frame.index % gop == 0
            size = max(1, round(i_size if keyframe else p_size))
            data = (
                _pseudo_bytes(f"{self.name}:{media.name}", frame.index, size)
                if with_data
                else b""
            )
            units.append(
                EncodedUnit(frame.index, frame.timestamp, size, keyframe, data)
            )
        quality = self._quality(
            target_bitrate, media.width * media.height * media.fps
        )
        return EncodedStream(media, self.name, units, quality)

    def _encode_audio(
        self, media: AudioObject, target_bitrate: float, with_data: bool
    ) -> EncodedStream:
        units = []
        for block in media.blocks():
            block_dur = block.size / media.byte_rate
            size = max(1, round(target_bitrate * block_dur / 8))
            data = (
                _pseudo_bytes(f"{self.name}:{media.name}", block.index, size)
                if with_data
                else b""
            )
            units.append(
                EncodedUnit(block.index, block.timestamp, size, True, data)
            )
        quality = self._quality(
            target_bitrate, media.sample_rate * media.channels * 8
        )
        return EncodedStream(media, self.name, units, quality)

    def _quality(self, bitrate: float, raw_rate: float) -> float:
        """Monotone saturating quality model: q = 1 - exp(-k·bpp·eff).

        ``bpp`` is bits per raw unit (pixel·frame or sample); ``k`` chosen
        so typical-era operating points land mid-scale.
        """
        bpp = bitrate / raw_rate
        return 1.0 - math.exp(-12.0 * bpp * self.efficiency)


@dataclass(frozen=True)
class ImageCodec:
    """Still-image compressor for slides (JPEG-like fixed-ratio model)."""

    name: str = "slidejpeg"
    compression_ratio: float = 20.0
    quality: float = 0.9

    def fingerprint(self) -> tuple:
        """Hashable identity of the compressor (see :meth:`Codec.fingerprint`)."""
        return ("imagecodec", self.name, self.compression_ratio, self.quality)

    def encode(self, image: ImageObject, *, with_data: bool = False) -> EncodedStream:
        size = max(1, round(image.raw_size() / self.compression_ratio))
        data = _pseudo_bytes(f"{self.name}:{image.name}", 0, size) if with_data else b""
        unit = EncodedUnit(0, 0.0, size, True, data)
        return EncodedStream(image, self.name, [unit], self.quality)


#: The codec suite of paper §2.1, by registry name.
CODEC_REGISTRY: Dict[str, Codec] = {
    # audio
    "wma": Codec("wma", MediaType.AUDIO, efficiency=0.85),
    "acelp": Codec("acelp", MediaType.AUDIO, efficiency=0.7),
    "mp3": Codec("mp3", MediaType.AUDIO, efficiency=0.75),
    "pcm": Codec("pcm", MediaType.AUDIO, efficiency=0.05),
    # video
    "mpeg4": Codec("mpeg4", MediaType.VIDEO, efficiency=0.9),
    "truemotion": Codec("truemotion", MediaType.VIDEO, efficiency=0.6,
                        keyframe_interval=1.0, i_to_p_ratio=4.0),
    "clearvideo": Codec("clearvideo", MediaType.VIDEO, efficiency=0.5),
}


def get_codec(name: str) -> Codec:
    try:
        return CODEC_REGISTRY[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; available: {sorted(CODEC_REGISTRY)}"
        ) from None
