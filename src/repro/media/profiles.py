"""Bandwidth profiles — the encoder configuration of paper §2.5.

"User can select the profile that best describes the content you are
encoding. This profile means the different bandwidth will be configured.
The more high bit rate means the content will be encoded to a more
high-resolution content."

Each :class:`BandwidthProfile` fixes the target network rate and splits it
between audio and video, scaling resolution/frame rate the way Windows
Media Encoder profiles did. :data:`STANDARD_PROFILES` mirrors the era's
ladder (28.8k modem → broadband); :func:`select_profile` picks the best
profile fitting a link capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .codecs import Codec, CodecError, EncodedStream, get_codec
from .objects import AudioObject, MediaError, VideoObject


@dataclass(frozen=True)
class BandwidthProfile:
    """One encoding profile: total rate and how media are configured."""

    name: str
    total_bitrate: float  # bits/second on the wire
    video_bitrate: float
    audio_bitrate: float
    width: int
    height: int
    fps: float
    video_codec: str = "mpeg4"
    audio_codec: str = "wma"

    def __post_init__(self) -> None:
        if self.total_bitrate <= 0:
            raise MediaError(f"profile {self.name!r}: bitrate must be positive")
        if self.video_bitrate + self.audio_bitrate > self.total_bitrate * 1.001:
            raise MediaError(
                f"profile {self.name!r}: media rates exceed total bitrate"
            )
        get_codec(self.video_codec)
        get_codec(self.audio_codec)

    def configure_video(self, source: VideoObject) -> VideoObject:
        """Re-target a source video to the profile's resolution/rate."""
        return VideoObject(
            name=source.name,
            duration=source.duration,
            width=min(source.width, self.width),
            height=min(source.height, self.height),
            fps=min(source.fps, self.fps),
            seed=source.seed,
        )

    def encode_video(self, source: VideoObject, *, with_data: bool = False) -> EncodedStream:
        scaled = self.configure_video(source)
        return get_codec(self.video_codec).encode(
            scaled, target_bitrate=self.video_bitrate, with_data=with_data
        )

    def encode_audio(self, source: AudioObject, *, with_data: bool = False) -> EncodedStream:
        return get_codec(self.audio_codec).encode(
            source, target_bitrate=self.audio_bitrate, with_data=with_data
        )


#: The standard ladder, lowest to highest rate (names follow the WME-era
#: connection types the paper's configuration window exposed).
STANDARD_PROFILES: List[BandwidthProfile] = [
    BandwidthProfile("modem-28k", 28_800, 18_000, 8_000, 160, 120, 7.5,
                     video_codec="clearvideo", audio_codec="acelp"),
    BandwidthProfile("modem-56k", 56_000, 40_000, 12_000, 176, 144, 10,
                     video_codec="truemotion", audio_codec="acelp"),
    BandwidthProfile("isdn-dual", 128_000, 100_000, 20_000, 240, 180, 15),
    BandwidthProfile("dsl-256k", 256_000, 215_000, 32_000, 320, 240, 20),
    BandwidthProfile("dsl-512k", 512_000, 440_000, 64_000, 320, 240, 25),
    BandwidthProfile("lan-1m", 1_000_000, 900_000, 96_000, 640, 480, 25),
]

PROFILE_BY_NAME: Dict[str, BandwidthProfile] = {p.name: p for p in STANDARD_PROFILES}


def get_profile(name: str) -> BandwidthProfile:
    try:
        return PROFILE_BY_NAME[name]
    except KeyError:
        raise MediaError(
            f"unknown profile {name!r}; available: {sorted(PROFILE_BY_NAME)}"
        ) from None


def rendition_ladder(names: Sequence[str]) -> List[BandwidthProfile]:
    """Named profiles as a multi-bitrate rendition list, lowest rate first.

    The canonical input to :meth:`repro.asf.encoder.ASFEncoder.encode_file_mbr`
    and :class:`repro.lod.publisher.LODPublisher` — profiles are frozen
    (hashable, picklable) dataclasses, so a ladder doubles as part of an
    encode-farm job fingerprint.
    """
    if not names:
        raise MediaError("a rendition ladder needs at least one profile name")
    return sorted((get_profile(n) for n in names), key=lambda p: p.total_bitrate)


def select_profile(
    link_bitrate: float, *, headroom: float = 0.9,
    profiles: Optional[List[BandwidthProfile]] = None,
) -> BandwidthProfile:
    """Highest-rate profile fitting ``link_bitrate`` with ``headroom``.

    Mirrors the configuration window's guidance: pick the profile matching
    the audience's connection, leaving margin for protocol overhead. Falls
    back to the lowest profile when even it exceeds the link (the stream
    will stall — measurably, see bench S2).
    """
    if link_bitrate <= 0:
        raise MediaError("link_bitrate must be positive")
    ladder = sorted(profiles or STANDARD_PROFILES, key=lambda p: p.total_bitrate)
    usable = [p for p in ladder if p.total_bitrate <= link_bitrate * headroom]
    return usable[-1] if usable else ladder[0]
