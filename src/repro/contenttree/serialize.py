"""JSON (de)serialization of content trees.

The publishing manager stores the content tree of a published lecture next
to the stream so clients can offer per-level replay; this module is that
storage format. Round-trip fidelity (structure, order, values, payloads) is
property-tested in ``tests/property/test_tree_properties.py``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .tree import ContentNode, ContentTree, ContentTreeError

FORMAT_VERSION = 1


def node_to_dict(node: ContentNode) -> Dict[str, Any]:
    data: Dict[str, Any] = {"name": node.name, "value": node.value}
    if node.payload is not None:
        data["payload"] = node.payload
    if node.children:
        data["children"] = [node_to_dict(child) for child in node.children]
    return data


def tree_to_dict(tree: ContentTree) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "root": node_to_dict(tree.root) if tree.root is not None else None,
    }


def tree_to_json(tree: ContentTree, *, indent: Optional[int] = None) -> str:
    return json.dumps(tree_to_dict(tree), indent=indent, sort_keys=True)


def _attach_from_dict(tree: ContentTree, parent: Optional[str], data: Dict[str, Any]) -> None:
    name = data["name"]
    value = data["value"]
    payload = data.get("payload")
    if parent is None:
        tree.initialize(name, value, payload=payload)
    else:
        tree.attach(name, value, parent=parent, payload=payload)
    for child in data.get("children", ()):
        _attach_from_dict(tree, name, child)


def tree_from_dict(data: Dict[str, Any]) -> ContentTree:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ContentTreeError(f"unsupported content-tree format version {version!r}")
    tree = ContentTree()
    if data.get("root") is not None:
        _attach_from_dict(tree, None, data["root"])
    tree.validate()
    return tree


def tree_from_json(text: str) -> ContentTree:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ContentTreeError(f"invalid content-tree JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ContentTreeError("content-tree JSON must be an object")
    return tree_from_dict(data)
