"""The Abstractor of paper §2.2 — level-based presentation summarization.

"The Abstractor utilizes the content tree to organize the information …
the multiple level content tree approach may be used to arrive at an
efficient summarizing method." Given a viewing-time budget, the Abstractor
picks the deepest level whose total presentation time fits, yielding the
longest presentation that fits the budget; level 0 is the shortest summary.

:func:`tree_from_segments` builds a content tree from a flat lecture by
importance, so recorded lectures (see :mod:`repro.lod`) get multi-level
summaries for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .tree import ContentNode, ContentTree, ContentTreeError


@dataclass(frozen=True)
class Summary:
    """Result of an abstraction query."""

    level: int
    duration: float
    segments: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.segments)


class Abstractor:
    """Level-based summarization over a content tree."""

    def __init__(self, tree: ContentTree) -> None:
        if tree.root is None:
            raise ContentTreeError("cannot abstract an empty tree")
        self.tree = tree

    def level_for_budget(self, budget: float) -> int:
        """Deepest level whose presentation time fits within ``budget``.

        Raises :class:`ContentTreeError` when even level 0 does not fit —
        the material has no summary short enough.
        """
        if budget <= 0:
            raise ContentTreeError("budget must be positive")
        chosen: Optional[int] = None
        for level in range(self.tree.highest_level + 1):
            if self.tree.presentation_time(level) <= budget + 1e-9:
                chosen = level
            else:
                break
        if chosen is None:
            raise ContentTreeError(
                f"even the level-0 summary "
                f"({self.tree.presentation_time(0):g}s) exceeds budget {budget:g}s"
            )
        return chosen

    def summarize(self, budget: float) -> Summary:
        """The longest presentation fitting ``budget``."""
        level = self.level_for_budget(budget)
        segments = self.tree.presentation_at(level)
        return Summary(
            level=level,
            duration=self.tree.presentation_time(level),
            segments=tuple(n.name for n in segments),
        )

    def at_level(self, level: int) -> Summary:
        """The presentation at an explicit level."""
        if not 0 <= level <= self.tree.highest_level:
            raise ContentTreeError(
                f"level {level} outside 0..{self.tree.highest_level}"
            )
        segments = self.tree.presentation_at(level)
        return Summary(
            level=level,
            duration=self.tree.presentation_time(level),
            segments=tuple(n.name for n in segments),
        )

    def all_levels(self) -> List[Summary]:
        """One summary per level — the "flexible teaching material" view."""
        return [self.at_level(q) for q in range(self.tree.highest_level + 1)]

    def verify_nesting(self) -> None:
        """Assert the level-nesting invariant the publish pipeline reuses.

        The level-q presentation must be an *order-preserving subset* of the
        level-(q+1) presentation: "the higher level gives the longer
        presentation" by adding detail, never by reordering or dropping
        material. Segment-level encode reuse across abstraction levels
        (publishing level k after level k+1 encodes only the delta) is
        sound exactly because of this property.
        """
        for level in range(self.tree.highest_level):
            shorter = [n.name for n in self.tree.presentation_at(level)]
            longer = iter(n.name for n in self.tree.presentation_at(level + 1))
            if not all(name in longer for name in shorter):
                raise ContentTreeError(
                    f"level {level} is not an order-preserving subset of "
                    f"level {level + 1}"
                )


def linear_truncation(
    segments: Sequence[Tuple[str, float]], budget: float
) -> Tuple[Tuple[str, ...], float]:
    """Baseline summarizer: keep the prefix of segments fitting the budget.

    This is what a system without the content tree does — cut the lecture
    off when time runs out. Used by the abstraction ablation to show the
    content tree keeps *coverage* (segments from the whole lecture) while
    truncation only keeps the beginning.
    """
    kept: List[str] = []
    used = 0.0
    for name, value in segments:
        if used + value > budget + 1e-9:
            break
        kept.append(name)
        used += value
    return tuple(kept), used


def tree_from_segments(
    segments: Sequence[Tuple[str, float, int]], *, root_name: str = "overview",
    root_value: float = 0.0,
) -> ContentTree:
    """Build a content tree from ``(name, duration, importance)`` triples.

    ``importance`` 0 is the most essential (appears in the level-1 summary);
    larger values are finer detail at deeper levels. Segment order is
    preserved within each level: each segment attaches under the most
    recent segment of the previous level (or the root), so the tree keeps
    the lecture's narrative structure.
    """
    tree = ContentTree()
    tree.initialize(root_name, root_value)
    last_at_level: dict = {0: root_name}
    for name, duration, importance in segments:
        if importance < 0:
            raise ContentTreeError(f"segment {name!r}: importance must be >= 0")
        level = importance + 1
        parent_level = level - 1
        while parent_level > 0 and parent_level not in last_at_level:
            parent_level -= 1
        tree.attach(name, duration, parent=last_at_level[parent_level])
        last_at_level[level] = name
        # deeper levels reset when a shallower segment arrives
        for deeper in [q for q in last_at_level if q > level]:
            del last_at_level[deeper]
    return tree
