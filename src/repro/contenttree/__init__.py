"""Multiple-level content tree (paper §2.2–§2.4) and the Abstractor."""

from .abstractor import (
    Abstractor,
    Summary,
    linear_truncation,
    tree_from_segments,
)
from .serialize import (
    FORMAT_VERSION,
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_json,
)
from .tree import ContentNode, ContentTree, ContentTreeError, build_example_tree

__all__ = [
    "Abstractor",
    "ContentNode",
    "ContentTree",
    "ContentTreeError",
    "FORMAT_VERSION",
    "Summary",
    "build_example_tree",
    "linear_truncation",
    "tree_from_dict",
    "tree_from_json",
    "tree_to_dict",
    "tree_to_json",
    "tree_from_segments",
]
