"""The multiple-level content tree of paper §2.2–§2.4.

A teaching material is organized as a tree of *presentation segments*:

* the root is at **level 0**; children of a level-q node are at level q+1;
* siblings ordered left-to-right give the playback sequence;
* "the higher level gives the longer presentation" — playing the material
  *at level q* plays every segment of level ≤ q, in depth-first
  (document) order, so deeper levels add detail;
* ``LevelNodes[q]`` (the paper's variable) is the total presentation time
  at level q — :meth:`ContentTree.presentation_time`.

The paper's primitive operations are implemented exactly: initialize,
**attach** (add a node at a level, under the rightmost eligible parent, or
an explicit one), **detach** (remove a whole subtree), **insert** (splice a
node between a parent and a run of its children — Figure 3), and **delete**
(remove one node; its children are adopted by its left sibling, or by its
parent when it has none — Figure 4).

The §2.3 worked example (S0..S4, ``LevelNodes`` = 20/60/100) and the
Figure 3/4 insert/delete examples are reproduced in
``tests/test_content_tree.py`` and ``benchmarks/test_bench_content_tree.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence


class ContentTreeError(Exception):
    """Structural misuse of a content tree."""


class ContentNode:
    """One presentation segment in the content tree.

    ``value`` is the segment's presentation time in seconds (the paper's
    node value). Children are ordered; order is the playback sequence.
    """

    __slots__ = ("name", "value", "parent", "children", "payload")

    def __init__(self, name: str, value: float, *, payload=None) -> None:
        if not name:
            raise ContentTreeError("node name must be non-empty")
        if value < 0:
            raise ContentTreeError(f"node {name!r}: value must be >= 0")
        self.name = name
        self.value = float(value)
        self.parent: Optional["ContentNode"] = None
        self.children: List["ContentNode"] = []
        self.payload = payload

    @property
    def level(self) -> int:
        """Distance from the root (root is level 0)."""
        level, node = 0, self
        while node.parent is not None:
            node = node.parent
            level += 1
        return level

    def is_ancestor_of(self, other: "ContentNode") -> bool:
        node = other.parent
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def subtree(self) -> Iterator["ContentNode"]:
        """Depth-first, left-to-right — the presentation order."""
        yield self
        for child in self.children:
            yield from child.subtree()

    def __repr__(self) -> str:
        return f"ContentNode({self.name!r}, value={self.value:g}, level={self.level})"


class ContentTree:
    """A multiple-level content tree with the paper's primitive operations."""

    def __init__(self) -> None:
        self.root: Optional[ContentNode] = None
        self._by_name: Dict[str, ContentNode] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def node(self, name: str) -> ContentNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise ContentTreeError(f"no node named {name!r}") from None

    def nodes(self) -> Iterator[ContentNode]:
        """All nodes in presentation (depth-first) order."""
        if self.root is not None:
            yield from self.root.subtree()

    @property
    def highest_level(self) -> int:
        """The paper's ``highestLevel`` (deepest populated level; -1 if empty)."""
        return max((n.level for n in self.nodes()), default=-1)

    def level_nodes(self, level: int) -> List[ContentNode]:
        """Nodes at exactly ``level``, in presentation order."""
        return [n for n in self.nodes() if n.level == level]

    def presentation_time(self, level: int) -> float:
        """The paper's ``LevelNodes[level]->value``: total playing time of
        the level-``level`` presentation = Σ value over nodes of level ≤ level."""
        if level < 0:
            raise ContentTreeError("level must be >= 0")
        return sum(n.value for n in self.nodes() if n.level <= level)

    def level_values(self) -> List[float]:
        """``[presentation_time(0), ..., presentation_time(highest_level)]``."""
        return [self.presentation_time(q) for q in range(self.highest_level + 1)]

    def presentation_at(self, level: int) -> List[ContentNode]:
        """Segments played at ``level``, in presentation order."""
        return [n for n in self.nodes() if n.level <= level]

    # ------------------------------------------------------------------
    # primitive operations (paper §2.2: initialize / attach / detach,
    # §2.4: insert / delete)
    # ------------------------------------------------------------------

    def initialize(self, name: str, value: float, *, payload=None) -> ContentNode:
        """Create the root (level 0). The tree must be empty."""
        if self.root is not None:
            raise ContentTreeError("tree already initialized")
        node = ContentNode(name, value, payload=payload)
        self.root = node
        self._by_name[name] = node
        return node

    def _register(self, node: ContentNode) -> None:
        if node.name in self._by_name:
            raise ContentTreeError(f"node {node.name!r} already in tree")
        self._by_name[node.name] = node

    def attach(
        self,
        name: str,
        value: float,
        *,
        level: Optional[int] = None,
        parent: Optional[str] = None,
        payload=None,
    ) -> ContentNode:
        """Add a leaf node, the paper's "attach a node".

        Either ``parent`` names the parent explicitly (appended as its last
        child), or ``level`` places the node under the *rightmost* node at
        ``level - 1`` — exactly how the §2.3 example grows the tree.
        """
        if self.root is None:
            raise ContentTreeError("initialize the tree first")
        if (level is None) == (parent is None):
            raise ContentTreeError("give exactly one of level= or parent=")
        if parent is not None:
            parent_node = self.node(parent)
        else:
            if level < 1:
                raise ContentTreeError("attach level must be >= 1 (root exists)")
            candidates = self.level_nodes(level - 1)
            if not candidates:
                raise ContentTreeError(
                    f"no node at level {level - 1} to attach under"
                )
            parent_node = candidates[-1]
        node = ContentNode(name, value, payload=payload)
        self._register(node)
        node.parent = parent_node
        parent_node.children.append(node)
        return node

    def detach(self, name: str) -> ContentNode:
        """Remove the subtree rooted at ``name`` and return it."""
        node = self.node(name)
        for descendant in node.subtree():
            del self._by_name[descendant.name]
        if node.parent is None:
            self.root = None
        else:
            node.parent.children.remove(node)
            node.parent = None
        return node

    def insert(
        self,
        name: str,
        value: float,
        *,
        parent: str,
        adopt: Sequence[str] = (),
        position: Optional[int] = None,
        payload=None,
    ) -> ContentNode:
        """Splice a new node between ``parent`` and some of its children —
        the Figure 3 operation ("insert a node S5 into the content tree").

        ``adopt`` names children of ``parent`` that become children of the
        new node (keeping their order); they move one level deeper.
        ``position`` fixes the new node's index among the remaining
        children (default: where the first adopted child was, else last).
        """
        parent_node = self.node(parent)
        adopt_nodes = [self.node(a) for a in adopt]
        for child in adopt_nodes:
            if child.parent is not parent_node:
                raise ContentTreeError(
                    f"{child.name!r} is not a child of {parent!r}; cannot adopt"
                )
        node = ContentNode(name, value, payload=payload)
        self._register(node)
        if position is None:
            position = (
                parent_node.children.index(adopt_nodes[0])
                if adopt_nodes
                else len(parent_node.children)
            )
        for child in adopt_nodes:
            parent_node.children.remove(child)
            child.parent = node
            node.children.append(child)
        node.parent = parent_node
        parent_node.children.insert(min(position, len(parent_node.children)), node)
        return node

    def delete(self, name: str) -> ContentNode:
        """Remove one node; children adopted by its **left sibling** — the
        Figure 4 operation ("S5's children will be adopted by S5's sibling
        S1"). Falls back to the right sibling, then to the parent. The root
        can only be deleted when it has at most one child (which becomes
        the new root).
        """
        node = self.node(name)
        if node.parent is None:
            if len(node.children) > 1:
                raise ContentTreeError(
                    "cannot delete a root with multiple children"
                )
            del self._by_name[name]
            if node.children:
                heir = node.children[0]
                heir.parent = None
                self.root = heir
                node.children.clear()
            else:
                self.root = None
            return node

        parent = node.parent
        index = parent.children.index(node)
        if node.children:
            left = parent.children[index - 1] if index > 0 else None
            right = (
                parent.children[index + 1]
                if index + 1 < len(parent.children)
                else None
            )
            adopter = left or right or parent
            for child in node.children:
                child.parent = adopter
                adopter.children.append(child)
            node.children.clear()
        parent.children.remove(node)
        node.parent = None
        del self._by_name[name]
        return node

    def move(
        self, name: str, *, parent: str, position: Optional[int] = None
    ) -> ContentNode:
        """Re-parent the subtree rooted at ``name`` under ``parent``.

        The node keeps its children; its whole subtree shifts level with
        it. Moving a node under its own descendant is rejected.
        """
        node = self.node(name)
        new_parent = self.node(parent)
        if node is new_parent or node.is_ancestor_of(new_parent):
            raise ContentTreeError(
                f"cannot move {name!r} under its own subtree"
            )
        if node.parent is None:
            raise ContentTreeError("cannot move the root")
        node.parent.children.remove(node)
        node.parent = new_parent
        if position is None:
            new_parent.children.append(node)
        else:
            new_parent.children.insert(
                min(max(position, 0), len(new_parent.children)), node
            )
        return node

    def promote(self, name: str) -> ContentNode:
        """Move a node one level shallower: it becomes its parent's next
        sibling (subtree moves with it). The inverse of :meth:`demote`."""
        node = self.node(name)
        if node.parent is None or node.parent.parent is None:
            raise ContentTreeError(
                f"cannot promote {name!r}: already at level <= 1"
            )
        parent = node.parent
        grandparent = parent.parent
        index = grandparent.children.index(parent)
        return self.move(name, parent=grandparent.name, position=index + 1)

    def demote(self, name: str) -> ContentNode:
        """Move a node one level deeper: it becomes the last child of its
        immediately preceding sibling."""
        node = self.node(name)
        if node.parent is None:
            raise ContentTreeError("cannot demote the root")
        siblings = node.parent.children
        index = siblings.index(node)
        if index == 0:
            raise ContentTreeError(
                f"cannot demote {name!r}: it has no preceding sibling"
            )
        return self.move(name, parent=siblings[index - 1].name)

    # ------------------------------------------------------------------
    # pretty-printing
    # ------------------------------------------------------------------

    def render(self) -> str:
        """Indented ASCII rendering (one node per line)."""
        lines: List[str] = []

        def walk(node: ContentNode, depth: int) -> None:
            lines.append(f"{'  ' * depth}{node.name} ({node.value:g}s)")
            for child in node.children:
                walk(child, depth + 1)

        if self.root is not None:
            walk(self.root, 0)
        return "\n".join(lines)

    def validate(self) -> None:
        """Check parent/child pointers and the name index agree."""
        seen = set()
        for node in self.nodes():
            seen.add(node.name)
            if self._by_name.get(node.name) is not node:
                raise ContentTreeError(f"index out of sync at {node.name!r}")
            for child in node.children:
                if child.parent is not node:
                    raise ContentTreeError(
                        f"broken parent pointer at {child.name!r}"
                    )
        if seen != set(self._by_name):
            raise ContentTreeError("index contains detached nodes")


def build_example_tree() -> ContentTree:
    """The §2.3 worked example: S0..S4, every segment 20 seconds.

    Steps (paper's printed ``LevelNodes`` values in parentheses):

    1. add S0 at level 0  → highestLevel 0, LevelNodes[0] = 20
    2. add S1 at level 1  → highestLevel 1, LevelNodes[1] = 40
    3. add S2 at level 2  → highestLevel 2, LevelNodes[2] = 60
    4. add S3 at level 2 and S4 at level 1
       → highestLevel 2, LevelNodes[1] = 60, LevelNodes[2] = 100
    """
    tree = ContentTree()
    tree.initialize("S0", 20)
    tree.attach("S1", 20, level=1)
    tree.attach("S2", 20, level=2)
    tree.attach("S3", 20, level=2)
    tree.attach("S4", 20, level=1)
    return tree
