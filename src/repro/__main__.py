"""``python -m repro`` — a 30-second guided demo of the whole system.

Runs the publish → watch loop on a simulated campus network, prints the
synchronized slide changes, the content-tree summary levels, and the
Petri-net verification result. Meant as the very first thing a new user
runs after installing.
"""

from __future__ import annotations

import sys

from . import __version__
from .contenttree import Abstractor
from .core.scheduler import PresentationTimeline
from .core.visualize import timeline_to_ascii
from .lod import Lecture, MediaStore, WebPublishingManager
from .streaming import MediaPlayer, MediaServer
from .web import VirtualNetwork


def main(argv=None) -> int:
    print(f"repro {__version__} — Lecture-on-Demand reproduction demo\n")

    lecture = Lecture.from_slide_durations(
        "Demo Lecture", "Prof. Deng", [8.0, 12.0, 6.0, 10.0],
        importances=[0, 1, 0, 1],
    )
    print(f"lecture: {lecture.title!r}, {lecture.duration:g}s, "
          f"{len(lecture.segments)} slides\n")

    network = VirtualNetwork()
    network.connect("server", "student", bandwidth=2_000_000, delay=0.02)
    server = MediaServer(network, "server", port=8080)
    store = MediaStore()
    store.register_lecture("/videos/demo.mpg", "/slides/demo/", lecture)
    manager = WebPublishingManager(server, store)
    record = manager.publish(
        video_path="/videos/demo.mpg", slide_dir="/slides/demo/", point="demo"
    )
    print(f"published: {record.url}")
    print(f"Petri-net verification error: "
          f"{record.result.verification_error:g}s\n")

    timeline = PresentationTimeline.from_schedule(
        lecture.to_presentation().schedule
    )
    print("extended-net playout schedule:")
    print(timeline_to_ascii(timeline, width=44))

    player = MediaPlayer(network, "student")
    report = player.watch(record.url, burst_factor=4.0)
    print(f"\nplayback: startup {report.startup_latency:.2f}s, "
          f"{report.rebuffer_count} rebuffers, "
          f"watched {report.duration_watched:.1f}s")
    print("slide changes:")
    for change in report.slide_changes():
        print(f"  {change.position:6.2f}s -> {change.command.parameter} "
              f"(sync error {change.sync_error * 1000:.0f} ms)")

    tree = manager.content_tree_of("demo")
    print("\ncontent-tree summary levels:")
    for summary in Abstractor(tree).all_levels():
        segments = [s for s in summary.segments if s != lecture.title]
        print(f"  level {summary.level}: {summary.duration:g}s "
              f"-> {segments}")

    print("\nNext steps: examples/, DESIGN.md, EXPERIMENTS.md, and "
          "`pytest benchmarks/ --benchmark-only -s`.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
