"""Digital Rights Management — "optional in authoring and mandatory for
rendering" (paper §2.1).

A deliberately simple model of the ASF DRM object: content is scrambled
with a keyed XOR keystream; a client can render only after obtaining a
:class:`License` for the content id from the :class:`LicenseServer`.
This is NOT cryptography — it reproduces the *protocol shape* (protected
flag in the header, license acquisition before rendering, per-content
keys), which is all the paper's workflow exercises.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from .constants import ASFError
from .wire import Reader, pack_str, write_object


class DRMError(ASFError):
    """License/protection failures."""


def _keystream(key: str, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(f"{key}:{counter}".encode()).digest())
        counter += 1
    return bytes(out[:length])


def scramble(data: bytes, key: str) -> bytes:
    """Symmetric XOR scrambling (applying twice restores the input)."""
    stream = _keystream(key, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


@dataclass(frozen=True)
class DRMInfo:
    """Header object describing the protection applied to the content."""

    content_id: str
    license_url: str = ""
    algorithm: str = "xor-sha256"

    def __post_init__(self) -> None:
        if not self.content_id:
            raise DRMError("DRM info needs a content id")

    def pack(self) -> bytes:
        return pack_str(self.content_id) + pack_str(self.license_url) + pack_str(
            self.algorithm
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "DRMInfo":
        r = Reader(payload)
        return cls(r.string(), r.string(), r.string())


@dataclass(frozen=True)
class License:
    """The right to render one content id, carrying its descrambling key."""

    content_id: str
    key: str
    user: str


class LicenseServer:
    """Issues per-content keys to entitled users.

    The publisher registers content with :meth:`register`; users are
    entitled with :meth:`entitle`; a player calls :meth:`acquire` before
    rendering protected content — rendering without a license raises
    :class:`DRMError` in :class:`repro.streaming.client.MediaPlayer`.
    """

    def __init__(self) -> None:
        self._keys: Dict[str, str] = {}
        self._entitled: Dict[str, set] = {}

    def register(self, content_id: str) -> str:
        """Create (or return) the key for ``content_id``."""
        if content_id not in self._keys:
            self._keys[content_id] = hashlib.sha256(
                f"key:{content_id}".encode()
            ).hexdigest()[:32]
            self._entitled[content_id] = set()
        return self._keys[content_id]

    def entitle(self, content_id: str, user: str) -> None:
        if content_id not in self._keys:
            raise DRMError(f"unknown content {content_id!r}")
        self._entitled[content_id].add(user)

    def revoke(self, content_id: str, user: str) -> None:
        if content_id not in self._keys:
            raise DRMError(f"unknown content {content_id!r}")
        self._entitled[content_id].discard(user)

    def acquire(self, content_id: str, user: str) -> License:
        if content_id not in self._keys:
            raise DRMError(f"unknown content {content_id!r}")
        if user not in self._entitled[content_id]:
            raise DRMError(f"user {user!r} not entitled to {content_id!r}")
        return License(content_id, self._keys[content_id], user)
