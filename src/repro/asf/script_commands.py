"""ASF script commands — the synchronization mechanism of the paper.

"Script commands instruct Microsoft Windows Media Player to perform
additional tasks … along with rendering the ASF stream" (§2.1). The
orchestrator (Fig. 5–7) makes "the video and presented slides synchronized
with the temporal script commands": each slide change or annotation is a
``(type, parameter, timestamp)`` triple multiplexed into the stream; the
player fires it when its clock passes the timestamp.

Command types used by this system:

* ``SLIDE``   — parameter is the slide identifier/path to display;
* ``CAPTION`` — parameter is caption text;
* ``ANNOTATION`` — parameter is a JSON-ish annotation payload;
* ``URL``, ``FILENAME`` — classic ASF types, kept for completeness;
* ``TREE_LEVEL`` — this reproduction's extension: switch content-tree level.

:class:`ScriptCommandDispatcher` is the client-side firing engine with
catch-up semantics after a seek (fire the latest state-bearing command at
or before the new position so the right slide shows immediately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .constants import ASFError
from .wire import Reader, pack_str, pack_u32, pack_u64

#: Conventional command types (open set; any string is legal on the wire).
TYPE_SLIDE = "SLIDE"
TYPE_CAPTION = "CAPTION"
TYPE_ANNOTATION = "ANNOTATION"
TYPE_URL = "URL"
TYPE_FILENAME = "FILENAME"
TYPE_TREE_LEVEL = "TREE_LEVEL"

#: Types where only the most recent command matters after a seek.
STATEFUL_TYPES = {TYPE_SLIDE, TYPE_CAPTION, TYPE_TREE_LEVEL}


@dataclass(frozen=True, order=True)
class ScriptCommand:
    """One timed command: ordering is by timestamp (then type, parameter)."""

    timestamp_ms: int
    type: str
    parameter: str

    def __post_init__(self) -> None:
        if self.timestamp_ms < 0:
            raise ASFError("script command timestamp must be >= 0")
        if not self.type:
            raise ASFError("script command needs a type")

    @property
    def timestamp(self) -> float:
        return self.timestamp_ms / 1000.0


def pack_command(command: ScriptCommand) -> bytes:
    return (
        pack_u64(command.timestamp_ms)
        + pack_str(command.type)
        + pack_str(command.parameter)
    )


def unpack_command(reader: Reader) -> ScriptCommand:
    ts = reader.u64()
    ctype = reader.string()
    parameter = reader.string()
    return ScriptCommand(ts, ctype, parameter)


def pack_command_table(commands: Sequence[ScriptCommand]) -> bytes:
    ordered = sorted(commands)
    out = pack_u32(len(ordered))
    for command in ordered:
        out += pack_command(command)
    return out


def unpack_command_table(payload: bytes) -> List[ScriptCommand]:
    r = Reader(payload)
    count = r.u32()
    return [unpack_command(r) for _ in range(count)]


class ScriptCommandDispatcher:
    """Fires script commands as presentation time advances.

    ``advance_to(t)`` fires, in order, every unfired command with
    timestamp ≤ t. ``seek(t)`` re-synchronizes: for each *stateful* type
    the latest command at or before ``t`` fires once (so the current slide
    appears), earlier ones are skipped, and later ones are re-armed.
    """

    def __init__(
        self,
        commands: Sequence[ScriptCommand],
        handler: Callable[[ScriptCommand], None],
    ) -> None:
        self.commands = sorted(commands)
        self.handler = handler
        self._cursor = 0
        self.fired: List[ScriptCommand] = []

    @property
    def pending(self) -> int:
        return len(self.commands) - self._cursor

    def advance_to(self, seconds: float) -> List[ScriptCommand]:
        """Fire everything due by ``seconds``; returns what fired."""
        due_ms = round(seconds * 1000)
        fired_now: List[ScriptCommand] = []
        while (
            self._cursor < len(self.commands)
            and self.commands[self._cursor].timestamp_ms <= due_ms
        ):
            command = self.commands[self._cursor]
            self.handler(command)
            self.fired.append(command)
            fired_now.append(command)
            self._cursor += 1
        return fired_now

    def seek(self, seconds: float) -> List[ScriptCommand]:
        """Jump the clock; replay the latest stateful command per type."""
        target_ms = round(seconds * 1000)
        latest: Dict[str, ScriptCommand] = {}
        for command in self.commands:
            if command.timestamp_ms > target_ms:
                break
            if command.type in STATEFUL_TYPES:
                latest[command.type] = command
        fired_now = []
        for command in sorted(latest.values()):
            self.handler(command)
            self.fired.append(command)
            fired_now.append(command)
        # re-arm the cursor at the first command strictly after the target
        self._cursor = 0
        while (
            self._cursor < len(self.commands)
            and self.commands[self._cursor].timestamp_ms <= target_ms
        ):
            self._cursor += 1
        return fired_now


def slide_commands(
    slide_times: Sequence[Tuple[str, float]],
) -> List[ScriptCommand]:
    """Build SLIDE commands from ``(slide_id, start_seconds)`` pairs."""
    return [
        ScriptCommand(round(start * 1000), TYPE_SLIDE, slide)
        for slide, start in slide_times
    ]
