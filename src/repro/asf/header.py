"""ASF header objects: file properties, stream properties, metadata.

The header object is everything a client needs before the first data
packet: global file properties (duration, packet size, preroll, flags),
one stream-properties object per stream, a free-form metadata dictionary
(title/author/...), the script-command table
(:mod:`repro.asf.script_commands`) and optional DRM info
(:mod:`repro.asf.drm`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .constants import (
    ASFError,
    FLAG_BROADCAST,
    FLAG_DRM_PROTECTED,
    FLAG_SEEKABLE,
    MAX_STREAM_NUMBER,
    MIN_STREAM_NUMBER,
    STREAM_TYPES,
    TAG_DRM,
    TAG_FILE_PROPERTIES,
    TAG_HEADER,
    TAG_METADATA,
    TAG_SCRIPT_COMMANDS,
    TAG_STREAM_PROPERTIES,
)
from .drm import DRMInfo
from .script_commands import ScriptCommand, pack_command_table, unpack_command_table
from .wire import Reader, pack_str, pack_u16, pack_u32, pack_u64, write_object


@dataclass
class FileProperties:
    """Global properties of an ASF file/stream."""

    file_id: str
    duration_ms: int = 0
    packet_size: int = 1_450
    preroll_ms: int = 3_000
    flags: int = 0

    def __post_init__(self) -> None:
        if self.packet_size < 64:
            raise ASFError("packet size must be at least 64 bytes")
        if self.duration_ms < 0 or self.preroll_ms < 0:
            raise ASFError("durations must be >= 0")

    @property
    def is_broadcast(self) -> bool:
        return bool(self.flags & FLAG_BROADCAST)

    @property
    def is_seekable(self) -> bool:
        return bool(self.flags & FLAG_SEEKABLE)

    @property
    def is_protected(self) -> bool:
        return bool(self.flags & FLAG_DRM_PROTECTED)

    def pack(self) -> bytes:
        payload = (
            pack_str(self.file_id)
            + pack_u64(self.duration_ms)
            + pack_u32(self.packet_size)
            + pack_u32(self.preroll_ms)
            + pack_u32(self.flags)
        )
        return write_object(TAG_FILE_PROPERTIES, payload)

    @classmethod
    def unpack(cls, payload: bytes) -> "FileProperties":
        r = Reader(payload)
        return cls(
            file_id=r.string(),
            duration_ms=r.u64(),
            packet_size=r.u32(),
            preroll_ms=r.u32(),
            flags=r.u32(),
        )


@dataclass
class StreamProperties:
    """Per-stream description: number, type, codec, bitrate, extras."""

    stream_number: int
    stream_type: str
    codec: str = ""
    bitrate: float = 0.0
    name: str = ""
    extra: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not MIN_STREAM_NUMBER <= self.stream_number <= MAX_STREAM_NUMBER:
            raise ASFError(
                f"stream number {self.stream_number} outside "
                f"{MIN_STREAM_NUMBER}..{MAX_STREAM_NUMBER}"
            )
        if self.stream_type not in STREAM_TYPES:
            raise ASFError(f"unknown stream type {self.stream_type!r}")
        if self.bitrate < 0:
            raise ASFError("bitrate must be >= 0")

    def pack(self) -> bytes:
        payload = (
            pack_u16(self.stream_number)
            + pack_str(self.stream_type)
            + pack_str(self.codec)
            + pack_u64(round(self.bitrate))
            + pack_str(self.name)
            + pack_u16(len(self.extra))
        )
        for key in sorted(self.extra):
            payload += pack_str(key) + pack_str(self.extra[key])
        return write_object(TAG_STREAM_PROPERTIES, payload)

    @classmethod
    def unpack(cls, payload: bytes) -> "StreamProperties":
        r = Reader(payload)
        number = r.u16()
        stream_type = r.string()
        codec = r.string()
        bitrate = float(r.u64())
        name = r.string()
        extra = {}
        for _ in range(r.u16()):
            key = r.string()
            extra[key] = r.string()
        return cls(number, stream_type, codec, bitrate, name, extra)


@dataclass
class HeaderObject:
    """The complete ASF header."""

    file_properties: FileProperties
    streams: List[StreamProperties] = field(default_factory=list)
    metadata: Dict[str, str] = field(default_factory=dict)
    script_commands: List[ScriptCommand] = field(default_factory=list)
    drm: Optional[DRMInfo] = None

    def __post_init__(self) -> None:
        numbers = [s.stream_number for s in self.streams]
        if len(numbers) != len(set(numbers)):
            raise ASFError("duplicate stream numbers in header")

    def stream(self, number: int) -> StreamProperties:
        for s in self.streams:
            if s.stream_number == number:
                return s
        raise ASFError(f"no stream number {number}")

    def streams_of_type(self, stream_type: str) -> List[StreamProperties]:
        return [s for s in self.streams if s.stream_type == stream_type]

    def mbr_group(self, group: str = "video") -> List[StreamProperties]:
        """Mutually exclusive multi-bitrate renditions, lowest rate first.

        Empty for single-rate content. A client session receives exactly
        one member of each MBR group (see MediaServer.open_session).
        """
        members = [
            s for s in self.streams if s.extra.get("mbr_group") == group
        ]
        return sorted(members, key=lambda s: int(s.extra.get("mbr_rank", "0")))

    @property
    def total_bitrate(self) -> float:
        return sum(s.bitrate for s in self.streams)

    def pack(self) -> bytes:
        parts = [self.file_properties.pack()]
        parts.extend(s.pack() for s in self.streams)
        meta = pack_u16(len(self.metadata))
        for key in sorted(self.metadata):
            meta += pack_str(key) + pack_str(self.metadata[key])
        parts.append(write_object(TAG_METADATA, meta))
        parts.append(
            write_object(TAG_SCRIPT_COMMANDS, pack_command_table(self.script_commands))
        )
        if self.drm is not None:
            parts.append(write_object(TAG_DRM, self.drm.pack()))
        return write_object(TAG_HEADER, b"".join(parts))

    @classmethod
    def unpack(cls, data: bytes) -> "HeaderObject":
        outer = Reader(data)
        payload = outer.expect_object(TAG_HEADER)
        r = Reader(payload)
        file_properties: Optional[FileProperties] = None
        streams: List[StreamProperties] = []
        metadata: Dict[str, str] = {}
        commands: List[ScriptCommand] = []
        drm: Optional[DRMInfo] = None
        while r.remaining():
            tag, body = r.read_object()
            if tag == TAG_FILE_PROPERTIES:
                file_properties = FileProperties.unpack(body)
            elif tag == TAG_STREAM_PROPERTIES:
                streams.append(StreamProperties.unpack(body))
            elif tag == TAG_METADATA:
                mr = Reader(body)
                for _ in range(mr.u16()):
                    key = mr.string()
                    metadata[key] = mr.string()
            elif tag == TAG_SCRIPT_COMMANDS:
                commands = unpack_command_table(body)
            elif tag == TAG_DRM:
                drm = DRMInfo.unpack(body)
            else:
                # forward compatibility: unknown header objects are skipped
                continue
        if file_properties is None:
            raise ASFError("header missing file-properties object")
        return cls(file_properties, streams, metadata, commands, drm)

    def packed_size(self) -> int:
        return len(self.pack())
