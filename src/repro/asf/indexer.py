"""ASF indexing — seekability plus the "ASF Indexer" utility of §2.1.

Two roles, mirroring the Microsoft tooling the paper cites:

* :class:`SimpleIndex` — the time→packet table appended to stored files so
  players can seek ("mandatory for seekable files"): one entry per fixed
  time interval pointing at the packet carrying the nearest earlier
  keyframe.
* :func:`add_script_commands` — the command-line "ASF Indexer" workflow:
  add script commands to an already-stored file (the paper's way of
  annotating recorded lectures after the fact). Returns a new
  :class:`~repro.asf.stream.ASFFile` with the merged command table.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .constants import ASFError, FLAG_SEEKABLE, TAG_INDEX
from .packets import DataPacket
from .script_commands import ScriptCommand
from .wire import Reader, pack_u32, pack_u64, write_object


@dataclass(frozen=True)
class IndexEntry:
    """One index row: presentation time → packet sequence number."""

    time_ms: int
    packet_sequence: int


@dataclass
class SimpleIndex:
    """Fixed-interval time index over a packet sequence."""

    interval_ms: int = 1_000
    entries: List[IndexEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise ASFError("index interval must be positive")

    @classmethod
    def build(
        cls,
        packets: Sequence[DataPacket],
        *,
        interval_ms: int = 1_000,
        stream_number: Optional[int] = None,
    ) -> "SimpleIndex":
        """Index keyframe positions at each interval boundary.

        Indexing follows one *reference stream* (ASF's simple index is
        per-video-stream): ``stream_number``, defaulting to the lowest
        stream number present. For each interval start t, the entry points
        at the **first** packet carrying the start of the latest reference
        keyframe with timestamp ≤ t (or packet 0). Keying on one stream
        matters: a slide image at the same timestamp can span many packets,
        and indexing its tail would make seek skip the video in front of it.
        """
        index = cls(interval_ms=interval_ms)
        if stream_number is None:
            present = {
                p.stream_number for packet in packets for p in packet.payloads
            }
            if not present:
                return index
            stream_number = min(present)
        keyframe_packet: dict = {}  # timestamp_ms -> first packet sequence
        max_ts = 0
        for packet in packets:
            for payload in packet.payloads:
                max_ts = max(max_ts, payload.timestamp_ms)
                if (
                    payload.stream_number == stream_number
                    and payload.keyframe
                    and payload.offset == 0
                    and payload.timestamp_ms not in keyframe_packet
                ):
                    keyframe_packet[payload.timestamp_ms] = packet.sequence
        keyframes = sorted(keyframe_packet.items())
        times = [k[0] for k in keyframes]
        t = 0
        while t <= max_ts:
            pos = bisect.bisect_right(times, t) - 1
            packet_seq = keyframes[pos][1] if pos >= 0 else 0
            index.entries.append(IndexEntry(t, packet_seq))
            t += interval_ms
        return index

    def seek(self, seconds: float) -> int:
        """Packet sequence number to start reading from for time ``seconds``."""
        if not self.entries:
            return 0
        target = round(seconds * 1000)
        pos = min(target // self.interval_ms, len(self.entries) - 1)
        return self.entries[max(0, pos)].packet_sequence

    def pack(self) -> bytes:
        payload = pack_u32(self.interval_ms) + pack_u32(len(self.entries))
        for entry in self.entries:
            payload += pack_u64(entry.time_ms) + pack_u32(entry.packet_sequence)
        return write_object(TAG_INDEX, payload)

    @classmethod
    def unpack_from(cls, reader: Reader) -> "SimpleIndex":
        payload = reader.expect_object(TAG_INDEX)
        r = Reader(payload)
        interval = r.u32()
        count = r.u32()
        entries = [IndexEntry(r.u64(), r.u32()) for _ in range(count)]
        return cls(interval_ms=interval, entries=entries)


def add_script_commands(asf_file, commands: Sequence[ScriptCommand]):
    """The "ASF Indexer" post-processing step: merge ``commands`` into a
    stored file's command table (header only — stored files dispatch from
    the table; live streams interleave commands as data payloads).

    Returns a new file object; the input is not mutated.
    """
    from .stream import ASFFile  # local import to avoid a cycle

    if asf_file.header.file_properties.is_broadcast:
        raise ASFError("cannot post-index a live (broadcast) stream")
    merged = sorted(list(asf_file.header.script_commands) + list(commands))
    header = type(asf_file.header)(
        file_properties=asf_file.header.file_properties,
        streams=list(asf_file.header.streams),
        metadata=dict(asf_file.header.metadata),
        script_commands=merged,
        drm=asf_file.header.drm,
    )
    return ASFFile(header=header, packets=list(asf_file.packets), index=asf_file.index)
