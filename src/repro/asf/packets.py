"""ASF data packets: payloads, fragmentation, packetizer, depacketizer.

An ASF data section is a sequence of fixed-size packets, each carrying one
or more *payloads*; a payload is a fragment of one media object (an encoded
video frame, audio block, slide blob, or script command). Large objects are
fragmented across packets; small objects share packets. Packets have
constant-rate *send times*, which is how a server paces a stream to the
profile's bitrate.

* :class:`Payload` / :class:`DataPacket` — wire structures (binary
  round-trippable, fixed ``packet_size`` with padding).
* :class:`Packetizer` — multiplexes encoded streams + script commands into
  a paced packet sequence, interleaved by timestamp.
* :class:`Depacketizer` — reassembles objects per stream, tolerating
  packet loss and reporting exactly which objects were lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .constants import (
    ASFError,
    DEFAULT_PACKET_SIZE,
    MAX_STREAM_NUMBER,
    MIN_STREAM_NUMBER,
    SCRIPT_STREAM_NUMBER,
    TAG_PACKET,
)
from .script_commands import ScriptCommand, pack_command, unpack_command
from .wire import Reader, pack_u8, pack_u16, pack_u32, pack_u64, write_object

#: Fixed per-payload header size on the wire (see Payload.pack).
PAYLOAD_HEADER_SIZE = 1 + 4 + 4 + 4 + 8 + 1 + 4
#: Fixed per-packet overhead: the 8-byte object wrapper (tag + length)
#: plus the packet header fields (see DataPacket.pack).
PACKET_HEADER_SIZE = 8 + 4 + 4 + 8 + 1 + 2


@dataclass(frozen=True)
class Payload:
    """A fragment of one media object inside a packet."""

    stream_number: int
    object_number: int
    offset: int  # byte offset of this fragment within the object
    object_size: int  # total size of the (unfragmented) object
    timestamp_ms: int
    keyframe: bool
    data: bytes

    def __post_init__(self) -> None:
        if not MIN_STREAM_NUMBER <= self.stream_number <= MAX_STREAM_NUMBER:
            raise ASFError(f"bad stream number {self.stream_number}")
        if self.offset + len(self.data) > self.object_size:
            raise ASFError("payload fragment exceeds object size")

    @property
    def is_complete_object(self) -> bool:
        return self.offset == 0 and len(self.data) == self.object_size

    def pack(self) -> bytes:
        return (
            pack_u8(self.stream_number)
            + pack_u32(self.object_number)
            + pack_u32(self.offset)
            + pack_u32(self.object_size)
            + pack_u64(self.timestamp_ms)
            + pack_u8(1 if self.keyframe else 0)
            + pack_u32(len(self.data))
            + self.data
        )

    @classmethod
    def unpack(cls, reader: Reader) -> "Payload":
        stream = reader.u8()
        number = reader.u32()
        offset = reader.u32()
        size = reader.u32()
        ts = reader.u64()
        keyframe = bool(reader.u8())
        data = reader.blob()
        return cls(stream, number, offset, size, ts, keyframe, data)

    def wire_size(self) -> int:
        return PAYLOAD_HEADER_SIZE + len(self.data)


@dataclass
class DataPacket:
    """One fixed-size packet: sequence number, send time, payloads.

    :meth:`pack` memoizes the wire image: payloads are frozen, so once the
    header fields and payload list settle (after packetization / live
    rebasing) the serialized form never changes — the server can ship the
    same ``bytes`` object to any number of clients without re-packing.
    """

    sequence: int
    send_time_ms: int
    payloads: List[Payload] = field(default_factory=list)
    packet_size: int = DEFAULT_PACKET_SIZE
    _wire: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False
    )
    _wire_key: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def used(self) -> int:
        return PACKET_HEADER_SIZE + sum(p.wire_size() for p in self.payloads)

    def free(self) -> int:
        return self.packet_size - self.used()

    def _state_key(self) -> tuple:
        # payloads are frozen, so their ids pin their contents for as long
        # as the list holds them; header fields are compared by value
        return (
            self.sequence,
            self.send_time_ms,
            self.packet_size,
            tuple(map(id, self.payloads)),
        )

    def pack(self) -> bytes:
        key = self._state_key()
        if self._wire is not None and self._wire_key == key:
            return self._wire
        body = (
            pack_u32(self.sequence)
            + pack_u32(self.packet_size)
            + pack_u64(self.send_time_ms)
            + pack_u8(len(self.payloads))
            + pack_u16(0)  # reserved
        )
        # note: the leading TAG+length (8 bytes) is part of PACKET_HEADER_SIZE
        for payload in self.payloads:
            body += payload.pack()
        padding = self.packet_size - (len(body) + 8)
        if padding < 0:
            raise ASFError(
                f"packet overflow: {len(body) + 8} > {self.packet_size}"
            )
        wire = write_object(TAG_PACKET, body + b"\x00" * padding)
        self._wire = wire
        self._wire_key = key
        return wire

    @classmethod
    def unpack_from(cls, reader: Reader) -> "DataPacket":
        body = reader.expect_object(TAG_PACKET)
        r = Reader(body)
        sequence = r.u32()
        packet_size = r.u32()
        send_time = r.u64()
        count = r.u8()
        r.u16()  # reserved
        payloads = [Payload.unpack(r) for _ in range(count)]
        return cls(sequence, send_time, payloads, packet_size)

    @classmethod
    def unpack(cls, data: bytes) -> "DataPacket":
        return cls.unpack_from(Reader(data))


@dataclass(frozen=True)
class MediaUnit:
    """Input to the packetizer / output of the depacketizer."""

    stream_number: int
    object_number: int
    timestamp_ms: int
    keyframe: bool
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def timestamp(self) -> float:
        return self.timestamp_ms / 1000.0


def units_from_encoded(
    stream_number: int, encoded, *, materialize: bool = True
) -> List[MediaUnit]:
    """Adapt an :class:`~repro.media.codecs.EncodedStream` to media units.

    Units whose codec run skipped payload generation (``data=b""`` but a
    declared size) are *materialized* as zero bytes so wire sizes stay
    honest.
    """
    units = []
    for u in encoded.units:
        data = u.data
        if not data and materialize:
            data = b"\x00" * u.size
        units.append(
            MediaUnit(stream_number, u.index, round(u.timestamp * 1000), u.keyframe, data)
        )
    return units


def concat_unit_lists(
    parts: Sequence[Sequence[MediaUnit]], offsets_ms: Sequence[int]
) -> List[MediaUnit]:
    """Concatenate per-segment unit lists onto one presentation timeline.

    Each part's timestamps are shifted by its offset and object numbers are
    renumbered densely across the whole result — the invariant the
    :class:`Depacketizer` loss report relies on. This is how the publish
    pipeline assembles a per-level lecture variant from independently
    encoded (and independently cached) segment streams.
    """
    if len(parts) != len(offsets_ms):
        raise ASFError("concat needs one offset per part")
    out: List[MediaUnit] = []
    number = 0
    for units, offset in zip(parts, offsets_ms):
        for u in units:
            out.append(
                MediaUnit(
                    u.stream_number,
                    number,
                    u.timestamp_ms + offset,
                    u.keyframe,
                    u.data,
                )
            )
            number += 1
    return out


def units_from_commands(commands: Sequence[ScriptCommand]) -> List[MediaUnit]:
    """Script commands as payloads of the reserved command stream."""
    return [
        MediaUnit(SCRIPT_STREAM_NUMBER, i, c.timestamp_ms, True, pack_command(c))
        for i, c in enumerate(sorted(commands))
    ]


def command_from_unit(unit: MediaUnit) -> ScriptCommand:
    if unit.stream_number != SCRIPT_STREAM_NUMBER:
        raise ASFError("not a script-command unit")
    return unpack_command(Reader(unit.data))


class Packetizer:
    """Multiplexes media units into paced, fixed-size packets.

    Two pacing modes:

    * ``"bitrate"`` — constant spacing of ``packet_size·8/bitrate`` between
      send times (live chunks, where timestamps are rebased by the caller);
    * ``"duration"`` — send times spread uniformly across the content's
      timestamp span, so N seconds of media are sent in exactly N seconds
      *including* container overhead — how stored ASF files are paced
      (constant-bitrate pacing would systematically lag by the overhead
      fraction and starve long playbacks).
    """

    def __init__(
        self,
        *,
        packet_size: int = DEFAULT_PACKET_SIZE,
        bitrate: float = 300_000.0,
        pacing: str = "bitrate",
    ) -> None:
        if packet_size <= PACKET_HEADER_SIZE + PAYLOAD_HEADER_SIZE:
            raise ASFError(f"packet size {packet_size} too small to carry data")
        if bitrate <= 0:
            raise ASFError("bitrate must be positive")
        if pacing not in ("bitrate", "duration"):
            raise ASFError(f"unknown pacing mode {pacing!r}")
        self.packet_size = packet_size
        self.bitrate = bitrate
        self.pacing = pacing

    @property
    def packet_interval_ms(self) -> float:
        """Send-time spacing for constant-rate pacing."""
        return self.packet_size * 8 * 1000 / self.bitrate

    def packetize(self, streams: Iterable[Sequence[MediaUnit]]) -> List[DataPacket]:
        """Interleave all units by (timestamp, stream) and pack greedily."""
        units: List[MediaUnit] = []
        for stream_units in streams:
            units.extend(stream_units)
        units.sort(key=lambda u: (u.timestamp_ms, u.stream_number, u.object_number))

        packets: List[DataPacket] = []

        def new_packet() -> DataPacket:
            seq = len(packets)
            packet = DataPacket(
                sequence=seq,
                send_time_ms=round(seq * self.packet_interval_ms),
                packet_size=self.packet_size,
            )
            packets.append(packet)
            return packet

        current = new_packet()
        for unit in units:
            offset = 0
            total = len(unit.data)
            while True:
                space = current.free() - PAYLOAD_HEADER_SIZE
                if space <= 0:
                    current = new_packet()
                    continue
                fragment = unit.data[offset : offset + space]
                current.payloads.append(
                    Payload(
                        unit.stream_number,
                        unit.object_number,
                        offset,
                        total,
                        unit.timestamp_ms,
                        unit.keyframe,
                        fragment,
                    )
                )
                offset += len(fragment)
                if offset >= total:
                    break
                current = new_packet()
        filled = [p for p in packets if p.payloads]
        if self.pacing == "duration" and len(filled) > 1:
            max_ts = max(
                payload.timestamp_ms for p in filled for payload in p.payloads
            )
            for i, packet in enumerate(filled):
                packet.send_time_ms = round(i * max_ts / (len(filled) - 1))
        return filled


@dataclass
class LossReport:
    """What the depacketizer saw per stream."""

    delivered: Dict[int, int] = field(default_factory=dict)
    lost: Dict[int, List[int]] = field(default_factory=dict)

    def loss_rate(self, stream_number: int) -> float:
        got = self.delivered.get(stream_number, 0)
        missing = len(self.lost.get(stream_number, []))
        total = got + missing
        return missing / total if total else 0.0


class Depacketizer:
    """Reassembles media units from (possibly lossy) packet arrivals.

    ``on_gap`` (optional) fires when an arriving sequence number implies
    earlier packets were skipped, with the sorted list of missing
    sequences — the hook the client's NAK loop
    (:mod:`repro.streaming.recovery`) hangs off.
    """

    def __init__(
        self, *, on_gap: Optional[Callable[[List[int]], None]] = None
    ) -> None:
        self._fragments: Dict[Tuple[int, int], Dict[int, Payload]] = {}
        self._meta: Dict[Tuple[int, int], Payload] = {}
        #: running reassembled byte count per in-flight object
        self._have: Dict[Tuple[int, int], int] = {}
        self.completed: List[MediaUnit] = []
        self._seen_objects: Dict[int, set] = {}
        self._completed_objects: Dict[int, set] = {}
        self._seen_sequences: set = set()
        self._max_sequence: Optional[int] = None
        self._suppress_completed = False
        self.suppressed_duplicates = 0
        self.on_gap = on_gap

    def expect_replay(self, *, suppress_completed: bool = False) -> None:
        """The source will intentionally re-send earlier packets (a seek):
        forget sequence history so the replay is not dropped as duplicate.

        ``suppress_completed=True`` additionally drops payloads of objects
        already reassembled — used when resuming after a server crash,
        where the replay overlaps content the client has already rendered
        and must not surface twice.
        """
        self._seen_sequences.clear()
        self._max_sequence = None
        self._suppress_completed = suppress_completed

    def push_packet(self, packet: DataPacket) -> List[MediaUnit]:
        """Feed one packet; returns units completed by it (in order).

        A packet whose sequence number was already delivered (a retransmit
        or duplicated datagram) is dropped whole — re-pushing it must not
        produce its units twice."""
        if packet.sequence in self._seen_sequences:
            return []
        self._seen_sequences.add(packet.sequence)
        if self.on_gap is not None and self._max_sequence is not None:
            if packet.sequence > self._max_sequence + 1:
                missing = [
                    seq
                    for seq in range(self._max_sequence + 1, packet.sequence)
                    if seq not in self._seen_sequences
                ]
                if missing:
                    self.on_gap(missing)
        if self._max_sequence is None or packet.sequence > self._max_sequence:
            self._max_sequence = packet.sequence
        finished: List[MediaUnit] = []
        fragments = self._fragments
        for payload in packet.payloads:
            stream = payload.stream_number
            key = (stream, payload.object_number)
            if (
                self._suppress_completed
                and payload.object_number
                in self._completed_objects.get(stream, ())
            ):
                self.suppressed_duplicates += 1
                continue
            self._seen_objects.setdefault(stream, set()).add(
                payload.object_number
            )
            if payload.is_complete_object and key not in fragments:
                # the common case — an unfragmented object in one payload:
                # its data IS the unit, no bucket, no re-sum, no join
                unit = MediaUnit(
                    stream,
                    payload.object_number,
                    payload.timestamp_ms,
                    payload.keyframe,
                    payload.data,
                )
                finished.append(unit)
                self.completed.append(unit)
                self._completed_objects.setdefault(stream, set()).add(
                    payload.object_number
                )
                continue
            bucket = fragments.setdefault(key, {})
            old = bucket.get(payload.offset)
            bucket[payload.offset] = payload
            self._meta[key] = payload
            # running byte count per object instead of re-summing the
            # whole bucket on every fragment (quadratic on large objects)
            have = self._have.get(key, 0) + len(payload.data)
            if old is not None:
                have -= len(old.data)
            self._have[key] = have
            if have >= payload.object_size:
                if len(bucket) == 1:
                    data = payload.data
                else:
                    data = b"".join(
                        bucket[offset].data for offset in sorted(bucket)
                    )
                unit = MediaUnit(
                    stream,
                    payload.object_number,
                    payload.timestamp_ms,
                    payload.keyframe,
                    data[: payload.object_size],
                )
                finished.append(unit)
                self.completed.append(unit)
                self._completed_objects.setdefault(stream, set()).add(
                    payload.object_number
                )
                del fragments[key]
                del self._meta[key]
                del self._have[key]
        return finished

    def units_for(self, stream_number: int) -> List[MediaUnit]:
        return [
            u for u in self.completed if u.stream_number == stream_number
        ]

    def loss_report(self) -> LossReport:
        """Lost = seen-or-implied object numbers never completed.

        Object numbers are dense per stream, so gaps below the maximum
        completed number are losses even if no fragment arrived at all.
        """
        report = LossReport()
        streams = set(self._seen_objects) | set(self._completed_objects)
        for stream in streams:
            done = self._completed_objects.get(stream, set())
            seen = self._seen_objects.get(stream, set())
            highest = max(seen | done, default=-1)
            expected = set(range(highest + 1))
            report.delivered[stream] = len(done)
            report.lost[stream] = sorted(expected - done)
        return report
