"""ASF-like container: header, packets, script commands, index, DRM, encoder."""

from .constants import (
    ASFError,
    DEFAULT_PACKET_SIZE,
    FLAG_BROADCAST,
    FLAG_DRM_PROTECTED,
    FLAG_SEEKABLE,
    SCRIPT_STREAM_NUMBER,
    STREAM_TYPE_AUDIO,
    STREAM_TYPE_COMMAND,
    STREAM_TYPE_IMAGE,
    STREAM_TYPE_VIDEO,
)
from .drm import DRMError, DRMInfo, License, LicenseServer, scramble
from .encoder import ASFEncoder, EncodeCache, EncoderConfig, LiveEncoderSession
from .farm import (
    JOB_AUDIO,
    JOB_IMAGE,
    JOB_VIDEO,
    START_METHOD,
    EncodeFarm,
    EncodeJob,
    FarmError,
    run_encode_job,
    run_job_with_deltas,
)
from .header import FileProperties, HeaderObject, StreamProperties
from .indexer import IndexEntry, SimpleIndex, add_script_commands
from .packets import (
    DataPacket,
    Depacketizer,
    LossReport,
    MediaUnit,
    Packetizer,
    Payload,
    command_from_unit,
    concat_unit_lists,
    units_from_commands,
    units_from_encoded,
)
from .script_commands import (
    STATEFUL_TYPES,
    TYPE_ANNOTATION,
    TYPE_CAPTION,
    TYPE_FILENAME,
    TYPE_SLIDE,
    TYPE_TREE_LEVEL,
    TYPE_URL,
    ScriptCommand,
    ScriptCommandDispatcher,
    slide_commands,
)
from .stream import ASFFile, ASFLiveStream

__all__ = [
    "ASFEncoder", "ASFError", "ASFFile", "ASFLiveStream", "DEFAULT_PACKET_SIZE",
    "DRMError", "DRMInfo", "DataPacket", "Depacketizer", "EncodeCache",
    "EncodeFarm", "EncodeJob", "EncoderConfig", "FarmError",
    "FLAG_BROADCAST", "FLAG_DRM_PROTECTED", "FLAG_SEEKABLE", "FileProperties",
    "HeaderObject", "IndexEntry", "JOB_AUDIO", "JOB_IMAGE", "JOB_VIDEO",
    "License", "LicenseServer",
    "LiveEncoderSession", "LossReport", "MediaUnit", "Packetizer", "Payload",
    "SCRIPT_STREAM_NUMBER", "START_METHOD", "STATEFUL_TYPES",
    "STREAM_TYPE_AUDIO",
    "STREAM_TYPE_COMMAND", "STREAM_TYPE_IMAGE", "STREAM_TYPE_VIDEO",
    "ScriptCommand", "ScriptCommandDispatcher", "SimpleIndex",
    "StreamProperties", "TYPE_ANNOTATION", "TYPE_CAPTION", "TYPE_FILENAME",
    "TYPE_SLIDE", "TYPE_TREE_LEVEL", "TYPE_URL", "add_script_commands",
    "command_from_unit", "concat_unit_lists", "run_encode_job",
    "run_job_with_deltas", "scramble",
    "slide_commands", "units_from_commands", "units_from_encoded",
]
