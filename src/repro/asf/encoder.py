"""The encoder — equivalent of Windows Media Encoder (paper §2.1, §2.5).

"Windows Media Codecs for creating advance stream format (ASF) content use
compression/decompression algorithms to compress audio and/or video media,
either from live sources or other media formats, to fit on a network's
available bandwidth."

:class:`ASFEncoder` takes media sources plus a
:class:`~repro.media.profiles.BandwidthProfile` and produces either a
stored :class:`~repro.asf.stream.ASFFile` (:meth:`encode_file`) or a
:class:`~repro.asf.stream.ASFLiveStream` fed incrementally
(:meth:`start_live` / :meth:`LiveEncoderSession.capture`). Script commands
(slide changes, annotations) are multiplexed into the output; DRM
protection is applied when a license server is supplied.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..media.codecs import EncodedStream, ImageCodec
from ..media.objects import AudioObject, ImageObject, VideoObject
from ..media.profiles import BandwidthProfile
from .constants import (
    ASFError,
    DEFAULT_PACKET_SIZE,
    FLAG_BROADCAST,
    FLAG_DRM_PROTECTED,
    SCRIPT_STREAM_NUMBER,
    STREAM_TYPE_AUDIO,
    STREAM_TYPE_COMMAND,
    STREAM_TYPE_IMAGE,
    STREAM_TYPE_VIDEO,
)
from .drm import DRMInfo, LicenseServer, scramble
from .header import FileProperties, HeaderObject, StreamProperties
from .packets import (
    MediaUnit,
    Packetizer,
    units_from_commands,
    units_from_encoded,
)
from .script_commands import ScriptCommand
from .stream import ASFFile, ASFLiveStream


@dataclass
class EncoderConfig:
    """Knobs of an encoding session."""

    profile: BandwidthProfile
    packet_size: int = DEFAULT_PACKET_SIZE
    preroll_ms: int = 3_000
    with_data: bool = False  # carry real synthetic payload bytes
    metadata: Dict[str, str] = field(default_factory=dict)


class EncodeCache:
    """Memoizes :meth:`ASFEncoder.encode_file` outputs — encode once, serve many.

    Keyed by the full encoding fingerprint: sources (frozen descriptors),
    script commands, profile, packet size, preroll, payload mode, and
    metadata. Repeated encodes of the same lecture/level (the Abstractor
    replays every level; a catalog republish re-encodes every lecture)
    return the already-built :class:`~repro.asf.stream.ASFFile` instead of
    re-running the codec models and packetizer.

    Entries are shared objects — callers must treat a cached file as
    immutable published content (the serving stack already does). DRM
    encodes bypass the cache entirely: license registration is a
    side-effecting, per-publish step.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries <= 0:
            raise ASFError("cache needs at least one entry")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, ASFFile]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> Optional[ASFFile]:
        cached = self._entries.get(key)
        if cached is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return cached

    def store(self, key: tuple, asf: ASFFile) -> ASFFile:
        self._entries[key] = asf
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return asf

    def clear(self) -> None:
        self._entries.clear()


class ASFEncoder:
    """Builds ASF content from media sources under a bandwidth profile."""

    def __init__(
        self, config: EncoderConfig, *, cache: Optional[EncodeCache] = None
    ) -> None:
        self.config = config
        self.cache = cache
        self._next_stream = itertools.count(1)
        self._image_codec = ImageCodec()

    def _cache_key(
        self,
        file_id: str,
        video: Optional[VideoObject],
        audio: Optional[AudioObject],
        images: Sequence[Tuple[ImageObject, float]],
        commands: Sequence[ScriptCommand],
    ) -> tuple:
        """Everything that can change the encoded bytes, in one hashable key."""
        return (
            file_id,
            video,
            audio,
            tuple(images),
            tuple(commands),
            self.config.profile,
            self.config.packet_size,
            self.config.preroll_ms,
            self.config.with_data,
            tuple(sorted(self.config.metadata.items())),
        )

    # ------------------------------------------------------------------

    def _encode_sources(
        self,
        video: Optional[VideoObject],
        audio: Optional[AudioObject],
        images: Sequence[Tuple[ImageObject, float]],
    ) -> Tuple[List[StreamProperties], List[List[MediaUnit]], float]:
        """Encode all sources; returns (stream table, unit lists, duration)."""
        profile = self.config.profile
        streams: List[StreamProperties] = []
        unit_lists: List[List[MediaUnit]] = []
        duration = 0.0

        if video is not None:
            number = next(self._next_stream)
            encoded = profile.encode_video(video, with_data=self.config.with_data)
            streams.append(
                StreamProperties(
                    number,
                    STREAM_TYPE_VIDEO,
                    codec=profile.video_codec,
                    bitrate=encoded.bitrate,
                    name=video.name,
                    extra={
                        "width": str(profile.configure_video(video).width),
                        "height": str(profile.configure_video(video).height),
                        "fps": str(profile.configure_video(video).fps),
                        "quality": f"{encoded.quality:.4f}",
                    },
                )
            )
            unit_lists.append(units_from_encoded(number, encoded))
            duration = max(duration, video.duration)

        if audio is not None:
            number = next(self._next_stream)
            encoded = profile.encode_audio(audio, with_data=self.config.with_data)
            streams.append(
                StreamProperties(
                    number,
                    STREAM_TYPE_AUDIO,
                    codec=profile.audio_codec,
                    bitrate=encoded.bitrate,
                    name=audio.name,
                    extra={"quality": f"{encoded.quality:.4f}"},
                )
            )
            unit_lists.append(units_from_encoded(number, encoded))
            duration = max(duration, audio.duration)

        if images:
            number = next(self._next_stream)
            units: List[MediaUnit] = []
            total_size = 0
            for object_number, (image, show_at) in enumerate(images):
                encoded = self._image_codec.encode(
                    image, with_data=self.config.with_data
                )
                unit = units_from_encoded(number, encoded)[0]
                units.append(
                    MediaUnit(
                        number,
                        object_number,
                        round(show_at * 1000),
                        True,
                        unit.data,
                    )
                )
                total_size += len(unit.data)
                duration = max(duration, show_at + image.duration)
            span = max(duration, 1e-9)
            streams.append(
                StreamProperties(
                    number,
                    STREAM_TYPE_IMAGE,
                    codec=self._image_codec.name,
                    bitrate=total_size * 8 / span,
                    name="slides",
                )
            )
            unit_lists.append(units)

        return streams, unit_lists, duration

    def _command_stream_properties(self) -> StreamProperties:
        return StreamProperties(
            SCRIPT_STREAM_NUMBER, STREAM_TYPE_COMMAND, codec="script", name="commands"
        )

    def _protect_units(
        self, unit_lists: List[List[MediaUnit]], key: str
    ) -> List[List[MediaUnit]]:
        protected = []
        for units in unit_lists:
            protected.append(
                [
                    MediaUnit(
                        u.stream_number,
                        u.object_number,
                        u.timestamp_ms,
                        u.keyframe,
                        scramble(u.data, key),
                    )
                    for u in units
                ]
            )
        return protected

    # ------------------------------------------------------------------

    def encode_file(
        self,
        *,
        file_id: str,
        video: Optional[VideoObject] = None,
        audio: Optional[AudioObject] = None,
        images: Sequence[Tuple[ImageObject, float]] = (),
        commands: Sequence[ScriptCommand] = (),
        license_server: Optional[LicenseServer] = None,
    ) -> ASFFile:
        """Encode sources into a stored, indexed .asf file."""
        if video is None and audio is None and not images:
            raise ASFError("nothing to encode")
        cache_key: Optional[tuple] = None
        if self.cache is not None and license_server is None:
            cache_key = self._cache_key(file_id, video, audio, images, sorted(commands))
            cached = self.cache.lookup(cache_key)
            if cached is not None:
                return cached
        streams, unit_lists, duration = self._encode_sources(video, audio, images)
        flags = 0
        drm: Optional[DRMInfo] = None
        if license_server is not None:
            key = license_server.register(file_id)
            unit_lists = self._protect_units(unit_lists, key)
            drm = DRMInfo(content_id=file_id)
            flags |= FLAG_DRM_PROTECTED

        command_list = sorted(commands)
        if command_list:
            streams.append(self._command_stream_properties())
            unit_lists.append(units_from_commands(command_list))

        header = HeaderObject(
            file_properties=FileProperties(
                file_id=file_id,
                duration_ms=round(duration * 1000),
                packet_size=self.config.packet_size,
                preroll_ms=self.config.preroll_ms,
                flags=flags,
            ),
            streams=streams,
            metadata=dict(self.config.metadata),
            script_commands=command_list,
            drm=drm,
        )
        packetizer = Packetizer(
            packet_size=self.config.packet_size,
            bitrate=max(header.total_bitrate, 1.0),
            pacing="duration",
        )
        asf = ASFFile(header=header, packets=packetizer.packetize(unit_lists))
        asf.ensure_index()
        if cache_key is not None:
            self.cache.store(cache_key, asf)
        return asf

    def encode_file_mbr(
        self,
        *,
        file_id: str,
        video: VideoObject,
        renditions: List[BandwidthProfile],
        audio: Optional[AudioObject] = None,
        images: Sequence[Tuple[ImageObject, float]] = (),
        commands: Sequence[ScriptCommand] = (),
        license_server: Optional[LicenseServer] = None,
    ) -> ASFFile:
        """Multi-bitrate encoding — Windows Media "Intelligent Streaming".

        The video is encoded once per profile in ``renditions`` into
        separate, mutually exclusive streams (tagged with ``mbr_group`` /
        ``mbr_rank`` in their stream properties); audio rides a single
        stream at the *first* profile's audio settings. A server delivers
        exactly one video rendition per client, picked to fit the client's
        link — see :meth:`repro.streaming.server.MediaServer.open_session`.
        """
        if not renditions:
            raise ASFError("MBR encoding needs at least one rendition")
        streams: List[StreamProperties] = []
        unit_lists: List[List[MediaUnit]] = []
        duration = video.duration

        ordered = sorted(renditions, key=lambda p: p.video_bitrate)
        for rank, profile in enumerate(ordered):
            number = next(self._next_stream)
            encoded = profile.encode_video(video, with_data=self.config.with_data)
            scaled = profile.configure_video(video)
            streams.append(
                StreamProperties(
                    number,
                    STREAM_TYPE_VIDEO,
                    codec=profile.video_codec,
                    bitrate=encoded.bitrate,
                    name=f"{video.name}@{profile.name}",
                    extra={
                        "mbr_group": "video",
                        "mbr_rank": str(rank),
                        "profile": profile.name,
                        "width": str(scaled.width),
                        "height": str(scaled.height),
                        "quality": f"{encoded.quality:.4f}",
                    },
                )
            )
            unit_lists.append(units_from_encoded(number, encoded))

        if audio is not None:
            number = next(self._next_stream)
            encoded = ordered[0].encode_audio(audio, with_data=self.config.with_data)
            streams.append(
                StreamProperties(
                    number, STREAM_TYPE_AUDIO, codec=ordered[0].audio_codec,
                    bitrate=encoded.bitrate, name=audio.name,
                )
            )
            unit_lists.append(units_from_encoded(number, encoded))
            duration = max(duration, audio.duration)

        if images:
            number = next(self._next_stream)
            units: List[MediaUnit] = []
            total = 0
            for object_number, (image, show_at) in enumerate(images):
                encoded = self._image_codec.encode(
                    image, with_data=self.config.with_data
                )
                blob = units_from_encoded(number, encoded)[0]
                units.append(
                    MediaUnit(number, object_number, round(show_at * 1000),
                              True, blob.data)
                )
                total += len(blob.data)
                duration = max(duration, show_at + image.duration)
            streams.append(
                StreamProperties(
                    number, STREAM_TYPE_IMAGE, codec=self._image_codec.name,
                    bitrate=total * 8 / max(duration, 1e-9), name="slides",
                )
            )
            unit_lists.append(units)

        flags = 0
        drm: Optional[DRMInfo] = None
        if license_server is not None:
            key = license_server.register(file_id)
            unit_lists = self._protect_units(unit_lists, key)
            drm = DRMInfo(content_id=file_id)
            flags |= FLAG_DRM_PROTECTED

        command_list = sorted(commands)
        if command_list:
            streams.append(self._command_stream_properties())
            unit_lists.append(units_from_commands(command_list))

        header = HeaderObject(
            file_properties=FileProperties(
                file_id=file_id,
                duration_ms=round(duration * 1000),
                packet_size=self.config.packet_size,
                preroll_ms=self.config.preroll_ms,
                flags=flags,
            ),
            streams=streams,
            metadata=dict(self.config.metadata),
            script_commands=command_list,
            drm=drm,
        )
        packetizer = Packetizer(
            packet_size=self.config.packet_size,
            bitrate=max(header.total_bitrate, 1.0),
            pacing="duration",
        )
        asf = ASFFile(header=header, packets=packetizer.packetize(unit_lists))
        asf.ensure_index()
        return asf

    def start_live(
        self,
        *,
        file_id: str,
        streams: Sequence[StreamProperties],
        bitrate: Optional[float] = None,
    ) -> "LiveEncoderSession":
        """Open a live (broadcast) encoding session.

        The caller feeds captured, already-encoded units via
        :meth:`LiveEncoderSession.capture`; packets become available to the
        server in timestamp order.
        """
        header = HeaderObject(
            file_properties=FileProperties(
                file_id=file_id,
                duration_ms=0,
                packet_size=self.config.packet_size,
                preroll_ms=self.config.preroll_ms,
                flags=FLAG_BROADCAST,
            ),
            streams=list(streams),
            metadata=dict(self.config.metadata),
        )
        rate = bitrate or max(header.total_bitrate, 64_000.0)
        return LiveEncoderSession(header, self.config.packet_size, rate)


class LiveEncoderSession:
    """An in-progress live broadcast (paper: "broadcast their encoded
    content in real time")."""

    def __init__(
        self, header: HeaderObject, packet_size: int, bitrate: float
    ) -> None:
        self.stream = ASFLiveStream(header)
        self._packetizer = Packetizer(packet_size=packet_size, bitrate=bitrate)
        self._sequence_base = 0
        self._time_base_ms = 0.0

    def capture(self, units: Sequence[MediaUnit]) -> int:
        """Packetize freshly captured units; returns packets produced."""
        if not units:
            return 0
        packets = self._packetizer.packetize([list(units)])
        # re-sequence/re-pace onto the live timeline
        rebased = []
        for packet in packets:
            packet.sequence += self._sequence_base
            packet.send_time_ms = round(
                self._time_base_ms + packet.send_time_ms
            )
            rebased.append(packet)
        if rebased:
            self._sequence_base = rebased[-1].sequence + 1
            self._time_base_ms = max(
                self._time_base_ms,
                float(max(u.timestamp_ms for u in units)),
            )
        self.stream.append(rebased)
        return len(rebased)

    def send_command(self, command: ScriptCommand) -> None:
        """Inject a live script command (paper: commands "can be added to
        live streams through Windows Media Encoder")."""
        self.capture(units_from_commands([command]))

    def finish(self) -> None:
        self.stream.close()
