"""The encoder — equivalent of Windows Media Encoder (paper §2.1, §2.5).

"Windows Media Codecs for creating advance stream format (ASF) content use
compression/decompression algorithms to compress audio and/or video media,
either from live sources or other media formats, to fit on a network's
available bandwidth."

:class:`ASFEncoder` takes media sources plus a
:class:`~repro.media.profiles.BandwidthProfile` and produces either a
stored :class:`~repro.asf.stream.ASFFile` (:meth:`encode_file`) or a
:class:`~repro.asf.stream.ASFLiveStream` fed incrementally
(:meth:`start_live` / :meth:`LiveEncoderSession.capture`). Script commands
(slide changes, annotations) are multiplexed into the output; DRM
protection is applied when a license server is supplied.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..media.codecs import EncodedStream, ImageCodec
from ..media.objects import AudioObject, ImageObject, VideoObject
from ..media.profiles import BandwidthProfile
from ..metrics.counters import Counters, get_counters
from .constants import (
    ASFError,
    DEFAULT_PACKET_SIZE,
    FLAG_BROADCAST,
    FLAG_DRM_PROTECTED,
    SCRIPT_STREAM_NUMBER,
    STREAM_TYPE_AUDIO,
    STREAM_TYPE_COMMAND,
    STREAM_TYPE_IMAGE,
    STREAM_TYPE_VIDEO,
)
from .drm import DRMInfo, LicenseServer, scramble
from .farm import (
    JOB_AUDIO,
    JOB_IMAGE,
    JOB_VIDEO,
    EncodeFarm,
    EncodeJob,
)
from .header import FileProperties, HeaderObject, StreamProperties
from .packets import (
    MediaUnit,
    Packetizer,
    units_from_commands,
    units_from_encoded,
)
from .script_commands import ScriptCommand
from .stream import ASFFile, ASFLiveStream


@dataclass
class EncoderConfig:
    """Knobs of an encoding session."""

    profile: BandwidthProfile
    packet_size: int = DEFAULT_PACKET_SIZE
    preroll_ms: int = 3_000
    with_data: bool = False  # carry real synthetic payload bytes
    metadata: Dict[str, str] = field(default_factory=dict)


class EncodeCache:
    """Memoizes encoder outputs at two scopes — encode once, serve many.

    **File-level** entries (:meth:`lookup` / :meth:`store`) are keyed by
    the full encoding fingerprint: sources (frozen descriptors), script
    commands, profile(s), packet size, preroll, payload mode, and metadata.
    Repeated encodes of the same lecture/level (the Abstractor replays
    every level; a catalog republish re-encodes every lecture) return the
    already-built :class:`~repro.asf.stream.ASFFile` instead of re-running
    the codec models and packetizer. Both :meth:`ASFEncoder.encode_file`
    and :meth:`ASFEncoder.encode_file_mbr` (rendition-aware key) consult it.

    **Segment-level** entries (:meth:`lookup_segment` / :meth:`store_segment`)
    are content-addressed :class:`~repro.media.codecs.EncodedStream`
    results keyed by :meth:`repro.asf.farm.EncodeJob.fingerprint` — source
    fingerprint, profile, codec + keyframe parameters, payload mode. They
    make republishing a lecture after editing one slide segment, or
    publishing abstraction level k after level k+1, encode only the delta.

    Entries are shared objects — callers must treat cached content as
    immutable published media (the serving stack already does). DRM
    encodes bypass the cache entirely, at both scopes: license
    registration is a side-effecting, per-publish step and protected
    payloads must not leak through a shared cache.

    Hit/miss/eviction and bytes-saved tallies are published to the
    process-global ``encode_cache`` counter bag
    (:func:`repro.metrics.counters.get_counters`) for benches and
    dashboards, alongside the per-instance attributes.
    """

    def __init__(
        self,
        max_entries: int = 32,
        *,
        max_segment_entries: int = 512,
        counters: Optional[Counters] = None,
    ) -> None:
        if max_entries <= 0 or max_segment_entries <= 0:
            raise ASFError("cache needs at least one entry")
        self.max_entries = max_entries
        self.max_segment_entries = max_segment_entries
        self._entries: "OrderedDict[tuple, ASFFile]" = OrderedDict()
        self._segments: "OrderedDict[tuple, EncodedStream]" = OrderedDict()
        self.counters = counters if counters is not None else get_counters("encode_cache")
        self.hits = 0
        self.misses = 0
        self.segment_hits = 0
        self.segment_misses = 0
        self.evictions = 0
        self.bytes_saved = 0

    def __len__(self) -> int:
        """Number of file-level entries (segment entries: :attr:`segment_count`)."""
        return len(self._entries)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    # -- file scope ----------------------------------------------------

    def lookup(self, key: tuple) -> Optional[ASFFile]:
        cached = self._entries.get(key)
        if cached is None:
            self.misses += 1
            self.counters.inc("file_misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.counters.inc("file_hits")
        saved = sum(p.packet_size for p in cached.packets)
        self.bytes_saved += saved
        self.counters.inc("bytes_saved", saved)
        return cached

    def store(self, key: tuple, asf: ASFFile) -> ASFFile:
        self._entries[key] = asf
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self.counters.inc("file_evictions")
        return asf

    # -- segment scope -------------------------------------------------

    def lookup_segment(self, key: tuple) -> Optional[EncodedStream]:
        cached = self._segments.get(key)
        if cached is None:
            self.segment_misses += 1
            self.counters.inc("segment_misses")
            return None
        self._segments.move_to_end(key)
        self.segment_hits += 1
        self.counters.inc("segment_hits")
        self.bytes_saved += cached.total_size
        self.counters.inc("bytes_saved", cached.total_size)
        return cached

    def store_segment(self, key: tuple, stream: EncodedStream) -> EncodedStream:
        self._segments[key] = stream
        self._segments.move_to_end(key)
        while len(self._segments) > self.max_segment_entries:
            self._segments.popitem(last=False)
            self.evictions += 1
            self.counters.inc("segment_evictions")
        return stream

    def clear(self) -> None:
        self._entries.clear()
        self._segments.clear()


class ASFEncoder:
    """Builds ASF content from media sources under a bandwidth profile.

    Every codec run goes through an :class:`~repro.asf.farm.EncodeFarm`:
    the default is a private serial farm (``workers=0`` — no
    multiprocessing machinery at all), and passing a parallel ``farm``
    spreads independent encodes (MBR renditions, slide images) across
    worker processes with byte-identical output — the farm merges worker
    results in rank order and stream numbering/packetization happen here,
    downstream of the merge. A farm given without its own cache adopts
    this encoder's ``cache`` so segment-level reuse stays on.
    """

    def __init__(
        self,
        config: EncoderConfig,
        *,
        cache: Optional[EncodeCache] = None,
        farm: Optional[EncodeFarm] = None,
        tracer=None,
    ) -> None:
        self.config = config
        self.cache = cache
        self.tracer = tracer  # optional repro.obs.Tracer
        if farm is None:
            farm = EncodeFarm(0, cache=cache, tracer=tracer)
        elif farm.cache is None and cache is not None:
            farm.cache = cache
        if farm.tracer is None and tracer is not None:
            farm.tracer = tracer
        self.farm = farm
        self._next_stream = itertools.count(1)
        self._image_codec = ImageCodec()

    def _cache_key(
        self,
        file_id: str,
        video: Optional[VideoObject],
        audio: Optional[AudioObject],
        images: Sequence[Tuple[ImageObject, float]],
        commands: Sequence[ScriptCommand],
    ) -> tuple:
        """Everything that can change the encoded bytes, in one hashable key."""
        return (
            file_id,
            video,
            audio,
            tuple(images),
            tuple(commands),
            self.config.profile,
            self.config.packet_size,
            self.config.preroll_ms,
            self.config.with_data,
            tuple(sorted(self.config.metadata.items())),
        )

    def _cache_key_mbr(
        self,
        file_id: str,
        video: VideoObject,
        audio: Optional[AudioObject],
        images: Sequence[Tuple[ImageObject, float]],
        commands: Sequence[ScriptCommand],
        ordered: Sequence[BandwidthProfile],
    ) -> tuple:
        """Rendition-aware key for :meth:`encode_file_mbr` outputs."""
        return (
            "mbr",
            file_id,
            video,
            audio,
            tuple(images),
            tuple(commands),
            tuple(ordered),
            self.config.packet_size,
            self.config.preroll_ms,
            self.config.with_data,
            tuple(sorted(self.config.metadata.items())),
        )

    # ------------------------------------------------------------------

    def _job(self, kind: str, media, profile: Optional[BandwidthProfile] = None) -> EncodeJob:
        return EncodeJob(
            kind,
            media,
            profile=profile,
            with_data=self.config.with_data,
            image_codec=self._image_codec if kind == JOB_IMAGE else None,
        )

    def _assemble_sources(
        self,
        video: Optional[VideoObject],
        audio: Optional[AudioObject],
        images: Sequence[Tuple[ImageObject, float]],
        encoded: Sequence[EncodedStream],
        *,
        video_profiles: Optional[Sequence[BandwidthProfile]] = None,
    ) -> Tuple[List[StreamProperties], List[List[MediaUnit]], float]:
        """Turn farm results into (stream table, unit lists, duration).

        ``encoded`` must match the job submission order: one entry per
        video profile (``video_profiles``, or the config profile), then
        audio, then one per image. Stream numbers are assigned here, in
        that fixed order — identical for serial and parallel encodes.
        """
        profile = self.config.profile
        streams: List[StreamProperties] = []
        unit_lists: List[List[MediaUnit]] = []
        duration = 0.0
        cursor = iter(encoded)

        if video is not None:
            profiles = list(video_profiles) if video_profiles else [profile]
            mbr = len(profiles) > 1
            for rank, video_profile in enumerate(profiles):
                number = next(self._next_stream)
                enc = next(cursor)
                scaled = video_profile.configure_video(video)
                extra = {
                    "width": str(scaled.width),
                    "height": str(scaled.height),
                    "quality": f"{enc.quality:.4f}",
                }
                if mbr:
                    extra.update(
                        mbr_group="video",
                        mbr_rank=str(rank),
                        profile=video_profile.name,
                    )
                    name = f"{video.name}@{video_profile.name}"
                else:
                    extra["fps"] = str(scaled.fps)
                    name = video.name
                streams.append(
                    StreamProperties(
                        number,
                        STREAM_TYPE_VIDEO,
                        codec=video_profile.video_codec,
                        bitrate=enc.bitrate,
                        name=name,
                        extra=extra,
                    )
                )
                unit_lists.append(units_from_encoded(number, enc))
            duration = max(duration, video.duration)

        if audio is not None:
            audio_profile = (
                list(video_profiles)[0] if video_profiles else profile
            )
            number = next(self._next_stream)
            enc = next(cursor)
            extra = {} if video_profiles else {"quality": f"{enc.quality:.4f}"}
            streams.append(
                StreamProperties(
                    number,
                    STREAM_TYPE_AUDIO,
                    codec=audio_profile.audio_codec,
                    bitrate=enc.bitrate,
                    name=audio.name,
                    extra=extra,
                )
            )
            unit_lists.append(units_from_encoded(number, enc))
            duration = max(duration, audio.duration)

        if images:
            number = next(self._next_stream)
            units: List[MediaUnit] = []
            total_size = 0
            for object_number, (image, show_at) in enumerate(images):
                enc = next(cursor)
                unit = units_from_encoded(number, enc)[0]
                units.append(
                    MediaUnit(
                        number,
                        object_number,
                        round(show_at * 1000),
                        True,
                        unit.data,
                    )
                )
                total_size += len(unit.data)
                duration = max(duration, show_at + image.duration)
            span = max(duration, 1e-9)
            streams.append(
                StreamProperties(
                    number,
                    STREAM_TYPE_IMAGE,
                    codec=self._image_codec.name,
                    bitrate=total_size * 8 / span,
                    name="slides",
                )
            )
            unit_lists.append(units)

        return streams, unit_lists, duration

    def _command_stream_properties(self) -> StreamProperties:
        return StreamProperties(
            SCRIPT_STREAM_NUMBER, STREAM_TYPE_COMMAND, codec="script", name="commands"
        )

    def _protect_units(
        self, unit_lists: List[List[MediaUnit]], key: str
    ) -> List[List[MediaUnit]]:
        protected = []
        for units in unit_lists:
            protected.append(
                [
                    MediaUnit(
                        u.stream_number,
                        u.object_number,
                        u.timestamp_ms,
                        u.keyframe,
                        scramble(u.data, key),
                    )
                    for u in units
                ]
            )
        return protected

    # ------------------------------------------------------------------

    def encode_file(
        self,
        *,
        file_id: str,
        video: Optional[VideoObject] = None,
        audio: Optional[AudioObject] = None,
        images: Sequence[Tuple[ImageObject, float]] = (),
        commands: Sequence[ScriptCommand] = (),
        license_server: Optional[LicenseServer] = None,
    ) -> ASFFile:
        """Encode sources into a stored, indexed .asf file."""
        if video is None and audio is None and not images:
            raise ASFError("nothing to encode")
        command_list = sorted(commands)
        cache_key: Optional[tuple] = None
        if self.cache is not None and license_server is None:
            cache_key = self._cache_key(file_id, video, audio, images, command_list)
            cached = self.cache.lookup(cache_key)
            if cached is not None:
                if self.tracer is not None:
                    self.tracer.event(
                        "encode.file", file_id=file_id, cached=True
                    )
                return cached
        if self.tracer is not None:
            self.tracer.event("encode.file", file_id=file_id, cached=False)
        jobs: List[EncodeJob] = []
        if video is not None:
            jobs.append(self._job(JOB_VIDEO, video, self.config.profile))
        if audio is not None:
            jobs.append(self._job(JOB_AUDIO, audio, self.config.profile))
        jobs.extend(self._job(JOB_IMAGE, image) for image, _ in images)
        encoded = self.farm.encode_batch(jobs, use_cache=license_server is None)
        streams, unit_lists, duration = self._assemble_sources(
            video, audio, images, encoded
        )
        flags = 0
        drm: Optional[DRMInfo] = None
        if license_server is not None:
            key = license_server.register(file_id)
            unit_lists = self._protect_units(unit_lists, key)
            drm = DRMInfo(content_id=file_id)
            flags |= FLAG_DRM_PROTECTED

        if command_list:
            streams.append(self._command_stream_properties())
            unit_lists.append(units_from_commands(command_list))

        header = HeaderObject(
            file_properties=FileProperties(
                file_id=file_id,
                duration_ms=round(duration * 1000),
                packet_size=self.config.packet_size,
                preroll_ms=self.config.preroll_ms,
                flags=flags,
            ),
            streams=streams,
            metadata=dict(self.config.metadata),
            script_commands=command_list,
            drm=drm,
        )
        packetizer = Packetizer(
            packet_size=self.config.packet_size,
            bitrate=max(header.total_bitrate, 1.0),
            pacing="duration",
        )
        asf = ASFFile(header=header, packets=packetizer.packetize(unit_lists))
        asf.ensure_index()
        if cache_key is not None:
            self.cache.store(cache_key, asf)
        return asf

    def encode_file_mbr(
        self,
        *,
        file_id: str,
        video: VideoObject,
        renditions: List[BandwidthProfile],
        audio: Optional[AudioObject] = None,
        images: Sequence[Tuple[ImageObject, float]] = (),
        commands: Sequence[ScriptCommand] = (),
        license_server: Optional[LicenseServer] = None,
    ) -> ASFFile:
        """Multi-bitrate encoding — Windows Media "Intelligent Streaming".

        The video is encoded once per profile in ``renditions`` into
        separate, mutually exclusive streams (tagged with ``mbr_group`` /
        ``mbr_rank`` in their stream properties); audio rides a single
        stream at the *first* profile's audio settings. A server delivers
        exactly one video rendition per client, picked to fit the client's
        link — see :meth:`repro.streaming.server.MediaServer.open_session`.

        Non-DRM output is memoized in the attached :class:`EncodeCache`
        under a rendition-aware key; per-rendition video encodes are
        independent farm jobs, so a parallel farm encodes the whole ladder
        concurrently with byte-identical results.
        """
        if not renditions:
            raise ASFError("MBR encoding needs at least one rendition")
        ordered = sorted(renditions, key=lambda p: p.video_bitrate)
        command_list = sorted(commands)
        cache_key: Optional[tuple] = None
        if self.cache is not None and license_server is None:
            cache_key = self._cache_key_mbr(
                file_id, video, audio, images, command_list, ordered
            )
            cached = self.cache.lookup(cache_key)
            if cached is not None:
                return cached

        jobs: List[EncodeJob] = [
            self._job(JOB_VIDEO, video, profile) for profile in ordered
        ]
        if audio is not None:
            jobs.append(self._job(JOB_AUDIO, audio, ordered[0]))
        jobs.extend(self._job(JOB_IMAGE, image) for image, _ in images)
        encoded = self.farm.encode_batch(jobs, use_cache=license_server is None)
        streams, unit_lists, duration = self._assemble_sources(
            video, audio, images, encoded, video_profiles=ordered
        )

        flags = 0
        drm: Optional[DRMInfo] = None
        if license_server is not None:
            key = license_server.register(file_id)
            unit_lists = self._protect_units(unit_lists, key)
            drm = DRMInfo(content_id=file_id)
            flags |= FLAG_DRM_PROTECTED

        if command_list:
            streams.append(self._command_stream_properties())
            unit_lists.append(units_from_commands(command_list))

        header = HeaderObject(
            file_properties=FileProperties(
                file_id=file_id,
                duration_ms=round(duration * 1000),
                packet_size=self.config.packet_size,
                preroll_ms=self.config.preroll_ms,
                flags=flags,
            ),
            streams=streams,
            metadata=dict(self.config.metadata),
            script_commands=command_list,
            drm=drm,
        )
        packetizer = Packetizer(
            packet_size=self.config.packet_size,
            bitrate=max(header.total_bitrate, 1.0),
            pacing="duration",
        )
        asf = ASFFile(header=header, packets=packetizer.packetize(unit_lists))
        asf.ensure_index()
        if cache_key is not None:
            self.cache.store(cache_key, asf)
        return asf

    def start_live(
        self,
        *,
        file_id: str,
        streams: Sequence[StreamProperties],
        bitrate: Optional[float] = None,
    ) -> "LiveEncoderSession":
        """Open a live (broadcast) encoding session.

        The caller feeds captured, already-encoded units via
        :meth:`LiveEncoderSession.capture`; packets become available to the
        server in timestamp order.
        """
        header = HeaderObject(
            file_properties=FileProperties(
                file_id=file_id,
                duration_ms=0,
                packet_size=self.config.packet_size,
                preroll_ms=self.config.preroll_ms,
                flags=FLAG_BROADCAST,
            ),
            streams=list(streams),
            metadata=dict(self.config.metadata),
        )
        rate = bitrate or max(header.total_bitrate, 64_000.0)
        return LiveEncoderSession(header, self.config.packet_size, rate)


class LiveEncoderSession:
    """An in-progress live broadcast (paper: "broadcast their encoded
    content in real time")."""

    def __init__(
        self, header: HeaderObject, packet_size: int, bitrate: float
    ) -> None:
        self.stream = ASFLiveStream(header)
        self._packetizer = Packetizer(packet_size=packet_size, bitrate=bitrate)
        self._sequence_base = 0
        self._time_base_ms = 0.0

    def capture(self, units: Sequence[MediaUnit]) -> int:
        """Packetize freshly captured units; returns packets produced."""
        if not units:
            return 0
        packets = self._packetizer.packetize([list(units)])
        # re-sequence/re-pace onto the live timeline
        rebased = []
        for packet in packets:
            packet.sequence += self._sequence_base
            packet.send_time_ms = round(
                self._time_base_ms + packet.send_time_ms
            )
            rebased.append(packet)
        if rebased:
            self._sequence_base = rebased[-1].sequence + 1
            self._time_base_ms = max(
                self._time_base_ms,
                float(max(u.timestamp_ms for u in units)),
            )
        self.stream.append(rebased)
        return len(rebased)

    def send_command(self, command: ScriptCommand) -> None:
        """Inject a live script command (paper: commands "can be added to
        live streams through Windows Media Encoder")."""
        self.capture(units_from_commands([command]))

    def finish(self) -> None:
        self.stream.close()
