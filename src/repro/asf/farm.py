"""The encode farm — parallel, reuse-aware encoding for the publish pipeline.

The paper's publishing workflow (§2.1, §2.5) turns one lecture into many
artifacts: one ASF per bandwidth profile ("Intelligent Streaming"
renditions) × one per content-tree abstraction level (§2.3–§2.4, the
Abstractor's multi-length presentations). Every one of those encodes is an
independent, pure function of (source media, profile, codec parameters) —
exactly the shape that fans out across worker processes and deduplicates
by content.

Two layers live here:

* :class:`EncodeJob` — a frozen, picklable description of one codec run.
  Its :meth:`~EncodeJob.fingerprint` is a content address: equal
  fingerprints guarantee byte-identical :class:`~repro.media.codecs.EncodedStream`
  outputs, because every codec in :mod:`repro.media.codecs` is a
  deterministic function of its inputs.
* :class:`EncodeFarm` — runs batches of jobs. ``workers=0`` (the default)
  is a strictly serial in-process path that touches **zero**
  multiprocessing machinery, keeping simulator/chaos runs deterministic;
  ``workers=N`` fans the batch across a ``multiprocessing`` pool using the
  pinned ``spawn`` start method (identical semantics on every platform and
  Python version). Results are merged in submission (rank) order, so the
  parallel path is **byte-identical** to the serial one — stream-number
  assignment and packetization stay in the caller, downstream of the merge.

Reuse happens at two scopes, both before any worker is consulted:

* **within a batch** — identical fingerprints submitted together are
  encoded once (publishing abstraction level k alongside level k+1 shares
  every common segment);
* **across batches** — when an :class:`~repro.asf.encoder.EncodeCache` is
  attached, its segment-level entries persist results keyed by
  fingerprint, so republishing a lecture after editing one slide segment
  only encodes the delta.

The farm tallies ``jobs``, ``encodes``, ``dedup_hits``, ``cache_hits`` and
``parallel_batches`` into the process-global ``encode_farm`` counter bag
(:func:`repro.metrics.counters.get_counters`); each codec run additionally
records ``codec_runs``/``encoded_bytes`` *in the process that executed
it*. On the pool path those increments land in spawn children, whose
registry is separate from the parent's — :func:`run_job_with_deltas`
returns each job's counter delta with its result and the parent merges it
(:func:`repro.metrics.counters.merge_snapshot`), so serial and parallel
runs report identical totals.

``simulated_cost`` models wall-clock codec latency (seconds a real encoder
of the paper's era would burn on the job). The parametric codec models in
this repository are intentionally near-free to execute, which would make a
scheduling benchmark measure nothing; jobs carry an explicit latency model
instead, and it never affects output bytes. Production paths leave it 0.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..media.codecs import EncodedStream, ImageCodec, get_codec
from ..media.objects import AudioObject, ImageObject, MediaObject, VideoObject
from ..media.profiles import BandwidthProfile
from ..metrics.counters import (
    Counters,
    counters_snapshot,
    get_counters,
    merge_snapshot,
    snapshot_delta,
)
from .constants import ASFError

#: Pinned multiprocessing start method. ``spawn`` gives identical worker
#: initialization on every platform and Python version (3.9 and 3.12 CI
#: lanes included); ``fork`` would be faster on Linux but inherits parent
#: state, which is exactly the nondeterminism the farm is built to exclude.
START_METHOD = "spawn"

JOB_VIDEO = "video"
JOB_AUDIO = "audio"
JOB_IMAGE = "image"


class FarmError(ASFError):
    """Encode-farm misuse."""


@dataclass(frozen=True)
class EncodeJob:
    """One codec run, described by value: picklable, hashable, pure.

    ``kind`` selects the codec path: ``"video"``/``"audio"`` need a
    :class:`~repro.media.profiles.BandwidthProfile`, ``"image"`` an
    :class:`~repro.media.codecs.ImageCodec` (defaults to the standard slide
    compressor). ``simulated_cost`` is modeled encoder latency in seconds —
    it shapes scheduling, never output bytes, and is excluded from the
    fingerprint.
    """

    kind: str
    media: MediaObject
    profile: Optional[BandwidthProfile] = None
    with_data: bool = False
    image_codec: Optional[ImageCodec] = None
    simulated_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in (JOB_VIDEO, JOB_AUDIO, JOB_IMAGE):
            raise FarmError(f"unknown job kind {self.kind!r}")
        if self.kind in (JOB_VIDEO, JOB_AUDIO) and self.profile is None:
            raise FarmError(f"{self.kind} job needs a bandwidth profile")
        if self.simulated_cost < 0:
            raise FarmError("simulated_cost must be >= 0")

    def _codec_fingerprint(self) -> tuple:
        if self.kind == JOB_VIDEO:
            return get_codec(self.profile.video_codec).fingerprint()
        if self.kind == JOB_AUDIO:
            return get_codec(self.profile.audio_codec).fingerprint()
        return (self.image_codec or ImageCodec()).fingerprint()

    def fingerprint(self) -> tuple:
        """Content address: everything that can change the encoded bytes.

        Source descriptor (the synthetic media's full identity, seed
        included), profile, codec identity + keyframe/GOP parameters, and
        the payload mode. Deliberately excludes ``simulated_cost``.
        """
        return (
            self.kind,
            self.media,
            self.profile,
            self._codec_fingerprint(),
            self.with_data,
        )


def run_encode_job(job: EncodeJob) -> EncodedStream:
    """Execute one job — the worker entry point (top-level for pickling)."""
    if job.simulated_cost > 0:
        time.sleep(job.simulated_cost)
    if job.kind == JOB_VIDEO:
        stream = job.profile.encode_video(job.media, with_data=job.with_data)
    elif job.kind == JOB_AUDIO:
        stream = job.profile.encode_audio(job.media, with_data=job.with_data)
    else:
        stream = (job.image_codec or ImageCodec()).encode(
            job.media, with_data=job.with_data
        )
    # codec-run accounting happens where the codec runs — in the worker
    # process on the pool path. run_job_with_deltas carries these
    # increments back to the parent registry.
    bag = get_counters("encode_farm")
    bag.inc("codec_runs")
    bag.inc("encoded_bytes", stream.total_size)
    return stream


def run_job_with_deltas(
    job: EncodeJob,
) -> Tuple[EncodedStream, Dict[str, Dict[str, int]]]:
    """Pool entry point: the job's result plus its registry increments.

    ``spawn`` children own a private process-global counter registry, so
    any ``inc`` made while encoding would die with the worker. Snapshot
    before/after (the pool is persistent — workers accumulate state across
    jobs, so the delta must be per-job) and return the difference for the
    parent to :func:`~repro.metrics.counters.merge_snapshot`.
    """
    before = counters_snapshot()
    stream = run_encode_job(job)
    return stream, snapshot_delta(before, counters_snapshot())


class EncodeFarm:
    """Fans independent encode jobs across worker processes, with reuse.

    ``workers=0`` is the deterministic serial fallback: jobs run inline,
    in order, and no multiprocessing module is even imported. ``workers>0``
    lazily builds one persistent ``spawn`` pool (first parallel batch pays
    the worker start-up; later batches reuse it — a publish farm is a
    long-lived service). :meth:`close` tears the pool down; the farm is a
    context manager.

    ``cache`` is an :class:`~repro.asf.encoder.EncodeCache` whose
    segment-level entries persist job results across batches. Pass
    ``use_cache=False`` to :meth:`encode_batch` to bypass it for a batch
    (the encoder does this for DRM publishes, which are contractually
    uncached).
    """

    def __init__(
        self,
        workers: int = 0,
        *,
        cache: Optional["EncodeCache"] = None,  # noqa: F821 - forward ref
        start_method: str = START_METHOD,
        counters: Optional[Counters] = None,
        tracer=None,
    ) -> None:
        if workers < 0:
            raise FarmError("workers must be >= 0")
        self.workers = workers
        self.cache = cache
        self.start_method = start_method
        self.counters = counters if counters is not None else get_counters("encode_farm")
        self.tracer = tracer  # optional repro.obs.Tracer
        self._pool = None
        # per-instance tallies (the registry bag aggregates across farms)
        self.encodes_performed = 0
        self.dedup_hits = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------

    def encode_batch(
        self, jobs: Sequence[EncodeJob], *, use_cache: bool = True
    ) -> List[EncodedStream]:
        """Encode ``jobs``; result ``i`` corresponds to ``jobs[i]``.

        Cache and within-batch dedup are resolved first; only distinct,
        uncached fingerprints reach the codec (serially or on the pool).
        The returned streams are shared objects — treat them as immutable
        published content, exactly like cached ASF files.
        """
        self.counters.inc("jobs", len(jobs))
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(
                "farm.batch", jobs=len(jobs), workers=self.workers
            )
        batch_dedup = self.dedup_hits
        batch_cached = self.cache_hits
        results: List[Optional[EncodedStream]] = [None] * len(jobs)
        pending: Dict[tuple, List[int]] = {}
        for i, job in enumerate(jobs):
            key = job.fingerprint()
            if key in pending:
                pending[key].append(i)
                self.dedup_hits += 1
                self.counters.inc("dedup_hits")
                continue
            if use_cache and self.cache is not None:
                cached = self.cache.lookup_segment(key)
                if cached is not None:
                    results[i] = cached
                    self.cache_hits += 1
                    self.counters.inc("cache_hits")
                    continue
            pending[key] = [i]
        unique = [(key, jobs[slots[0]]) for key, slots in pending.items()]
        encoded = self._run([job for _, job in unique])
        self.encodes_performed += len(unique)
        self.counters.inc("encodes", len(unique))
        for (key, _), stream in zip(unique, encoded):
            if use_cache and self.cache is not None:
                self.cache.store_segment(key, stream)
            for i in pending[key]:
                results[i] = stream
        if self.tracer is not None:
            self.tracer.end(
                span,
                encodes=len(unique),
                dedup_hits=self.dedup_hits - batch_dedup,
                cache_hits=self.cache_hits - batch_cached,
            )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def _run(self, jobs: List[EncodeJob]) -> List[EncodedStream]:
        if self.workers <= 0 or len(jobs) <= 1:
            return [run_encode_job(job) for job in jobs]
        pool = self._ensure_pool()
        self.counters.inc("parallel_batches")
        # Pool.map preserves submission order: worker results are merged in
        # rank order, which is what keeps parallel output byte-identical to
        # the serial path (stream numbering happens in the caller, after).
        # Each result carries the worker's counter delta; merging it here
        # makes parallel runs report the same registry totals as serial.
        streams: List[EncodedStream] = []
        for stream, deltas in pool.map(run_job_with_deltas, jobs, chunksize=1):
            merge_snapshot(deltas)
            streams.append(stream)
        return streams

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    @property
    def pool_started(self) -> bool:
        """True once a worker pool exists (never at ``workers=0``)."""
        return self._pool is not None

    def warm_up(self) -> None:
        """Start the pool (if parallel) ahead of the first real batch."""
        if self.workers > 0:
            pool = self._ensure_pool()
            # a no-op round trip proves every worker imported the codebase
            pool.map(_noop, range(self.workers), chunksize=1)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "EncodeFarm":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _noop(value: int) -> int:
    return value
