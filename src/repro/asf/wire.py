"""Low-level serialization primitives shared by all ASF objects.

Everything on the wire is little-endian. Strings are u16-length-prefixed
UTF-8; blobs are u32-length-prefixed. Objects are ``tag(4s) + u32 length +
payload`` — :func:`write_object` / :class:`Reader.read_object`.
"""

from __future__ import annotations

import struct
from typing import Tuple

from .constants import ASFError


def pack_u8(value: int) -> bytes:
    return struct.pack("<B", value)


def pack_u16(value: int) -> bytes:
    return struct.pack("<H", value)


def pack_u32(value: int) -> bytes:
    return struct.pack("<I", value)


def pack_u64(value: int) -> bytes:
    return struct.pack("<Q", value)


def pack_f64(value: float) -> bytes:
    return struct.pack("<d", value)


def pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ASFError("string too long for wire format")
    return pack_u16(len(raw)) + raw


def pack_blob(data: bytes) -> bytes:
    return pack_u32(len(data)) + data


def write_object(tag: bytes, payload: bytes) -> bytes:
    if len(tag) != 4:
        raise ASFError(f"object tag must be 4 bytes, got {tag!r}")
    return tag + pack_u32(len(payload)) + payload


class Reader:
    """Cursor over a byte buffer with checked reads."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def remaining(self) -> int:
        return len(self.data) - self.pos

    def _take(self, n: int) -> bytes:
        if self.remaining() < n:
            raise ASFError(
                f"truncated data: need {n} bytes at offset {self.pos}, "
                f"have {self.remaining()}"
            )
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def string(self) -> str:
        length = self.u16()
        return self._take(length).decode("utf-8")

    def blob(self) -> bytes:
        length = self.u32()
        return self._take(length)

    def read_object(self) -> Tuple[bytes, bytes]:
        """Read one ``tag + length + payload`` object."""
        tag = self._take(4)
        length = self.u32()
        return tag, self._take(length)

    def expect_object(self, tag: bytes) -> bytes:
        got, payload = self.read_object()
        if got != tag:
            raise ASFError(f"expected object {tag!r}, found {got!r}")
        return payload
