"""Wire-format constants of the ASF-like container.

Real ASF identifies objects with 16-byte GUIDs; this reproduction uses
4-byte ASCII tags (same mechanism, easier to debug in hex dumps). Sizes
and layout conventions are shared by :mod:`repro.asf.header` and
:mod:`repro.asf.packets`.
"""

from __future__ import annotations

# object tags (ASF "GUIDs")
TAG_HEADER = b"HDRO"
TAG_FILE_PROPERTIES = b"FPRP"
TAG_STREAM_PROPERTIES = b"SPRP"
TAG_METADATA = b"META"
TAG_SCRIPT_COMMANDS = b"SCMD"
TAG_DRM = b"DRM1"
TAG_DATA = b"DATA"
TAG_PACKET = b"PKT0"
TAG_INDEX = b"SIDX"

#: Default on-the-wire packet size in bytes (ASF default ballpark).
DEFAULT_PACKET_SIZE = 1_450

#: Stream number reserved for the script-command stream.
SCRIPT_STREAM_NUMBER = 127

#: Valid media stream numbers (ASF allows 1..127).
MIN_STREAM_NUMBER = 1
MAX_STREAM_NUMBER = 127

# stream type tags
STREAM_TYPE_AUDIO = "audio"
STREAM_TYPE_VIDEO = "video"
STREAM_TYPE_IMAGE = "image"
STREAM_TYPE_COMMAND = "command"

STREAM_TYPES = (
    STREAM_TYPE_AUDIO,
    STREAM_TYPE_VIDEO,
    STREAM_TYPE_IMAGE,
    STREAM_TYPE_COMMAND,
)

#: Header flag bits.
FLAG_BROADCAST = 0x01  # live stream: duration unknown up front
FLAG_SEEKABLE = 0x02  # index present
FLAG_DRM_PROTECTED = 0x04


class ASFError(Exception):
    """Malformed container data or misuse of the container API."""
