"""Web substrate: minimal HTTP over the simulated network."""

from .http import (
    HTTPClient,
    HTTPError,
    HTTPRequest,
    HTTPResponse,
    HTTPServer,
    VirtualNetwork,
    form_decode,
    form_encode,
)

__all__ = [
    "HTTPClient",
    "HTTPError",
    "HTTPRequest",
    "HTTPResponse",
    "HTTPServer",
    "VirtualNetwork",
    "form_decode",
    "form_encode",
]
