"""HTML page rendering — the visible half of the web publishing manager.

Figure 5 of the paper shows browser pages: the publishing form ("fill the
path in the form for publishing") and the replay page. These renderers
produce that UI as plain HTML strings served by the publisher's HTTP
routes, so the whole Fig. 5 interaction is inspectable: ``GET /publish``
returns the form, ``POST /publish`` processes it, ``GET /`` lists the
catalog with replay links.

No templating engine — f-strings with explicit escaping, which is all a
five-field form needs.
"""

from __future__ import annotations

import html
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def _escape(text: object) -> str:
    return html.escape(str(text), quote=True)


def _page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n"
        f"<html><head><title>{_escape(title)}</title>"
        "<style>body{font-family:sans-serif;margin:2em}"
        "label{display:block;margin:.5em 0}"
        "table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:.3em .8em}</style>"
        f"</head><body><h1>{_escape(title)}</h1>{body}</body></html>"
    )


def render_publish_form(
    profiles: Sequence[str], *, action: str = "/publish",
    error: Optional[str] = None,
) -> str:
    """The Fig. 5(a) form: video path, slide directory, point, profile."""
    options = "".join(
        f'<option value="{_escape(p)}">{_escape(p)}</option>' for p in profiles
    )
    error_html = (
        f'<p class="error" style="color:#a00">{_escape(error)}</p>' if error else ""
    )
    body = f"""{error_html}
<form method="POST" action="{_escape(action)}">
  <label>Video file path (MPEG4):
    <input name="video_path" size="40" placeholder="/videos/lecture.mpg"></label>
  <label>Directory of presented slides:
    <input name="slide_dir" size="40" placeholder="/slides/lecture/"></label>
  <label>Publishing point name:
    <input name="point" size="20" placeholder="lecture1"></label>
  <label>Bandwidth profile:
    <select name="profile">{options}</select></label>
  <label><input type="checkbox" name="protect" value="1"> DRM-protect</label>
  <button type="submit">Publish</button>
</form>"""
    return _page("Web Publishing Manager", body)


def render_catalog(
    entries: Iterable[Dict[str, object]], *, title: str = "Published Lectures"
) -> str:
    """The replay page: one row per published lecture with its URL."""
    rows = "".join(
        "<tr>"
        f"<td>{_escape(e.get('point', ''))}</td>"
        f"<td>{_escape(e.get('title', ''))}</td>"
        f"<td>{_escape(e.get('duration', ''))}s</td>"
        f"<td><a href=\"{_escape(e.get('url', ''))}\">replay</a></td>"
        "</tr>"
        for e in entries
    )
    body = (
        "<table><tr><th>point</th><th>title</th><th>duration</th>"
        f"<th>link</th></tr>{rows}</table>"
        '<p><a href="/publish">publish another lecture</a></p>'
    )
    return _page(title, body)


def render_publish_result(result: Dict[str, object]) -> str:
    """Confirmation page after a successful POST /publish."""
    rows = "".join(
        f"<tr><th>{_escape(key)}</th><td>{_escape(value)}</td></tr>"
        for key, value in result.items()
    )
    body = (
        f"<table>{rows}</table>"
        f"<p><a href=\"{_escape(result.get('url', '/'))}\">replay the "
        'representation</a> · <a href="/">catalog</a></p>'
    )
    return _page("Published", body)
