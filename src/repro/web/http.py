"""Minimal HTTP substrate over the simulated network.

The paper's system is *web-based*: the publishing manager is an HTML form,
and the media server is reached over "the server HTTP port and the URL for
Internet/LAN connections" (§2.5). This module provides just enough HTTP to
reproduce those workflows deterministically:

* :class:`VirtualNetwork` — named hosts with configurable duplex links;
* :class:`HTTPServer` — routes bound to ``(host, port)``;
* :class:`HTTPClient` — ``fetch()`` drives the simulator until the
  response arrives, so calling code reads sequentially.

Requests/responses ride :class:`~repro.net.transport.ReliableChannel`, so
link loss translates into retransmission latency exactly like TCP-borne
HTTP would.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlencode, urlparse

from ..net.engine import SimulationError, Simulator
from ..net.link import DuplexLink, Link
from ..net.transport import Message, ReliableChannel


class HTTPError(Exception):
    """Request failures (timeouts, unroutable hosts, bad URLs)."""


@dataclass
class HTTPRequest:
    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: Any = None
    query: Dict[str, str] = field(default_factory=dict)
    client_host: str = ""

    def wire_size(self) -> int:
        size = len(self.method) + len(self.path) + 32
        size += sum(len(k) + len(v) + 4 for k, v in self.headers.items())
        if isinstance(self.body, (bytes, bytearray)):
            size += len(self.body)
        elif isinstance(self.body, str):
            size += len(self.body.encode())
        elif self.body is not None:
            size += 256  # structured payloads: rough envelope
        return size


@dataclass
class HTTPResponse:
    status: int
    body: Any = None
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def wire_size(self) -> int:
        size = 64 + sum(len(k) + len(v) + 4 for k, v in self.headers.items())
        if isinstance(self.body, (bytes, bytearray)):
            size += len(self.body)
        elif isinstance(self.body, str):
            size += len(self.body.encode())
        elif self.body is not None:
            size += 256
        return size


Handler = Callable[[HTTPRequest], HTTPResponse]


class VirtualNetwork:
    """Named hosts, lazily created duplex links, and a port table."""

    def __init__(self, simulator: Optional[Simulator] = None) -> None:
        self.simulator = simulator or Simulator()
        self._hosts: set = set()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._default_link_params: Dict[str, Any] = dict(
            bandwidth=10_000_000.0, delay=0.01
        )
        self._ports: Dict[Tuple[str, int], "HTTPServer"] = {}
        self._seed = itertools.count(1000)

    def add_host(self, name: str) -> str:
        self._hosts.add(name)
        return name

    def set_default_link(self, **params: Any) -> None:
        self._default_link_params = params

    def connect(self, a: str, b: str, **params: Any) -> None:
        """Configure both directions of the a↔b path."""
        for src, dst in ((a, b), (b, a)):
            self._hosts.add(src)
            self._links[(src, dst)] = Link(
                self.simulator,
                seed=next(self._seed),
                name=f"{src}->{dst}",
                **params,
            )

    def link(self, src: str, dst: str) -> Link:
        if src == dst:
            raise SimulationError("no loopback links; use distinct hosts")
        key = (src, dst)
        if key not in self._links:
            self._hosts.update(key)
            self._links[key] = Link(
                self.simulator,
                seed=next(self._seed),
                name=f"{src}->{dst}",
                **self._default_link_params,
            )
        return self._links[key]

    def bind(self, host: str, port: int, server: "HTTPServer") -> None:
        key = (host, port)
        if key in self._ports:
            raise HTTPError(f"port {port} on {host!r} already bound")
        self._ports[key] = server

    def lookup(self, host: str, port: int) -> "HTTPServer":
        try:
            return self._ports[(host, port)]
        except KeyError:
            raise HTTPError(f"connection refused: {host}:{port}") from None


class HTTPServer:
    """Routes + handler dispatch at one (host, port)."""

    def __init__(self, network: VirtualNetwork, host: str, port: int = 80) -> None:
        self.network = network
        self.host = network.add_host(host)
        self.port = port
        self._routes: List[Tuple[str, str, Handler]] = []
        network.bind(host, port, self)
        self.requests_served = 0

    def route(self, method: str, prefix: str, handler: Handler) -> None:
        """Register a handler for ``method`` + paths starting with ``prefix``.

        Longest-prefix match wins; method must match exactly.
        """
        self._routes.append((method.upper(), prefix, handler))
        self._routes.sort(key=lambda r: -len(r[1]))

    def handle(self, request: HTTPRequest) -> HTTPResponse:
        self.requests_served += 1
        for method, prefix, handler in self._routes:
            if request.method.upper() == method and request.path.startswith(prefix):
                try:
                    return handler(request)
                except HTTPError as exc:
                    return HTTPResponse(400, body=str(exc))
        return HTTPResponse(404, body=f"no route for {request.method} {request.path}")


class HTTPClient:
    """Issues requests from one host; ``fetch`` is simulation-blocking."""

    def __init__(self, network: VirtualNetwork, host: str, *, timeout: float = 10.0) -> None:
        self.network = network
        self.host = network.add_host(host)
        self.timeout = timeout

    def fetch(
        self,
        method: str,
        url: str,
        *,
        body: Any = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> HTTPResponse:
        """Send a request and run the simulator until the response lands."""
        parsed = urlparse(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise HTTPError(f"bad URL {url!r}")
        server_host = parsed.hostname
        port = parsed.port or 80
        server = self.network.lookup(server_host, port)
        request = HTTPRequest(
            method=method,
            path=parsed.path or "/",
            headers=dict(headers or {}),
            body=body,
            query=dict(parse_qsl(parsed.query)),
            client_host=self.host,
        )

        simulator = self.network.simulator
        result: List[HTTPResponse] = []

        # response channel: server -> client
        def deliver_response(message: Message) -> None:
            result.append(message.payload)

        response_channel = ReliableChannel(
            simulator,
            self.network.link(server_host, self.host),
            self.network.link(self.host, server_host),
            deliver_response,
        )

        def handle_request(message: Message) -> None:
            response = server.handle(message.payload)
            response_channel.send(Message(response, response.wire_size()))

        request_channel = ReliableChannel(
            simulator,
            self.network.link(self.host, server_host),
            self.network.link(server_host, self.host),
            handle_request,
        )
        request_channel.send(Message(request, request.wire_size()))

        deadline = simulator.now + self.timeout
        while not result and simulator.now < deadline:
            nxt = simulator.peek_time()
            if nxt is None or nxt > deadline:
                break
            simulator.step()
        if not result:
            raise HTTPError(f"timeout after {self.timeout}s: {method} {url}")
        return result[0]

    def get(self, url: str, **kwargs: Any) -> HTTPResponse:
        return self.fetch("GET", url, **kwargs)

    def post(self, url: str, **kwargs: Any) -> HTTPResponse:
        return self.fetch("POST", url, **kwargs)


def form_encode(fields: Dict[str, str]) -> str:
    """application/x-www-form-urlencoded body (the Fig. 5 form)."""
    return urlencode(fields)


def form_decode(body: str) -> Dict[str, str]:
    return dict(parse_qsl(body))
