"""Cross-layer invariant auditing over a finished trace.

:class:`TraceChecker` replays the records of one
:class:`~repro.obs.trace.Tracer` run (or a list of dicts loaded from
JSONL) in ``seq`` order and asserts the lifecycle invariants that the
simulator cannot enforce locally:

* **session lifecycle** — every ``session.open`` is matched by exactly
  one ``session.close``; no double-open, no close of an unknown session;
* **QoS hygiene** — every ``qos.reserve`` is matched by a
  ``qos.release``; nothing released twice or never released;
* **no traffic after close** — no ``packet.train`` or ``repair.sent``
  is recorded for a session after its ``session.close`` (a train record
  may name one ``session`` or a whole pacing group's ``sessions``);
* **floor mutual exclusion** — at most one holder at any point of the
  ``floor.grant`` / ``floor.release`` / ``floor.drop`` event stream, and
  grants only ever go to a free floor;
* **render monotonicity** — per (client, stream), ``render.unit`` media
  timestamps never decrease, except across an explicit
  ``playback.seek`` which rebases the playhead;
* **drain discipline** — every session named by a ``drain.begin`` gets
  exactly one outcome (``session.handoff`` to an already-open successor
  session, or ``session.handoff_fallback``) before that edge's
  ``drain.end``; no outcome arrives outside an active drain, and every
  drained session is closed by the time the drain ends. Together with
  QoS hygiene this proves a warm hand-off never double-reserves: the
  old and new sessions hold distinct reservations, each released once;
* **no fill loops** — no ``edge.fill_request`` carries a path visiting
  the same relay twice, and hop budgets never go negative: the relay
  tree's fill cascades are provably acyclic and finite;
* **backbone budget honesty** — every ``backbone.reserve`` is matched
  by exactly one ``backbone.release``, and the independently re-summed
  per-link load never exceeds the link's capacity at any point in the
  trace (the reserve records' own running totals are cross-checked, not
  trusted);
* **single upstream live feed per region** — at most one *active*
  region-entering ``live.feed`` per (region, point) at any time — the
  multicast tree property that makes origin live egress O(regions) —
  and every feed is ended by ``live.feed_end`` before the trace ends.
  A region that *fell flat* during parent failover (``region.failover``
  with ``mode="flat"``) is exempted from that point on: origin-only
  operation legitimately runs one origin attach per leaf;
* **failover discipline** — every ``region.failover`` is matched by a
  ``region.failover_end`` for the same region, at which point **no live
  feed survives its parent's crash unmigrated** (no active feed's
  upstream is the dead host) and **no backbone reservation outlives its
  holder** (no active reservation on a link touching the dead host);
* **point lifecycle** — ``point.published`` / ``point.retired`` (traced
  at the origin only) pair up: no double-publish without a retire in
  between, no retire of an unpublished point;
* **prefetch honesty** — every ``prefetch`` span (opened by the warming
  executor per planned item) closes exactly once under a declared
  ``prefetch.plan`` run; a successful warm's landed ``cache_key`` must
  equal the plan's ``expect_key`` (warmed bytes are byte-identical to
  the origin's run — the same fingerprint the fill path verified); the
  run's accumulated warmed bytes never exceed its declared
  ``budget_bytes``; and nothing prefetches a point after its
  ``point.retired`` (no warming torn-down content).

Violations accumulate (so one audit reports *all* problems) and
:meth:`TraceChecker.assert_ok` raises :class:`TraceViolation` with every
message attached.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple


class TraceViolation(AssertionError):
    """One or more trace invariants failed; ``violations`` lists them."""

    def __init__(self, violations: List[str]) -> None:
        self.violations = list(violations)
        lines = "\n  - ".join(self.violations)
        super().__init__(
            f"{len(self.violations)} trace invariant violation(s):\n  - {lines}"
        )


class TraceChecker:
    """Replays trace records and audits cross-layer invariants."""

    def __init__(self, records: Iterable[Dict[str, Any]]) -> None:
        self.records = sorted(records, key=lambda r: r["seq"])
        self.violations: List[str] = []
        # summary facts exposed for tests / benches
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.reservations_made = 0
        self.reservations_released = 0
        self.trains_seen = 0
        self.renders_seen = 0
        self.handoffs_seen = 0
        self.fallbacks_seen = 0
        self.fill_requests_seen = 0
        self.backbone_reservations = 0
        self.backbone_releases = 0
        self.live_feeds_seen = 0
        self.failovers_seen = 0
        self.feeds_migrated = 0
        self.points_published = 0
        self.points_retired = 0
        self.prefetch_spans = 0
        self.prefetch_bytes = 0
        self._checked = False

    # ------------------------------------------------------------------

    def check(self) -> List[str]:
        """Run the audit once; returns (and stores) violation messages."""
        if self._checked:
            return self.violations
        self._checked = True

        open_sessions: Dict[str, float] = {}
        closed_sessions: Dict[str, float] = {}
        live_reservations: Dict[Any, Tuple[float, str]] = {}
        floor_holder: Optional[str] = None
        # (client, stream) -> last rendered media timestamp (ms)
        render_frontier: Dict[Tuple[str, Any], int] = {}
        # edge -> {drained session -> outcome or None}; populated by
        # drain.begin, settled by session.handoff / session.handoff_fallback,
        # audited and popped by drain.end
        active_drains: Dict[str, Dict[Any, Optional[str]]] = {}
        # backbone rid -> (t, link, bandwidth); load re-summed per link
        live_backbone: Dict[Any, Tuple[float, str, float]] = {}
        backbone_load: Dict[str, float] = {}
        # live feed id -> (t, region, point, enters_region, upstream)
        active_feeds: Dict[Any, Tuple[float, Any, Any, bool, Any]] = {}
        # (region, point) -> feed id currently entering that region
        region_entries: Dict[Tuple[Any, Any], Any] = {}
        # region -> (t, dead host) for a failover still in progress
        active_failovers: Dict[Any, Tuple[float, Any]] = {}
        # regions that fell flat (origin-only): exempt from the
        # one-entering-feed invariant from that point on
        flat_regions: set = set()
        # authoritative (origin) point lifecycle
        live_points: set = set()
        retired_points: set = set()
        # prefetch run id -> (declared budget bytes or None, warmed bytes)
        prefetch_runs: Dict[Any, List[Any]] = {}
        # open prefetch span id -> (t, run, edge, point, expect_key)
        open_prefetches: Dict[Any, Tuple[float, Any, Any, Any, str]] = {}

        for record in self.records:
            name = record["name"]
            attrs = record.get("attrs") or {}
            t = record.get("t", 0.0)

            if name == "session.open":
                sid = attrs.get("session")
                self.sessions_opened += 1
                if sid in open_sessions:
                    self._fail(f"session {sid!r} opened twice (t={t:.3f})")
                open_sessions[sid] = t
                closed_sessions.pop(sid, None)

            elif name == "session.close":
                sid = attrs.get("session")
                self.sessions_closed += 1
                if sid not in open_sessions:
                    self._fail(
                        f"close of unknown/already-closed session {sid!r} "
                        f"(t={t:.3f})"
                    )
                else:
                    open_sessions.pop(sid)
                    closed_sessions[sid] = t

            elif name in ("packet.train", "repair.sent"):
                # shared-pacing fan-out records one train for the whole
                # group (attrs["sessions"]); solo paths record per session
                sids = attrs.get("sessions")
                if sids is None:
                    sids = (attrs.get("session"),)
                self.trains_seen += 1
                for sid in sids:
                    if sid in closed_sessions:
                        self._fail(
                            f"{name} on session {sid!r} at t={t:.3f} after "
                            f"its close at t={closed_sessions[sid]:.3f}"
                        )
                    elif sid not in open_sessions:
                        self._fail(
                            f"{name} on never-opened session {sid!r} "
                            f"(t={t:.3f})"
                        )

            elif name == "qos.reserve":
                rid = attrs.get("rid")
                self.reservations_made += 1
                if rid in live_reservations:
                    self._fail(f"reservation {rid!r} reserved twice (t={t:.3f})")
                live_reservations[rid] = (t, attrs.get("owner", ""))

            elif name == "qos.release":
                rid = attrs.get("rid")
                self.reservations_released += 1
                if rid not in live_reservations:
                    self._fail(
                        f"release of unknown/already-released reservation "
                        f"{rid!r} (t={t:.3f})"
                    )
                else:
                    live_reservations.pop(rid)

            elif name == "floor.grant":
                user = attrs.get("user")
                if floor_holder is not None:
                    self._fail(
                        f"floor granted to {user!r} while {floor_holder!r} "
                        f"still holds it (t={t:.3f})"
                    )
                floor_holder = user

            elif name in ("floor.release", "floor.drop"):
                user = attrs.get("user")
                if floor_holder != user:
                    self._fail(
                        f"{name} by {user!r} but holder is {floor_holder!r} "
                        f"(t={t:.3f})"
                    )
                floor_holder = None

            elif name == "render.unit":
                client = attrs.get("client", "")
                stream = attrs.get("stream")
                ts = attrs.get("ts", 0)
                self.renders_seen += 1
                key = (client, stream)
                last = render_frontier.get(key)
                if last is not None and ts < last:
                    self._fail(
                        f"render timestamp regressed on client {client!r} "
                        f"stream {stream!r}: {ts} ms after {last} ms "
                        f"(t={t:.3f}) with no seek"
                    )
                render_frontier[key] = ts

            elif name == "drain.begin":
                edge = attrs.get("edge")
                if edge in active_drains:
                    self._fail(
                        f"drain.begin on edge {edge!r} while an earlier "
                        f"drain is still active (t={t:.3f})"
                    )
                else:
                    active_drains[edge] = {
                        sid: None for sid in attrs.get("sessions", ())
                    }

            elif name in ("session.handoff", "session.handoff_fallback"):
                edge = attrs.get("edge")
                sid = attrs.get("session")
                outcome = "handoff" if name == "session.handoff" else "fallback"
                if outcome == "handoff":
                    self.handoffs_seen += 1
                else:
                    self.fallbacks_seen += 1
                pending = active_drains.get(edge)
                if pending is None or sid not in pending:
                    self._fail(
                        f"{name} for session {sid!r} outside an active "
                        f"drain of edge {edge!r} (t={t:.3f})"
                    )
                elif pending[sid] is not None:
                    self._fail(
                        f"session {sid!r} got a second drain outcome "
                        f"({pending[sid]} then {outcome}) on edge {edge!r} "
                        f"(t={t:.3f})"
                    )
                else:
                    pending[sid] = outcome
                if outcome == "handoff":
                    to = attrs.get("to")
                    if to not in open_sessions:
                        self._fail(
                            f"handoff of session {sid!r} targets session "
                            f"{to!r} which is not open (t={t:.3f})"
                        )

            elif name == "drain.end":
                edge = attrs.get("edge")
                pending = active_drains.pop(edge, None)
                if pending is None:
                    self._fail(
                        f"drain.end on edge {edge!r} without a matching "
                        f"drain.begin (t={t:.3f})"
                    )
                else:
                    for sid, outcome in sorted(pending.items(), key=str):
                        if outcome is None:
                            self._fail(
                                f"drain of edge {edge!r} ended with no "
                                f"outcome for session {sid!r} (t={t:.3f})"
                            )
                        if sid not in closed_sessions:
                            self._fail(
                                f"drain of edge {edge!r} ended but session "
                                f"{sid!r} is not closed (t={t:.3f})"
                            )

            elif name == "edge.fill_request":
                self.fill_requests_seen += 1
                path = attrs.get("path") or []
                if len(set(path)) != len(path):
                    self._fail(
                        f"fill of {attrs.get('point')!r} by "
                        f"{attrs.get('edge')!r} carries a looping path "
                        f"{'>'.join(str(p) for p in path)} (t={t:.3f})"
                    )
                if attrs.get("hops", 0) < 0:
                    self._fail(
                        f"fill of {attrs.get('point')!r} by "
                        f"{attrs.get('edge')!r} has negative hop budget "
                        f"{attrs.get('hops')} (t={t:.3f})"
                    )

            elif name == "backbone.reserve":
                rid = attrs.get("rid")
                link = attrs.get("link", "")
                bandwidth = float(attrs.get("bandwidth", 0.0))
                capacity = float(attrs.get("capacity", 0.0))
                self.backbone_reservations += 1
                if rid in live_backbone:
                    self._fail(
                        f"backbone reservation {rid!r} reserved twice "
                        f"(t={t:.3f})"
                    )
                else:
                    live_backbone[rid] = (t, link, bandwidth)
                load = backbone_load.get(link, 0.0) + bandwidth
                backbone_load[link] = load
                if load > capacity + 1e-9:
                    self._fail(
                        f"backbone link {link} over-reserved: {load:g} of "
                        f"{capacity:g} b/s after {rid!r} (t={t:.3f})"
                    )

            elif name == "backbone.release":
                rid = attrs.get("rid")
                self.backbone_releases += 1
                if rid not in live_backbone:
                    self._fail(
                        f"release of unknown/already-released backbone "
                        f"reservation {rid!r} (t={t:.3f})"
                    )
                else:
                    _, link, bandwidth = live_backbone.pop(rid)
                    backbone_load[link] = backbone_load.get(link, 0.0) - bandwidth

            elif name == "live.feed":
                feed = attrs.get("feed")
                region = attrs.get("region")
                point = attrs.get("point")
                enters = bool(attrs.get("enters_region"))
                self.live_feeds_seen += 1
                if attrs.get("migrated"):
                    self.feeds_migrated += 1
                if feed in active_feeds:
                    self._fail(
                        f"live feed {feed!r} started twice (t={t:.3f})"
                    )
                active_feeds[feed] = (
                    t, region, point, enters, attrs.get("upstream")
                )
                # the invariant is scoped to real regions: a flat tier
                # (region None) legitimately runs N origin attaches, and
                # a region fallen flat by failover joins that regime
                if enters and region is not None and region not in flat_regions:
                    key = (region, point)
                    if key in region_entries:
                        self._fail(
                            f"second upstream live feed {feed!r} enters "
                            f"region {region!r} for point {point!r} while "
                            f"{region_entries[key]!r} is active (t={t:.3f})"
                        )
                    else:
                        region_entries[key] = feed

            elif name == "live.feed_end":
                feed = attrs.get("feed")
                entry = active_feeds.pop(feed, None)
                if entry is None:
                    self._fail(
                        f"live.feed_end for unknown/already-ended feed "
                        f"{feed!r} (t={t:.3f})"
                    )
                else:
                    _, region, point, enters, _upstream = entry
                    if enters and region is not None:
                        if region_entries.get((region, point)) == feed:
                            del region_entries[(region, point)]

            elif name == "region.failover":
                region = attrs.get("region")
                self.failovers_seen += 1
                if region in active_failovers:
                    self._fail(
                        f"region.failover for region {region!r} while an "
                        f"earlier failover is still active (t={t:.3f})"
                    )
                else:
                    active_failovers[region] = (t, attrs.get("dead_host"))
                if attrs.get("mode") == "flat":
                    flat_regions.add(region)
                # either way the old regime's entry slot is gone: the
                # dead parent ended its feed at crash time, and a merely
                # *partitioned* parent is demoted with its entry revoked
                # (the successor re-enters the region under a new claim)
                region_entries = {
                    key: feed for key, feed in region_entries.items()
                    if key[0] != region
                }

            elif name == "region.failover_end":
                region = attrs.get("region")
                dead_host = attrs.get("dead_host")
                if active_failovers.pop(region, None) is None:
                    self._fail(
                        f"region.failover_end for region {region!r} without "
                        f"a matching region.failover (t={t:.3f})"
                    )
                    continue
                # no feed survives its parent's crash unmigrated: every
                # active feed fed by the dead host must have ended (and
                # usually restarted against the new upstream) by now
                for feed, (ft, fregion, fpoint, _e, fupstream) in sorted(
                    active_feeds.items(), key=str
                ):
                    if fupstream == dead_host:
                        self._fail(
                            f"live feed {feed!r} (region {fregion!r}, point "
                            f"{fpoint!r}, started t={ft:.3f}) survived the "
                            f"crash of its upstream {dead_host!r} unmigrated "
                            f"(t={t:.3f})"
                        )
                # no backbone reservation outlives its holder: links
                # touching the dead host must be fully settled
                for rid, (rt, link, bandwidth) in sorted(
                    live_backbone.items(), key=str
                ):
                    if dead_host in str(link).split("<->"):
                        self._fail(
                            f"backbone reservation {rid!r} on {link} "
                            f"({bandwidth:g} b/s, made t={rt:.3f}) outlived "
                            f"crashed host {dead_host!r} (t={t:.3f})"
                        )

            elif name == "playback.seek":
                # a seek rebases the playhead for every stream of that client
                client = attrs.get("client", "")
                for key in list(render_frontier):
                    if key[0] == client:
                        del render_frontier[key]

            elif name == "point.published":
                point = attrs.get("point")
                self.points_published += 1
                if point in live_points:
                    self._fail(
                        f"point {point!r} published twice with no retire "
                        f"in between (t={t:.3f})"
                    )
                live_points.add(point)
                retired_points.discard(point)

            elif name == "point.retired":
                point = attrs.get("point")
                self.points_retired += 1
                if point not in live_points:
                    self._fail(
                        f"retire of unknown/already-retired point "
                        f"{point!r} (t={t:.3f})"
                    )
                live_points.discard(point)
                retired_points.add(point)

            elif name == "prefetch.plan":
                run = attrs.get("run")
                if run in prefetch_runs:
                    self._fail(
                        f"prefetch.plan declares run {run!r} twice "
                        f"(t={t:.3f})"
                    )
                budget = attrs.get("budget_bytes")
                prefetch_runs[run] = [
                    float(budget) if budget is not None else None, 0
                ]

            elif name == "prefetch":
                if record.get("kind") == "begin":
                    span = record.get("span")
                    run = attrs.get("run")
                    point = attrs.get("point")
                    self.prefetch_spans += 1
                    if run not in prefetch_runs:
                        self._fail(
                            f"prefetch of {point!r} under undeclared run "
                            f"{run!r} (t={t:.3f})"
                        )
                    if point in retired_points:
                        self._fail(
                            f"prefetch of {point!r} by "
                            f"{attrs.get('edge')!r} after the point was "
                            f"retired (t={t:.3f})"
                        )
                    open_prefetches[span] = (
                        t, run, attrs.get("edge"), point,
                        str(attrs.get("expect_key") or ""),
                    )
                elif record.get("kind") == "end":
                    span = record.get("span")
                    entry = open_prefetches.pop(span, None)
                    if entry is None:
                        self._fail(
                            f"prefetch span {span!r} ended without a "
                            f"matching begin (t={t:.3f})"
                        )
                        continue
                    _bt, run, edge, point, expect_key = entry
                    warmed = int(attrs.get("bytes", 0) or 0)
                    landed = str(attrs.get("cache_key") or "")
                    ok = bool(attrs.get("ok"))
                    if ok and expect_key and landed != expect_key:
                        self._fail(
                            f"prefetch of {point!r} to {edge!r} landed "
                            f"cache key {landed!r} but the catalog "
                            f"expected {expect_key!r} (t={t:.3f}) — "
                            f"warmed bytes are not the origin's"
                        )
                    state = prefetch_runs.get(run)
                    if state is not None:
                        self.prefetch_bytes += warmed
                        state[1] += warmed
                        if state[0] is not None and state[1] > state[0] + 1e-9:
                            self._fail(
                                f"prefetch run {run!r} warmed {state[1]:g} "
                                f"bytes, exceeding its declared budget of "
                                f"{state[0]:g} (t={t:.3f})"
                            )

        for edge in sorted(active_drains, key=str):
            self._fail(f"drain of edge {edge!r} never ended")
        for sid, opened_at in sorted(open_sessions.items(), key=str):
            self._fail(
                f"session {sid!r} opened at t={opened_at:.3f} never closed"
            )
        for rid, (made_at, owner) in sorted(
            live_reservations.items(), key=str
        ):
            self._fail(
                f"QoS reservation {rid!r} (owner {owner!r}) made at "
                f"t={made_at:.3f} never released"
            )
        for rid, (made_at, link, bandwidth) in sorted(
            live_backbone.items(), key=str
        ):
            self._fail(
                f"backbone reservation {rid!r} on {link} ({bandwidth:g} "
                f"b/s) made at t={made_at:.3f} never released"
            )
        for feed, (started_at, region, point, _e, _u) in sorted(
            active_feeds.items(), key=str
        ):
            self._fail(
                f"live feed {feed!r} (region {region!r}, point {point!r}) "
                f"started at t={started_at:.3f} never ended"
            )
        for region, (started_at, dead_host) in sorted(
            active_failovers.items(), key=str
        ):
            self._fail(
                f"failover of region {region!r} (dead host {dead_host!r}) "
                f"started at t={started_at:.3f} never ended"
            )
        for span, (started_at, run, edge, point, _key) in sorted(
            open_prefetches.items(), key=str
        ):
            self._fail(
                f"prefetch of {point!r} to {edge!r} (run {run!r}) begun "
                f"at t={started_at:.3f} never ended"
            )
        return self.violations

    # ------------------------------------------------------------------

    def assert_ok(self) -> "TraceChecker":
        """Audit and raise :class:`TraceViolation` on any failure."""
        if self.check():
            raise TraceViolation(self.violations)
        return self

    def summary(self) -> Dict[str, int]:
        self.check()
        return {
            "records": len(self.records),
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "reservations_made": self.reservations_made,
            "reservations_released": self.reservations_released,
            "trains_seen": self.trains_seen,
            "renders_seen": self.renders_seen,
            "handoffs_seen": self.handoffs_seen,
            "fallbacks_seen": self.fallbacks_seen,
            "fill_requests_seen": self.fill_requests_seen,
            "backbone_reservations": self.backbone_reservations,
            "backbone_releases": self.backbone_releases,
            "live_feeds_seen": self.live_feeds_seen,
            "failovers_seen": self.failovers_seen,
            "feeds_migrated": self.feeds_migrated,
            "points_published": self.points_published,
            "points_retired": self.points_retired,
            "prefetch_spans": self.prefetch_spans,
            "prefetch_bytes": self.prefetch_bytes,
            "violations": len(self.violations),
        }

    def _fail(self, message: str) -> None:
        self.violations.append(message)
