"""Per-session QoE extraction and cross-session aggregation.

:class:`SessionQoE` condenses one player's
:class:`~repro.streaming.client.PlaybackReport` into the quality-of-
experience facts the paper's campus deployment would have monitored:
startup delay, rebuffering, the downshift timeline, delivery ratio
against the clean (fault-free) byte count, and the NAK/repair totals of
the recovery layer. :class:`QoEAggregator` folds any number of sessions
into :class:`~repro.metrics.histogram.Histogram`-backed summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..metrics.histogram import Histogram


@dataclass
class SessionQoE:
    """QoE facts for one playback session."""

    client: str = ""
    point: str = ""
    #: modeled viewers behind this session (a cohort delegate's size);
    #: aggregation weights every distribution and total by it
    multiplicity: int = 1
    startup_delay: float = 0.0
    rebuffer_count: int = 0
    rebuffer_time: float = 0.0
    duration_watched: float = 0.0
    media_bytes: int = 0
    #: media bytes a fault-free run would have delivered (0 = unknown)
    clean_media_bytes: int = 0
    #: (position_seconds, new_video_stream) per downshift, in order
    downshifts: List[Tuple[float, Optional[int]]] = field(default_factory=list)
    naks_sent: int = 0
    repairs_received: int = 0

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of the clean byte count (1.0 if unknown)."""
        if self.clean_media_bytes <= 0:
            return 1.0
        return self.media_bytes / self.clean_media_bytes

    @classmethod
    def from_report(
        cls,
        report: Any,
        *,
        clean_media_bytes: int = 0,
        client: str = "",
        multiplicity: int = 1,
    ) -> "SessionQoE":
        """Build from a :class:`PlaybackReport` (duck-typed)."""
        recovery = getattr(report, "recovery", {}) or {}
        return cls(
            client=client,
            point=getattr(report, "point", ""),
            multiplicity=multiplicity,
            startup_delay=report.startup_latency,
            rebuffer_count=report.rebuffer_count,
            rebuffer_time=report.rebuffer_time,
            duration_watched=report.duration_watched,
            media_bytes=report.media_bytes,
            clean_media_bytes=clean_media_bytes,
            downshifts=list(getattr(report, "downshifts", ())),
            naks_sent=recovery.get("naks_sent", 0),
            repairs_received=recovery.get("repairs_received", 0),
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "client": self.client,
            "point": self.point,
            "multiplicity": self.multiplicity,
            "startup_delay": self.startup_delay,
            "rebuffer_count": self.rebuffer_count,
            "rebuffer_time": self.rebuffer_time,
            "duration_watched": self.duration_watched,
            "media_bytes": self.media_bytes,
            "clean_media_bytes": self.clean_media_bytes,
            "delivery_ratio": self.delivery_ratio,
            "downshifts": [list(d) for d in self.downshifts],
            "naks_sent": self.naks_sent,
            "repairs_received": self.repairs_received,
        }


class QoEAggregator:
    """Folds per-session QoE into distribution summaries."""

    def __init__(self) -> None:
        self.sessions: List[SessionQoE] = []
        self._weights: List[int] = []
        self.startup = Histogram("startup_delay")
        self.rebuffer_time = Histogram("rebuffer_time")
        self.delivery = Histogram("delivery_ratio")

    def add(self, qoe: SessionQoE, *, weight: Optional[int] = None) -> None:
        """Fold one session in, weighted by its modeled viewer count.

        ``weight`` defaults to ``qoe.multiplicity`` — a cohort delegate's
        single measurement lands in every distribution once per modeled
        viewer, so percentiles over a mixed real/cohort population are
        exactly those of the equivalent all-real population.
        """
        w = qoe.multiplicity if weight is None else weight
        if w < 1:
            raise ValueError(f"weight must be a positive integer, got {w}")
        self.sessions.append(qoe)
        self._weights.append(w)
        self.startup.record(qoe.startup_delay, w)
        self.rebuffer_time.record(qoe.rebuffer_time, w)
        self.delivery.record(qoe.delivery_ratio, w)

    def __len__(self) -> int:
        return len(self.sessions)

    @property
    def viewers(self) -> int:
        """Modeled viewers folded in (Σ weights); ≥ ``len(self)``."""
        return sum(self._weights)

    def summary(self) -> Dict[str, Any]:
        weighted = zip(self.sessions, self._weights)
        totals = {
            "total_rebuffers": 0,
            "total_downshifts": 0,
            "total_naks_sent": 0,
            "total_repairs_received": 0,
        }
        for q, w in weighted:
            totals["total_rebuffers"] += q.rebuffer_count * w
            totals["total_downshifts"] += len(q.downshifts) * w
            totals["total_naks_sent"] += q.naks_sent * w
            totals["total_repairs_received"] += q.repairs_received * w
        out = {
            "sessions": len(self.sessions),
            "viewers": self.viewers,
            "startup_delay": self.startup.summary(),
            "rebuffer_time": self.rebuffer_time.summary(),
            "delivery_ratio": self.delivery.summary(),
        }
        out.update(totals)
        return out
