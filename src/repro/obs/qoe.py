"""Per-session QoE extraction and cross-session aggregation.

:class:`SessionQoE` condenses one player's
:class:`~repro.streaming.client.PlaybackReport` into the quality-of-
experience facts the paper's campus deployment would have monitored:
startup delay, rebuffering, the downshift timeline, delivery ratio
against the clean (fault-free) byte count, and the NAK/repair totals of
the recovery layer. :class:`QoEAggregator` folds any number of sessions
into :class:`~repro.metrics.histogram.Histogram`-backed summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..metrics.histogram import Histogram


@dataclass
class SessionQoE:
    """QoE facts for one playback session."""

    client: str = ""
    point: str = ""
    startup_delay: float = 0.0
    rebuffer_count: int = 0
    rebuffer_time: float = 0.0
    duration_watched: float = 0.0
    media_bytes: int = 0
    #: media bytes a fault-free run would have delivered (0 = unknown)
    clean_media_bytes: int = 0
    #: (position_seconds, new_video_stream) per downshift, in order
    downshifts: List[Tuple[float, Optional[int]]] = field(default_factory=list)
    naks_sent: int = 0
    repairs_received: int = 0

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of the clean byte count (1.0 if unknown)."""
        if self.clean_media_bytes <= 0:
            return 1.0
        return self.media_bytes / self.clean_media_bytes

    @classmethod
    def from_report(
        cls,
        report: Any,
        *,
        clean_media_bytes: int = 0,
        client: str = "",
    ) -> "SessionQoE":
        """Build from a :class:`PlaybackReport` (duck-typed)."""
        recovery = getattr(report, "recovery", {}) or {}
        return cls(
            client=client,
            point=getattr(report, "point", ""),
            startup_delay=report.startup_latency,
            rebuffer_count=report.rebuffer_count,
            rebuffer_time=report.rebuffer_time,
            duration_watched=report.duration_watched,
            media_bytes=report.media_bytes,
            clean_media_bytes=clean_media_bytes,
            downshifts=list(getattr(report, "downshifts", ())),
            naks_sent=recovery.get("naks_sent", 0),
            repairs_received=recovery.get("repairs_received", 0),
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "client": self.client,
            "point": self.point,
            "startup_delay": self.startup_delay,
            "rebuffer_count": self.rebuffer_count,
            "rebuffer_time": self.rebuffer_time,
            "duration_watched": self.duration_watched,
            "media_bytes": self.media_bytes,
            "clean_media_bytes": self.clean_media_bytes,
            "delivery_ratio": self.delivery_ratio,
            "downshifts": [list(d) for d in self.downshifts],
            "naks_sent": self.naks_sent,
            "repairs_received": self.repairs_received,
        }


class QoEAggregator:
    """Folds per-session QoE into distribution summaries."""

    def __init__(self) -> None:
        self.sessions: List[SessionQoE] = []
        self.startup = Histogram("startup_delay")
        self.rebuffer_time = Histogram("rebuffer_time")
        self.delivery = Histogram("delivery_ratio")

    def add(self, qoe: SessionQoE) -> None:
        self.sessions.append(qoe)
        self.startup.record(qoe.startup_delay)
        self.rebuffer_time.record(qoe.rebuffer_time)
        self.delivery.record(qoe.delivery_ratio)

    def __len__(self) -> int:
        return len(self.sessions)

    def summary(self) -> Dict[str, Any]:
        return {
            "sessions": len(self.sessions),
            "startup_delay": self.startup.summary(),
            "rebuffer_time": self.rebuffer_time.summary(),
            "delivery_ratio": self.delivery.summary(),
            "total_rebuffers": sum(q.rebuffer_count for q in self.sessions),
            "total_downshifts": sum(len(q.downshifts) for q in self.sessions),
            "total_naks_sent": sum(q.naks_sent for q in self.sessions),
            "total_repairs_received": sum(
                q.repairs_received for q in self.sessions
            ),
        }
