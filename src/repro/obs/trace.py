"""Structured tracing for the publish → serve → playback pipeline.

One :class:`Tracer` collects timestamped span/event records from every
layer that was handed it: the encode farm and publisher (job batches),
the media server (session lifecycle, packet trains, repairs), the QoS
manager (reservations), the fault injector (scripted faults), links
(drops), and the player (startup, renders, rebuffers, reconnects).

Records are plain JSON-serializable dicts, strictly ordered by a
monotonically increasing ``seq`` — the *execution* order, which on the
deterministic simulator is itself deterministic. ``t`` is the bound
clock's time (the simulator's, usually); components that run outside the
simulator (the encode farm during publish) record ``t=0.0`` and rely on
``seq`` ordering. :class:`~repro.obs.checker.TraceChecker` replays a
finished trace and asserts cross-layer invariants.

Every hook in the codebase is guarded by ``if tracer is not None`` — a
run without a tracer allocates nothing and branches once per would-be
record.
"""

from __future__ import annotations

import itertools
import json
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional


class TraceError(Exception):
    """Tracer misuse (unknown span, unbound clock expectations...)."""


class Tracer:
    """An append-only stream of span/event records with one clock.

    ``clock`` is anything exposing a float ``now`` attribute (a
    :class:`~repro.net.engine.Simulator`) or a zero-argument callable
    returning seconds; ``None`` stamps every record ``t=0.0`` (ordering
    still comes from ``seq``). Use :meth:`bind_clock` to attach the
    simulator once the network exists — records made before binding keep
    their original timestamps.
    """

    def __init__(self, name: str = "trace", clock: Any = None) -> None:
        self.name = name
        self.records: List[Dict[str, Any]] = []
        self._span_ids = itertools.count(1)
        self._seq = itertools.count(1)
        self._open_spans: Dict[int, str] = {}
        self.bind_clock(clock)

    # ------------------------------------------------------------------

    def bind_clock(self, clock: Any) -> None:
        """Attach the time source for subsequent records."""
        if clock is None:
            self._now: Callable[[], float] = lambda: 0.0
        elif hasattr(clock, "now"):
            self._now = lambda: float(clock.now)
        elif callable(clock):
            self._now = lambda: float(clock())
        else:
            raise TraceError(
                f"clock must expose .now or be callable, got {clock!r}"
            )

    # ------------------------------------------------------------------

    def event(self, name: str, span: Optional[int] = None, **attrs: Any) -> None:
        """Record one point event."""
        self.records.append({
            "seq": next(self._seq),
            "t": self._now(),
            "kind": "event",
            "name": name,
            "span": span,
            "attrs": attrs,
        })

    def begin(self, name: str, parent: Optional[int] = None, **attrs: Any) -> int:
        """Open a span; returns its id (pass to :meth:`end`)."""
        span_id = next(self._span_ids)
        self._open_spans[span_id] = name
        self.records.append({
            "seq": next(self._seq),
            "t": self._now(),
            "kind": "begin",
            "name": name,
            "span": span_id,
            "parent": parent,
            "attrs": attrs,
        })
        return span_id

    def end(self, span_id: int, **attrs: Any) -> None:
        name = self._open_spans.pop(span_id, None)
        if name is None:
            raise TraceError(f"end of unknown/closed span {span_id}")
        self.records.append({
            "seq": next(self._seq),
            "t": self._now(),
            "kind": "end",
            "name": name,
            "span": span_id,
            "attrs": attrs,
        })

    @contextmanager
    def span(
        self, name: str, parent: Optional[int] = None, **attrs: Any
    ) -> Iterator[int]:
        span_id = self.begin(name, parent=parent, **attrs)
        try:
            yield span_id
        finally:
            self.end(span_id)

    # ------------------------------------------------------------------
    # reading & serialization
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """All records, or just those with the given ``name``."""
        if name is None:
            return list(self.records)
        return [r for r in self.records if r["name"] == name]

    def open_spans(self) -> Dict[int, str]:
        """Spans begun but not yet ended (should be empty at run end)."""
        return dict(self._open_spans)

    def to_jsonl(self) -> str:
        """One JSON object per line, in ``seq`` order."""
        return "\n".join(
            json.dumps(record, sort_keys=True, default=_json_fallback)
            for record in self.records
        )

    def write_jsonl(self, path: str) -> int:
        """Write the trace to ``path``; returns the record count."""
        text = self.to_jsonl()
        with open(path, "w") as fh:
            if text:
                fh.write(text + "\n")
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
        self._open_spans.clear()

    def __repr__(self) -> str:
        return f"<Tracer {self.name!r} records={len(self.records)}>"


def _json_fallback(value: Any) -> str:
    # attrs are expected to be JSON primitives; anything exotic (a
    # frozenset of stream numbers, say) degrades to its repr rather than
    # poisoning the whole trace file
    return repr(value)


def load_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into records (for offline checking)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]
