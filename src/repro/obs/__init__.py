"""End-to-end observability: tracing, invariant auditing, QoE.

``repro.obs`` threads one :class:`Tracer` through publish (encode farm,
publisher), serve (media server, sessions, QoS, faults) and playback
(player, recovery), then lets :class:`TraceChecker` audit the finished
trace for cross-layer lifecycle invariants and :class:`QoEAggregator`
summarize per-session quality of experience.
"""

from .checker import TraceChecker, TraceViolation
from .qoe import QoEAggregator, SessionQoE
from .trace import TraceError, Tracer, load_jsonl

__all__ = [
    "QoEAggregator",
    "SessionQoE",
    "TraceChecker",
    "TraceError",
    "TraceViolation",
    "Tracer",
    "load_jsonl",
]
