"""Metrics: sample statistics and per-experiment collectors."""

from .collector import MetricsCollector, Sample
from .counters import Counters
from .stats import (
    StatsError,
    Summary,
    format_table,
    jain_index,
    mean,
    percentile,
    stdev,
)

__all__ = [
    "Counters",
    "MetricsCollector",
    "Sample",
    "StatsError",
    "Summary",
    "format_table",
    "jain_index",
    "mean",
    "percentile",
    "stdev",
]
