"""Metrics: sample statistics and per-experiment collectors."""

from .collector import MetricsCollector, Sample
from .counters import Counters, counters_snapshot, get_counters, reset_counters
from .stats import (
    StatsError,
    Summary,
    format_table,
    jain_index,
    mean,
    percentile,
    stdev,
)

__all__ = [
    "Counters",
    "MetricsCollector",
    "Sample",
    "StatsError",
    "Summary",
    "counters_snapshot",
    "format_table",
    "get_counters",
    "jain_index",
    "mean",
    "percentile",
    "reset_counters",
    "stdev",
]
