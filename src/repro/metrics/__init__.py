"""Metrics: sample statistics and per-experiment collectors."""

from .collector import MetricsCollector, Sample
from .counters import (
    Counters,
    counters_snapshot,
    get_counters,
    merge_snapshot,
    reset_counters,
    snapshot_delta,
)
from .histogram import Histogram
from .stats import (
    StatsError,
    Summary,
    format_table,
    jain_index,
    mean,
    percentile,
    stdev,
)

__all__ = [
    "Counters",
    "Histogram",
    "MetricsCollector",
    "Sample",
    "StatsError",
    "Summary",
    "counters_snapshot",
    "format_table",
    "get_counters",
    "jain_index",
    "mean",
    "merge_snapshot",
    "percentile",
    "reset_counters",
    "snapshot_delta",
    "stdev",
]
