"""Small, dependency-light statistics helpers used by benches and reports.

Nothing clever — means, percentiles, Jain fairness, and a fixed-width
table renderer so every bench prints its figure/table in a uniform,
comparable format.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


class StatsError(Exception):
    """Empty-input or malformed-table misuse."""


def mean(values: Sequence[float]) -> float:
    if not values:
        raise StatsError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not values:
        raise StatsError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise StatsError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = p / 100 * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1 = perfectly fair, 1/n = one user hogs."""
    positive = [v for v in values if v > 0]
    if not positive:
        return 1.0
    return sum(positive) ** 2 / (len(positive) * sum(v * v for v in positive))


@dataclass
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        if not values:
            raise StatsError("summary of empty sequence")
        return cls(
            n=len(values),
            mean=mean(values),
            stdev=stdev(values),
            minimum=min(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            maximum=max(values),
        )

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4g} sd={self.stdev:.3g} "
            f"min={self.minimum:.4g} p50={self.p50:.4g} "
            f"p95={self.p95:.4g} max={self.maximum:.4g}"
        )


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table (every bench's output format)."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise StatsError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        rendered_rows.append(
            [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
