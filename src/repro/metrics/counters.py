"""Lightweight named counters for recovery/fault bookkeeping.

The :class:`~repro.metrics.collector.MetricsCollector` records timestamped
series; fault-injection runs mostly want plain tallies (NAKs sent, repairs
received, reconnects, downshifts) that tests and benches can read off at
the end. :class:`Counters` is that: a defaulting integer map with a name
for report labeling.
"""

from __future__ import annotations

from typing import Dict, Iterator


class Counters:
    """A named bag of monotonically increasing integer counters."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._counts: Dict[str, int] = {}

    def inc(self, key: str, amount: int = 1) -> int:
        value = self._counts.get(key, 0) + amount
        self._counts[key] = value
        return value

    def get(self, key: str, default: int = 0) -> int:
        return self._counts.get(key, default)

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._counts))

    def __len__(self) -> int:
        return len(self._counts)

    def as_dict(self) -> Dict[str, int]:
        return dict(sorted(self._counts.items()))

    def merge(self, other: "Counters") -> "Counters":
        for key, value in other._counts.items():
            self.inc(key, value)
        return self

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        label = f" {self.name}" if self.name else ""
        return f"<Counters{label} {inner}>"
