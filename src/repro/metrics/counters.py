"""Lightweight named counters for recovery/fault bookkeeping.

The :class:`~repro.metrics.collector.MetricsCollector` records timestamped
series; fault-injection runs mostly want plain tallies (NAKs sent, repairs
received, reconnects, downshifts) that tests and benches can read off at
the end. :class:`Counters` is that: a defaulting integer map with a name
for report labeling.

:func:`get_counters` adds a process-global registry of named bags so that
long-lived subsystems (the encode cache, the encode farm) can publish
observability tallies without threading a collector through every call
site; benches snapshot the registry with :func:`counters_snapshot` and
tests isolate themselves with :func:`reset_counters`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional


class Counters:
    """A named bag of monotonically increasing integer counters."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._counts: Dict[str, int] = {}

    def inc(self, key: str, amount: int = 1) -> int:
        value = self._counts.get(key, 0) + amount
        self._counts[key] = value
        return value

    def get(self, key: str, default: int = 0) -> int:
        return self._counts.get(key, default)

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._counts))

    def __len__(self) -> int:
        return len(self._counts)

    def as_dict(self) -> Dict[str, int]:
        return dict(sorted(self._counts.items()))

    def clear(self) -> None:
        self._counts.clear()

    def merge(self, other: "Counters") -> "Counters":
        for key, value in other._counts.items():
            self.inc(key, value)
        return self

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        label = f" {self.name}" if self.name else ""
        return f"<Counters{label} {inner}>"


# ----------------------------------------------------------------------
# process-global registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Counters] = {}


def get_counters(name: str) -> Counters:
    """The process-global :class:`Counters` bag called ``name``.

    Created on first use; every later call returns the same object, so
    independent components (an :class:`~repro.asf.encoder.EncodeCache`
    here, a bench reporter there) observe one shared tally.
    """
    if not name:
        raise ValueError("registry counters need a name")
    bag = _REGISTRY.get(name)
    if bag is None:
        bag = _REGISTRY[name] = Counters(name)
    return bag


def counters_snapshot() -> Dict[str, Dict[str, int]]:
    """``{bag name: {counter: value}}`` for every registered bag."""
    return {name: bag.as_dict() for name, bag in sorted(_REGISTRY.items())}


def reset_counters(name: Optional[str] = None) -> None:
    """Zero one registered bag, or all of them (test isolation)."""
    if name is None:
        for bag in _REGISTRY.values():
            bag.clear()
    elif name in _REGISTRY:
        _REGISTRY[name].clear()


def snapshot_delta(
    before: Dict[str, Dict[str, int]], after: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    """Per-key increments between two :func:`counters_snapshot` calls.

    Bags and keys absent from ``before`` count from zero; zero deltas are
    omitted, so the result is exactly "what was incremented in between".
    Counters are monotonic, which is what makes this subtraction sound.
    """
    deltas: Dict[str, Dict[str, int]] = {}
    for bag_name, counts in after.items():
        base = before.get(bag_name, {})
        changed = {
            key: value - base.get(key, 0)
            for key, value in counts.items()
            if value != base.get(key, 0)
        }
        if changed:
            deltas[bag_name] = changed
    return deltas


def merge_snapshot(deltas: Dict[str, Dict[str, int]]) -> None:
    """Fold :func:`snapshot_delta` output into this process's registry.

    This is how increments made inside ``spawn`` pool workers (which have
    their own process-global registry) reach the parent: each job returns
    its delta alongside its result and the parent merges it here.
    """
    for bag_name, counts in deltas.items():
        bag = get_counters(bag_name)
        for key, amount in counts.items():
            bag.inc(key, amount)
