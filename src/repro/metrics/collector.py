"""Named-series metric collection for experiments.

A :class:`MetricsCollector` accumulates ``(series, x, y)`` samples during a
run and renders them as the rows a paper figure would plot — the common
shape of every bench in ``benchmarks/``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .stats import StatsError, Summary, format_table


@dataclass(frozen=True)
class Sample:
    series: str
    x: float
    y: float


class MetricsCollector:
    """Collects per-series (x, y) samples and renders figures."""

    def __init__(self, name: str = "experiment") -> None:
        self.name = name
        self._samples: "OrderedDict[str, List[Tuple[float, float]]]" = OrderedDict()

    def record(self, series: str, x: float, y: float) -> None:
        self._samples.setdefault(series, []).append((x, y))

    def series_names(self) -> List[str]:
        return list(self._samples)

    def series(self, name: str) -> List[Tuple[float, float]]:
        if name not in self._samples:
            raise StatsError(f"no series {name!r}")
        return sorted(self._samples[name])

    def ys(self, name: str) -> List[float]:
        return [y for _, y in self.series(name)]

    def summary(self, name: str) -> Summary:
        return Summary.of(self.ys(name))

    def xs(self) -> List[float]:
        """Union of x values across series, sorted."""
        values = sorted({x for samples in self._samples.values() for x, _ in samples})
        return values

    def value_at(self, series: str, x: float) -> Optional[float]:
        for sx, sy in self.series(series):
            if abs(sx - x) < 1e-12:
                return sy
        return None

    def as_table(self, *, x_label: str = "x") -> str:
        """Figure-shaped table: one row per x, one column per series."""
        headers = [x_label, *self._samples.keys()]
        rows = []
        for x in self.xs():
            row: List[object] = [x]
            for name in self._samples:
                value = self.value_at(name, x)
                row.append(value if value is not None else "-")
            rows.append(row)
        return format_table(headers, rows, title=self.name)

    def crossover(self, a: str, b: str) -> Optional[float]:
        """Smallest shared x where series ``a`` stops beating series ``b``.

        Useful for "where does the baseline overtake" statements: returns
        the first x (in sorted order) at which ``a``'s value exceeds
        ``b``'s, or None if it never does.
        """
        xs = [x for x, _ in self.series(a)]
        for x in xs:
            va, vb = self.value_at(a, x), self.value_at(b, x)
            if va is None or vb is None:
                continue
            if va > vb:
                return x
        return None
