"""A small exact-value histogram with percentile summaries.

The benches already summarize via :func:`repro.metrics.stats.percentile`;
:class:`Histogram` packages that with recording, merging (needed when
QoE is aggregated across farm workers or client fleets) and a dict form
for the ``BENCH_*.json`` artifacts. Values are kept exactly — the
populations here are hundreds of sessions, not millions of packets — so
percentiles are exact, deterministic, and merge without bucket error.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from .stats import mean, percentile


class Histogram:
    """Exact-value histogram over floats."""

    def __init__(self, name: str = "", values: Iterable[float] = ()) -> None:
        self.name = name
        self.values: List[float] = [float(v) for v in values]

    def record(self, value: float) -> None:
        self.values.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def merge(self, other: "Histogram") -> None:
        """Absorb another histogram's population."""
        self.values.extend(other.values)

    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        return mean(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        return percentile(self.values, p) if self.values else 0.0

    def percentiles(
        self, ps: Sequence[float] = (50.0, 90.0, 99.0)
    ) -> Dict[str, float]:
        return {f"p{p:g}": self.percentile(p) for p in ps}

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.count,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
        }
        out.update(self.percentiles())
        return out

    def as_dict(self) -> Dict[str, Any]:
        out = self.summary()
        out["name"] = self.name
        return out

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"<Histogram {self.name!r} n={self.count}>"
