"""A small exact-value histogram with percentile summaries.

The benches already summarize via :func:`repro.metrics.stats.percentile`;
:class:`Histogram` packages that with recording, merging (needed when
QoE is aggregated across farm workers or client fleets) and a dict form
for the ``BENCH_*.json`` artifacts. Values are kept exactly — the
populations here are hundreds of sessions, not millions of packets — so
percentiles are exact, deterministic, and merge without bucket error.

Storage is weighted ``(value, count)`` pairs: a load-harness cohort
delegate records its QoE once with the cohort size as the count, so a
million modeled viewers cost as many entries as there are *distinct*
sessions, while every summary statistic is computed exactly as if the
value had been recorded ``count`` times.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Sequence

from .stats import percentile


class Histogram:
    """Exact-value histogram over floats, with per-value weights."""

    def __init__(self, name: str = "", values: Iterable[float] = ()) -> None:
        self.name = name
        self._values: List[float] = []
        self._counts: List[int] = []
        self._total_count = 0
        for value in values:
            self.record(value)

    def record(self, value: float, count: int = 1) -> None:
        """Record ``value`` as if it occurred ``count`` times."""
        if count < 1:
            raise ValueError(f"count must be a positive integer, got {count}")
        self._values.append(float(value))
        self._counts.append(int(count))
        self._total_count += int(count)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def merge(self, other: "Histogram") -> None:
        """Absorb another histogram's population (weights preserved)."""
        self._values.extend(other._values)
        self._counts.extend(other._counts)
        self._total_count += other._total_count

    # ------------------------------------------------------------------

    @property
    def values(self) -> List[float]:
        """The population expanded value-by-value (legacy view).

        O(total count) — fine for real-session populations, not meant for
        million-viewer weighted ones; the statistics below never expand.
        """
        out: List[float] = []
        for value, count in zip(self._values, self._counts):
            out.extend([value] * count)
        return out

    def items(self) -> List[tuple]:
        """The weighted population as ``(value, count)`` pairs."""
        return list(zip(self._values, self._counts))

    @property
    def count(self) -> int:
        return self._total_count

    @property
    def total(self) -> float:
        # fsum: the exactly-rounded sum, so a weighted entry (v, c) totals
        # identically to c separate recordings of v — the equivalence the
        # cohort load harness relies on
        return math.fsum(v * c for v, c in zip(self._values, self._counts))

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def mean(self) -> float:
        if not self._total_count:
            return 0.0
        return self.total / self._total_count

    def percentile(self, p: float) -> float:
        """Exactly :func:`repro.metrics.stats.percentile` of the expanded
        population, computed without expanding it."""
        if not self._values:
            return 0.0
        n = self._total_count
        if n == 1:
            return self._values[0]
        if not 0 <= p <= 100:
            # delegate the error contract to the canonical implementation
            return percentile(self._values, p)
        ordered = sorted(zip(self._values, self._counts))
        rank = p / 100 * (n - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        v_lo = v_hi = None
        cumulative = 0
        for value, count in ordered:
            cumulative += count
            if v_lo is None and lo < cumulative:
                v_lo = value
            if hi < cumulative:
                v_hi = value
                break
        if v_lo is None:
            v_lo = ordered[-1][0]
        if v_hi is None:
            v_hi = ordered[-1][0]
        if lo == hi:
            return v_lo
        frac = rank - lo
        return v_lo * (1 - frac) + v_hi * frac

    def percentiles(
        self, ps: Sequence[float] = (50.0, 90.0, 99.0)
    ) -> Dict[str, float]:
        return {f"p{p:g}": self.percentile(p) for p in ps}

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.count,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
        }
        out.update(self.percentiles())
        return out

    def as_dict(self) -> Dict[str, Any]:
        out = self.summary()
        out["name"] = self.name
        return out

    def __len__(self) -> int:
        return self._total_count

    def __repr__(self) -> str:
        return f"<Histogram {self.name!r} n={self.count}>"
