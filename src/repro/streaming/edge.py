"""The distributed edge-relay serving tier.

The paper promises a *distributed* lecture-on-demand system; a single
:class:`~repro.streaming.server.MediaServer` caps out at O(clients)
origin egress. This module puts relays between the origin and the
viewers, the way Cycon et al.'s distributed e-learning system scales:

* :class:`EdgeRelay` — a :class:`MediaServer` subclass that *fills* its
  local copy of a publishing point from an origin over one replica
  session, then re-paces to its own clients with the inherited shared
  schedule/pacing-group machinery. All clients behind one edge watching
  one point share a single origin session (**request coalescing**).
* :class:`PacketRunCache` — LRU + byte-budget cache of filled packet
  runs, keyed by :meth:`~repro.asf.stream.ASFFile.fingerprint`, so
  repeat viewers, seek/replay, and a restarted edge never touch the
  origin's data path again (hit/miss counters in the process-global
  ``edge_cache`` bag).
* :class:`EdgeDirectory` — consistent-hash ring (virtual nodes, seeded
  sha1 so placement is deterministic and independent of
  ``PYTHONHASHSEED``) placing clients on edges, with admission control
  (capacity) and overflow spill to the next ring node.
* :func:`build_edge_tier` — topology construction: per-edge backbone
  links, relays, and a populated directory in one call.

Relays speak the same control plane as the origin, so
:class:`~repro.streaming.client.MediaPlayer` /
:class:`~repro.streaming.recovery.RecoveryClient` NAK, downshift, and
reconnect against an edge unchanged; an edge crash re-routes the client
through the directory to a surviving edge.
"""

from __future__ import annotations

import functools
import hashlib
import math
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple
from urllib.parse import urlparse

from ..asf.packets import DataPacket
from ..asf.stream import ASFFile, ASFLiveStream
from ..metrics.counters import Counters, get_counters
from ..net.transport import DatagramChannel, Message
from ..web.http import HTTPClient, HTTPError, HTTPRequest, HTTPResponse, VirtualNetwork
from .recovery import NAK_WIRE_SIZE, NakRequest
from .server import MediaServer, PublishError
from .session import SessionError, SessionState, StreamSession


class PlacementError(Exception):
    """No edge can admit the client (all down or at capacity)."""


# ----------------------------------------------------------------------
# packet-run cache
# ----------------------------------------------------------------------


class PacketRunCache:
    """LRU byte-budgeted cache of filled packet runs.

    Entries are whole :class:`~repro.asf.stream.ASFFile` replicas keyed
    by content fingerprint; the charged size is the packed wire image
    (what the run costs to hold), computed from the file's memoized
    :meth:`~repro.asf.stream.ASFFile.packed_packets`. Eviction is LRU
    but never evicts the entry just inserted — a run larger than the
    whole budget still serves its current viewers, it just won't keep
    neighbours around.
    """

    def __init__(
        self,
        *,
        max_bytes: int = 64 * 1024 * 1024,
        counters: Optional[Counters] = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("cache budget must be positive")
        self.max_bytes = max_bytes
        self.counters = counters if counters is not None else get_counters("edge_cache")
        self._entries: "OrderedDict[str, ASFFile]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self.bytes_cached = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> List[str]:
        """Keys from least- to most-recently used."""
        return list(self._entries)

    def lookup(self, key: str) -> Optional[ASFFile]:
        entry = self._entries.get(key)
        if entry is None:
            self.counters.inc("misses")
            return None
        self._entries.move_to_end(key)
        self.counters.inc("hits")
        return entry

    def store(self, key: str, asf: ASFFile) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        size = len(asf.header.pack()) + sum(
            len(blob) for blob in asf.packed_packets()
        )
        self._entries[key] = asf
        self._sizes[key] = size
        self.bytes_cached += size
        self.counters.inc("insertions")
        self.counters.inc("bytes_inserted", size)
        while self.bytes_cached > self.max_bytes and len(self._entries) > 1:
            victim, _ = self._entries.popitem(last=False)
            freed = self._sizes.pop(victim)
            self.bytes_cached -= freed
            self.counters.inc("evictions")
            self.counters.inc("bytes_evicted", freed)


# ----------------------------------------------------------------------
# consistent-hash directory
# ----------------------------------------------------------------------


class _EdgeEntry:
    __slots__ = ("name", "url", "relay", "capacity", "down", "manual_load")

    def __init__(
        self,
        name: str,
        url: Optional[str],
        relay: Optional["EdgeRelay"],
        capacity: Optional[int],
    ) -> None:
        self.name = name
        self.url = url
        self.relay = relay
        self.capacity = capacity
        self.down = False
        self.manual_load = 0

    def load(self) -> int:
        if self.relay is not None:
            return len(self.relay.sessions)
        return self.manual_load

    def available(self) -> bool:
        if self.down:
            return False
        if self.relay is not None and (self.relay.crashed or self.relay.draining):
            return False
        if self.capacity is not None and self.load() >= self.capacity:
            return False
        return True


class EdgeDirectory:
    """Consistent-hash placement of clients onto edge relays.

    Each edge owns ``vnodes`` points on a 64-bit sha1 ring (salted by
    ``seed``); a client key walks clockwise from its own hash and takes
    the first *available* edge — not down, not crashed, under capacity.
    The ring gives the two properties the tier needs: deterministic
    placement under a fixed seed, and bounded reshuffle when an edge
    joins or leaves (only keys whose arc changed move).

    ``origin_url`` is the optional last resort: when every edge refuses,
    :meth:`url_for` falls back to serving straight from the origin
    instead of raising :class:`PlacementError`.
    """

    def __init__(
        self,
        *,
        vnodes: int = 64,
        seed: int = 0,
        origin_url: Optional[str] = None,
    ) -> None:
        if vnodes <= 0:
            raise PlacementError("vnodes must be positive")
        self.vnodes = vnodes
        self.seed = seed
        self.origin_url = origin_url.rstrip("/") if origin_url else None
        self._edges: Dict[str, _EdgeEntry] = {}
        self._ring: List[Tuple[int, str]] = []  # (hash, edge name), sorted

    # -- membership -----------------------------------------------------

    def add_edge(
        self,
        name: str,
        *,
        relay: Optional["EdgeRelay"] = None,
        url: Optional[str] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if name in self._edges:
            raise PlacementError(f"edge {name!r} already registered")
        if relay is not None and url is None:
            url = f"http://{relay.host}:{relay.port}"
        if url is None:
            raise PlacementError(f"edge {name!r} needs a relay or a url")
        self._edges[name] = _EdgeEntry(name, url.rstrip("/"), relay, capacity)
        for v in range(self.vnodes):
            self._ring.append((self._hash(f"{name}#{v}"), name))
        self._ring.sort()

    def remove_edge(self, name: str) -> None:
        if name not in self._edges:
            raise PlacementError(f"no edge {name!r}")
        del self._edges[name]
        self._ring = [(h, n) for h, n in self._ring if n != name]

    def mark_down(self, name: str) -> None:
        self._entry(name).down = True

    def mark_up(self, name: str) -> None:
        self._entry(name).down = False

    def set_load(self, name: str, load: int) -> None:
        """Manual load for relay-less (url-only) entries."""
        self._entry(name).manual_load = load

    def relays(self) -> Dict[str, Optional["EdgeRelay"]]:
        """``{edge name: relay}`` for fault-injector registration."""
        return {name: entry.relay for name, entry in self._edges.items()}

    def edges(self) -> List[str]:
        return sorted(self._edges)

    def edge_url(self, name: str) -> str:
        """Base control/playback URL of one edge."""
        return self._entry(name).url

    def edge_load(self, name: str) -> int:
        """Modeled viewers on one edge (``multiplicity``-weighted for
        relays, ``set_load`` for url-only entries) — the autoscaler's
        per-edge load signal."""
        entry = self._entry(name)
        if entry.relay is not None:
            return entry.relay.sessions.modeled_viewers()
        return entry.manual_load

    def is_available(self, name: str) -> bool:
        """Whether the edge currently admits clients (not down, not
        crashed, not draining, under capacity)."""
        return self._entry(name).available()

    def _entry(self, name: str) -> _EdgeEntry:
        try:
            return self._edges[name]
        except KeyError:
            raise PlacementError(f"no edge {name!r}") from None

    # -- placement ------------------------------------------------------

    def _hash(self, value: str) -> int:
        digest = hashlib.sha1(f"{self.seed}:{value}".encode()).hexdigest()
        return int(digest[:16], 16)

    def spill_order(self, key: str) -> List[str]:
        """Every edge in ring-walk order from ``key``'s hash.

        The first entry is the primary placement; the rest is the
        deterministic overflow order when primaries refuse admission.
        """
        if not self._ring:
            return []
        h = self._hash(key)
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid][0] < h:
                lo = mid + 1
            else:
                hi = mid
        order: List[str] = []
        seen: Set[str] = set()
        for i in range(len(self._ring)):
            name = self._ring[(lo + i) % len(self._ring)][1]
            if name not in seen:
                seen.add(name)
                order.append(name)
            if len(seen) == len(self._edges):
                break
        return order

    def place(self, key: str) -> str:
        """Edge name admitting ``key``; raises :class:`PlacementError`."""
        for name in self.spill_order(key):
            if self._edges[name].available():
                return name
        raise PlacementError(
            f"no edge available for {key!r} "
            f"({len(self._edges)} registered, all down or full)"
        )

    def url_for(self, client_host: str, point: str) -> str:
        """Playback URL for one client/point pair.

        Keys combine client and point so one client's lectures spread
        over the ring while the placement stays deterministic; when no
        edge admits and ``origin_url`` is set, the client is sent
        straight to the origin.
        """
        try:
            name = self.place(f"{client_host}|{point}")
        except PlacementError:
            if self.origin_url is not None:
                return f"{self.origin_url}/lod/{point}"
            raise
        return f"{self._edges[name].url}/lod/{point}"


# ----------------------------------------------------------------------
# the relay
# ----------------------------------------------------------------------


class _FillState:
    """One in-flight fill of a point from the origin."""

    __slots__ = (
        "point", "header", "cache_key", "sequences",
        "got", "session_id", "done", "failed",
    )

    def __init__(
        self, point: str, header, cache_key: str, sequences: Tuple[int, ...]
    ) -> None:
        self.point = point
        self.header = header
        self.cache_key = cache_key
        self.sequences = sequences
        self.got: Dict[int, DataPacket] = {}
        self.session_id: Optional[int] = None
        self.done = False
        self.failed = False

    def missing(self) -> List[int]:
        return [s for s in self.sequences if s not in self.got]


class EdgeRelay(MediaServer):
    """A relay between the origin and the viewers.

    Inherits the full serving stack — sessions, shared-schedule pacing,
    NAK repair, MBR downshift, QoS, crash/restart, HTTP control plane —
    and adds the upstream side:

    * the first client opening a point triggers a **fill**: one replica
      session against the origin bursts the whole packet run across the
      backbone (loss repaired by upstream NAK rounds), the assembled
      file is fingerprint-verified, cached, and published locally;
    * later clients of the same point coalesce onto the already-local
      copy — zero extra origin traffic; a refill after crash/idle is a
      cache hit and costs the origin only a control-plane open;
    * when the *last* local client leaves, the local point is retired
      and the upstream session closed, so origin session/QoS lifetime
      matches local demand exactly (two-hop teardown);
    * ``join_quantum`` > 0 defers each ``play()`` to the next quantum
      boundary so near-simultaneous viewers land in one pacing group.

    Broadcast points pass through: the upstream feed is republished as a
    local live stream, and NAKs for packets the relay itself never
    received are forwarded upstream.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        host: str,
        *,
        origin_url: str,
        name: Optional[str] = None,
        cache: Optional[PacketRunCache] = None,
        port: int = 8080,
        qos_enabled: bool = False,
        pacing_quantum: float = 0.0,
        shared_pacing: bool = True,
        join_quantum: float = 0.0,
        fill_burst: float = 64.0,
        fill_timeout: float = 30.0,
        fill_nak_interval: float = 0.25,
        fill_nak_rounds: int = 8,
        tracer=None,
    ) -> None:
        if join_quantum < 0:
            raise PublishError("join_quantum must be >= 0")
        self.name = name or host
        super().__init__(
            network, host,
            port=port, qos_enabled=qos_enabled,
            pacing_quantum=pacing_quantum, shared_pacing=shared_pacing,
            tracer=tracer, trace_label=self.name,
        )
        self.origin_url = origin_url.rstrip("/")
        parsed = urlparse(self.origin_url)
        self.origin_host = parsed.hostname
        self.cache = cache if cache is not None else PacketRunCache()
        self.join_quantum = join_quantum
        self.fill_burst = fill_burst
        self.fill_timeout = fill_timeout
        self.fill_nak_interval = fill_nak_interval
        self.fill_nak_rounds = fill_nak_rounds
        self.http_client = HTTPClient(network, host)
        #: set by :meth:`drain`: the relay stops admitting (directory
        #: entries report unavailable) while live sessions hand off
        self.draining = False
        #: point -> origin replica session id (exactly one per local point)
        self._upstream: Dict[str, int] = {}
        self._fills: Dict[str, _FillState] = {}
        #: point -> cache key of the run last filled for it — the disk
        #: index beside the cache: it lets a viewer arriving while the
        #: origin is *unreachable* (describe impossible) still be served
        #: the cached run instead of refused. Like the cache, it survives
        #: crash/restart — it models on-disk metadata, not process state.
        self._cache_keys: Dict[str, str] = {}
        #: upstream session ids whose close never reached the origin (edge
        #: crash, origin outage) — retried until one lands, so the origin's
        #: session table and QoS channels don't leak across edge faults
        self._orphan_upstream: List[int] = []
        self._releasing: Set[str] = set()
        self._origin_sink = None  # origin's NAK receiver (from "open")
        self._origin_channel: Optional[DatagramChannel] = None
        #: sequences super()._repair_entry could not serve locally during
        #: the current _handle_nak call — forwarded upstream afterwards
        self._nak_forward: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # upstream control plane
    # ------------------------------------------------------------------

    def _control_upstream(self, action: str, **fields) -> Any:
        response = self.http_client.post(
            f"{self.origin_url}/control/{action}", body=fields
        )
        if not response.ok:
            raise PublishError(
                f"origin {action} failed: {response.status} {response.body}"
            )
        return response.body

    def _open_upstream(
        self, name: str, deliver: Callable[[DataPacket], None]
    ) -> int:
        body = self._control_upstream(
            "open", point=name, deliver=deliver, replica=True
        )
        self._origin_sink = body.get("recovery_sink")
        return body["session_id"]

    def _upstream_channel(self) -> Optional[DatagramChannel]:
        if self._origin_sink is None or self.origin_host is None:
            return None
        if self._origin_channel is None:
            link = self.network.link(self.host, self.origin_host)
            self._origin_channel = DatagramChannel(link, self._origin_sink)
        else:
            self._origin_channel.on_receive = self._origin_sink
        return self._origin_channel

    def _nak_upstream(
        self, session_id: Optional[int], sequences: Sequence[int]
    ) -> None:
        channel = self._upstream_channel()
        if channel is None or session_id is None or not sequences:
            return
        for i in range(0, len(sequences), 64):
            channel.send(Message(
                NakRequest(session_id, tuple(sequences[i:i + 64])),
                NAK_WIRE_SIZE,
            ))
        self.recovery_stats.inc("upstream_naks")

    # ------------------------------------------------------------------
    # fill: replicate a point from the origin
    # ------------------------------------------------------------------

    def prefetch(self, name: str) -> None:
        """Warm the relay: replicate ``name`` before any client asks."""
        self._ensure_local(name)

    def _serve_stale(self, name: str) -> bool:
        """Publish ``name`` from the cached run, if the disk holds one.

        The origin is unreachable, so no upstream replica session is
        registered — the origin learns about this replica (if it ever
        comes back) through the ordinary next fill or shutdown path.
        """
        cache_key = self._cache_keys.get(name)
        cached = self.cache.lookup(cache_key) if cache_key is not None else None
        if cached is None:
            return False
        self.publish(name, cached)
        self.cache.counters.inc("stale_serves")
        return True

    def _ensure_local(self, name: str) -> None:
        """Make ``name`` a local publishing point (fill if needed)."""
        if self.crashed:
            raise SessionError("server is down")
        self._retry_orphans()
        if name in self.points:
            return
        fill = self._fills.get(name)
        if fill is not None:
            # a concurrent open of the same point: ride the fill already
            # in flight instead of starting a second origin session
            self._await_fill(fill)
            if fill.failed or name not in self.points:
                raise PublishError(f"edge fill of {name!r} failed")
            return
        self._begin_fill(name)

    def _begin_fill(self, name: str) -> None:
        try:
            response = self.http_client.get(
                f"{self.origin_url}/lod/{name}?replica=1"
            )
        except HTTPError:
            response = None
        if response is None or not response.ok:
            # the origin cannot even be described — but if a previous
            # fill left the run on disk, serve stale rather than refuse
            if self._serve_stale(name):
                return
            detail = (
                "origin unreachable" if response is None
                else f"{response.status} {response.body}"
            )
            raise PublishError(
                f"origin describe of {name!r} failed: {detail}"
            )
        # the describe round-trip stepped the simulator re-entrantly: a
        # concurrent open may have published the point (or registered a
        # fill) while this frame was blocked — re-check before acting
        if name in self.points:
            return
        racing = self._fills.get(name)
        if racing is not None:
            self._await_fill(racing)
            if racing.failed or name not in self.points:
                raise PublishError(f"edge fill of {name!r} failed")
            return
        body = response.body
        header = body["header"]
        if body.get("broadcast"):
            self._attach_broadcast(name, header)
            return
        cache_key = body["cache_key"]
        self._cache_keys[name] = cache_key
        cached = self.cache.lookup(cache_key)
        if cached is not None:
            # the run is already on local disk: the origin sees only a
            # control-plane open (zero media egress), kept so the origin
            # still knows one replica session per edge per point.
            # Publish BEFORE the (re-entrant) upstream registration so
            # opens landing inside that round-trip see the point and
            # bail at _ensure_local instead of double-publishing.
            self.publish(name, cached)
            try:
                sid = self._open_upstream(name, self._drop_packet)
            except (HTTPError, PublishError):
                # origin unreachable/down but the content is local: serve
                # stale rather than refusing viewers
                self.cache.counters.inc("stale_serves")
            else:
                if name in self.points and name not in self._upstream:
                    self._upstream[name] = sid
                else:
                    # the point was released while we were registering:
                    # settle the now-pointless origin session right away
                    try:
                        self.http_client.post(
                            f"{self.origin_url}/control/close",
                            body={"session_id": sid},
                        )
                    except HTTPError:
                        self._orphan_upstream.append(sid)
            return
        fill = _FillState(name, header, cache_key, tuple(body["sequences"]))
        self._fills[name] = fill
        try:
            fill.session_id = self._open_upstream(
                name, functools.partial(self._on_fill_packet, fill)
            )
            self._upstream[name] = fill.session_id
            # whole-file fast start: burst the entire run across the
            # backbone instead of pacing it out in real time
            self._control_upstream(
                "play",
                session_id=fill.session_id,
                burst_factor=self.fill_burst,
                burst_seconds=(
                    header.file_properties.duration_ms / 1000.0 + 1.0
                ),
            )
            self._await_fill(fill)
        finally:
            self._fills.pop(name, None)
        if fill.failed or name not in self.points:
            sid = self._upstream.pop(name, None)
            if sid is not None:
                try:
                    self.http_client.post(
                        f"{self.origin_url}/control/close",
                        body={"session_id": sid},
                    )
                except HTTPError:
                    self._orphan_upstream.append(sid)
            raise PublishError(f"edge fill of {name!r} failed")

    @staticmethod
    def _drop_packet(_packet: DataPacket) -> None:
        """Deliver sink of a register-only (cache hit) replica session."""

    def _on_fill_packet(self, fill: _FillState, packet: DataPacket) -> None:
        if fill.done or fill.failed:
            return
        fill.got[packet.sequence] = packet
        if len(fill.got) == len(fill.sequences):
            # completion must happen *here*, in the deliver callback: a
            # nested waiter's _await_fill (re-entrant simulator stepping)
            # can only proceed once the point is actually published
            self._complete_fill(fill)

    def _complete_fill(self, fill: _FillState) -> None:
        asf = ASFFile(
            header=fill.header,
            packets=[fill.got[s] for s in fill.sequences],
        )
        if asf.fingerprint() != fill.cache_key:
            fill.failed = True
            self.cache.counters.inc("fill_integrity_failures")
            return
        self.cache.store(fill.cache_key, asf)
        if fill.point not in self.points and not self.crashed:
            self.publish(fill.point, asf)
        fill.done = True
        self.cache.counters.inc("fills")
        if self.tracer is not None:
            self.tracer.event(
                "edge.fill",
                edge=self.name,
                point=fill.point,
                packets=len(fill.sequences),
            )

    def _await_fill(self, fill: _FillState) -> None:
        """Drive the simulator until the fill completes or times out.

        Re-entrant stepping, the same pattern HTTPClient.fetch uses. Lost
        fill packets are recovered by periodic upstream NAK rounds — the
        origin repairs from its shared packet cache even after the burst
        finished (FINISHED sessions still answer NAKs).
        """
        simulator = self.simulator
        deadline = simulator.now + self.fill_timeout
        next_nak = simulator.now + self.fill_nak_interval
        rounds = 0
        while not fill.done and not fill.failed:
            if self.crashed or simulator.now >= deadline:
                fill.failed = True
                break
            nxt = simulator.peek_time()
            if nxt is None or nxt > next_nak or simulator.now >= next_nak:
                missing = fill.missing()
                if missing and rounds < self.fill_nak_rounds:
                    self._nak_upstream(fill.session_id, missing)
                    rounds += 1
                    next_nak = simulator.now + self.fill_nak_interval
                    continue  # the NAK just scheduled wire events
                if nxt is None or nxt > deadline:
                    fill.failed = True
                    break
                next_nak = max(next_nak, simulator.now) + self.fill_nak_interval
            simulator.step()

    # -- broadcast passthrough ------------------------------------------

    def _attach_broadcast(self, name: str, header) -> None:
        """Republish an origin broadcast as a local live stream."""
        stream = ASFLiveStream(header)
        sid = self._open_upstream(
            name, functools.partial(self._on_broadcast_packet, stream)
        )
        self._upstream[name] = sid
        self.publish(name, stream)
        self._control_upstream("play", session_id=sid)

    @staticmethod
    def _on_broadcast_packet(stream: ASFLiveStream, packet: DataPacket) -> None:
        if not stream.closed:
            stream.append([packet])

    # ------------------------------------------------------------------
    # local session lifecycle (coalescing + two-hop teardown)
    # ------------------------------------------------------------------

    def open_session(
        self,
        name: str,
        client_host: str,
        deliver: Callable[[DataPacket], None],
        *,
        replica: bool = False,
        multiplicity: int = 1,
    ) -> StreamSession:
        if self.crashed:
            raise SessionError("server is down")
        if self.draining:
            raise SessionError("edge is draining")
        self._ensure_local(name)
        return super().open_session(
            name, client_host, deliver, replica=replica,
            multiplicity=multiplicity,
        )

    def close_session(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        point = session.point
        super().close_session(session_id)
        self._maybe_release_point(point)

    def _maybe_release_point(self, point: str) -> None:
        """Last local client gone: retire the replica and free the origin."""
        if point in self._releasing or point in self._fills:
            return
        if point not in self.points:
            return
        if self.sessions.sessions_for_point(point):
            return
        self.unpublish(point)

    def unpublish(self, name: str) -> None:
        nested = name in self._releasing
        self._releasing.add(name)
        try:
            super().unpublish(name)
        finally:
            if not nested:
                self._releasing.discard(name)
        if not nested:
            self._close_upstream(name)

    def _close_upstream(self, point: str) -> None:
        sid = self._upstream.pop(point, None)
        if sid is None:
            return
        try:
            # a non-OK answer means the origin already dropped the session
            # (crash wiped it) — nothing left to close either way
            self.http_client.post(
                f"{self.origin_url}/control/close", body={"session_id": sid}
            )
        except HTTPError:
            self._orphan_upstream.append(sid)

    def _retry_orphans(self) -> None:
        for sid in list(self._orphan_upstream):
            try:
                self.http_client.post(
                    f"{self.origin_url}/control/close",
                    body={"session_id": sid},
                )
            except HTTPError:
                return  # origin still unreachable; keep for the next try
            self._orphan_upstream.remove(sid)

    def shutdown(self) -> None:
        """Clean teardown for tests: drain clients, retire points, settle
        upstream orphans — after this the origin holds nothing of ours."""
        for session in list(self.sessions.all()):
            self.close_session(session.session_id)
        for point in list(self.points):
            self.unpublish(point)
        self._retry_orphans()

    # ------------------------------------------------------------------
    # graceful drain with warm session hand-off
    # ------------------------------------------------------------------

    def drain(self, directory: "EdgeDirectory") -> Dict[str, int]:
        """Gracefully decommission: hand live sessions to ring successors.

        The crash path costs each viewer a stall-watchdog timeout plus a
        seek+replay reconnect; a *planned* removal shouldn't. ``drain``
        first stops admitting (the directory reports this edge
        unavailable), then for every live streaming session transfers
        the delivery cursor — point, packet-sequence frontier, burst
        parameters, effectively the pacing-group position — to the first
        available successor in :meth:`EdgeDirectory.spill_order`, via the
        successor's ``/control/adopt`` route. The successor opens (and
        QoS-reserves) its own session starting at exactly the next
        unsent packet, the client is re-pointed through its ``relocate``
        callback, and only then is the local session closed (releasing
        this edge's reservation) — no double-reservation window on a
        single link, no gap or overlap in the packet stream, ~0 rebuffer.

        If the successor refuses or dies mid-transfer the session falls
        back to the crash path: it is closed locally and the client's
        stall watchdog drives an ordinary reconnect. Either way every
        drained session resolves exactly once, an invariant
        :class:`~repro.obs.checker.TraceChecker` audits via the
        ``drain.begin`` / ``session.handoff`` /
        ``session.handoff_fallback`` / ``drain.end`` records.
        """
        if self.crashed:
            raise SessionError("cannot drain a crashed edge")
        if self.draining:
            return {"handoffs": 0, "fallbacks": 0}
        self.draining = True
        candidates = [
            session for session in self.sessions.all()
            if session.state is SessionState.STREAMING and not session.replica
        ]
        if self.tracer is not None:
            self.tracer.event(
                "drain.begin",
                edge=self.name,
                sessions=[self._sid(s.session_id) for s in candidates],
            )
        handoffs = fallbacks = 0
        for session in candidates:
            if self._handoff(session, directory):
                handoffs += 1
            else:
                fallbacks += 1
        if self.tracer is not None:
            self.tracer.event(
                "drain.end",
                edge=self.name,
                handoffs=handoffs,
                fallbacks=fallbacks,
            )
        # whatever remains (paused/finished/connecting sessions, idle
        # points, upstream replicas) takes the ordinary teardown path
        self.shutdown()
        return {"handoffs": handoffs, "fallbacks": fallbacks}

    def _handoff(self, session: StreamSession, directory: "EdgeDirectory") -> bool:
        """Transfer one session to its ring successor; True on success."""
        # freeze delivery first: leaving the pacing group syncs
        # session.packet_cursor to the group frontier, and nothing may be
        # sent from here while the transfer is in flight
        self._stop_session_pacing(session)
        target: Optional[str] = None
        for name in directory.spill_order(f"{session.client_host}|{session.point}"):
            if name != self.name and directory.is_available(name):
                target = name
                break
        response = None
        url = None
        if target is not None and session.relocate is not None:
            url = directory.edge_url(target)
            try:
                response = self.http_client.post(
                    f"{url}/control/adopt",
                    body={
                        "point": session.point,
                        "client_host": session.client_host,
                        "deliver": session.deliver,
                        "relocate": session.relocate,
                        "multiplicity": session.multiplicity,
                        "cursor": session.packet_cursor,
                        "burst_factor": getattr(session, "_burst_factor", 1.0),
                        "burst_window_ms": getattr(session, "_burst_window_ms", 0.0),
                    },
                )
            except HTTPError:
                # the successor died mid-transfer: fall back to the
                # crash path rather than stranding the viewer
                response = None
        if response is not None and response.ok:
            body = response.body
            if self.tracer is not None:
                self.tracer.event(
                    "session.handoff",
                    edge=self.name,
                    to_edge=target,
                    session=self._sid(session.session_id),
                    to=body.get("trace_session"),
                    point=session.point,
                )
            session.relocate({
                "url": url,
                "session_id": body["session_id"],
                "recovery_sink": body.get("recovery_sink"),
                "streams": body.get("streams"),
                "selected_video": body.get("selected_video"),
            })
            self.close_session(session.session_id)
            return True
        if self.tracer is not None:
            self.tracer.event(
                "session.handoff_fallback",
                edge=self.name,
                session=self._sid(session.session_id),
                point=session.point,
            )
        self.close_session(session.session_id)
        return False

    def take_upstream_orphans(self) -> List[int]:
        """Hand pending orphaned origin session ids to a settling agent
        (the heartbeat monitor, at suspicion time) and forget them."""
        orphans, self._orphan_upstream = self._orphan_upstream, []
        return orphans

    # ------------------------------------------------------------------
    # faults (mirrors the origin MediaServer API)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        if self.crashed:
            return
        for fill in self._fills.values():
            fill.failed = True
        super().crash()
        # the process died before telling the origin: its replica sessions
        # are now orphans on the origin side, settled at restart/shutdown
        self._orphan_upstream.extend(self._upstream.values())
        self._upstream.clear()
        # local replicas are process memory; the cache plays the disk, so
        # a restarted edge refills by cache hit instead of origin egress
        for name in list(self.points):
            self._releasing.add(name)
            try:
                super().unpublish(name)
            finally:
                self._releasing.discard(name)

    def restart(self) -> None:
        super().restart()
        self.draining = False
        self._retry_orphans()

    # ------------------------------------------------------------------
    # deferred join (pacing-group aggregation)
    # ------------------------------------------------------------------

    def play(
        self,
        session_id: int,
        *,
        start: float = 0.0,
        burst_factor: float = 1.0,
        burst_seconds: Optional[float] = None,
    ) -> None:
        """Start delivery, deferred to the next ``join_quantum`` boundary.

        Clients arriving within one quantum land on the *same* boundary
        with the same cursor and burst parameters, so they share one
        pacing group — the edge-side half of request coalescing. With
        ``join_quantum == 0`` behaviour is exactly the base class's.
        """
        session = self.sessions.get(session_id)
        if self.join_quantum <= 0.0 or session.broadcast:
            super().play(
                session_id, start=start, burst_factor=burst_factor,
                burst_seconds=burst_seconds,
            )
            return
        quantum = self.join_quantum
        now = self.simulator.now
        boundary = math.ceil(now / quantum - 1e-9) * quantum
        if boundary <= now + 1e-9:
            super().play(
                session_id, start=start, burst_factor=burst_factor,
                burst_seconds=burst_seconds,
            )
            return

        def deferred() -> None:
            if self.crashed:
                return
            try:
                pending = self.sessions.get(session_id)
            except SessionError:
                return  # closed while waiting for the boundary
            if pending.state not in (
                SessionState.CONNECTING,
                SessionState.PAUSED,
                SessionState.FINISHED,
            ):
                return
            super(EdgeRelay, self).play(
                session_id, start=start, burst_factor=burst_factor,
                burst_seconds=burst_seconds,
            )

        self.simulator.schedule_at(boundary, deferred)

    # ------------------------------------------------------------------
    # NAK forwarding (broadcast holes the relay itself never received)
    # ------------------------------------------------------------------

    def _handle_nak(self, nak: NakRequest) -> None:
        self._nak_forward = []
        try:
            super()._handle_nak(nak)
            pending = self._nak_forward
        finally:
            self._nak_forward = None
        if not pending:
            return
        try:
            session = self.sessions.get(nak.session_id)
        except SessionError:
            return
        upstream = self._upstream.get(session.point)
        if upstream is not None:
            # the repair arrives on the upstream deliver path, lands in
            # the local live history, and fans out to attached clients
            self._nak_upstream(upstream, pending)

    def _repair_entry(
        self, point, session: StreamSession, sequence: int
    ) -> Optional[Tuple[DataPacket, int]]:
        entry = super()._repair_entry(point, session, sequence)
        if entry is None and self._nak_forward is not None and point.broadcast:
            self._nak_forward.append(sequence)
        return entry

    # ------------------------------------------------------------------
    # HTTP control plane (describe proxies unknown points)
    # ------------------------------------------------------------------

    def _handle_describe(self, request: HTTPRequest) -> HTTPResponse:
        if self.crashed:
            return HTTPResponse(503, body="server is down")
        name = request.path[len("/lod/"):]
        if name not in self.points:
            try:
                self._ensure_local(name)
            except (PublishError, SessionError) as exc:
                return HTTPResponse(502, body=f"edge fill failed: {exc}")
            except HTTPError as exc:
                return HTTPResponse(502, body=f"origin unreachable: {exc}")
        return super()._handle_describe(request)


# ----------------------------------------------------------------------
# topology construction
# ----------------------------------------------------------------------


def build_edge_tier(
    network: VirtualNetwork,
    origin: MediaServer,
    edge_hosts: Sequence[str],
    *,
    backbone_bandwidth: float = 50_000_000.0,
    backbone_delay: float = 0.005,
    capacity: Optional[int] = None,
    cache_bytes: int = 64 * 1024 * 1024,
    vnodes: int = 64,
    seed: int = 0,
    port: int = 8080,
    qos_enabled: bool = False,
    pacing_quantum: float = 0.0,
    shared_pacing: bool = True,
    join_quantum: float = 0.0,
    fill_burst: float = 64.0,
    origin_fallback: bool = False,
    tracer=None,
) -> Tuple[EdgeDirectory, List[EdgeRelay]]:
    """Origin + N edges: backbone links, relays, populated directory.

    Each edge gets its own backbone link to the origin and its own
    :class:`PacketRunCache` (separate machines, separate disks). The
    returned directory places clients; hand it to players (re-route on
    reconnect) and to :meth:`FaultInjector.register_directory
    <repro.net.faults.FaultInjector.register_directory>` (chaos).
    """
    origin_url = f"http://{origin.host}:{origin.port}"
    directory = EdgeDirectory(
        vnodes=vnodes, seed=seed,
        origin_url=origin_url if origin_fallback else None,
    )
    relays: List[EdgeRelay] = []
    for host in edge_hosts:
        network.connect(
            origin.host, host,
            bandwidth=backbone_bandwidth, delay=backbone_delay,
        )
        relay = EdgeRelay(
            network, host,
            origin_url=origin_url,
            cache=PacketRunCache(max_bytes=cache_bytes),
            port=port,
            qos_enabled=qos_enabled,
            pacing_quantum=pacing_quantum,
            shared_pacing=shared_pacing,
            join_quantum=join_quantum,
            fill_burst=fill_burst,
            tracer=tracer,
        )
        relays.append(relay)
        directory.add_edge(relay.name, relay=relay, capacity=capacity)
    # edge-to-edge mesh: the drain protocol's adopt round-trip runs
    # peer-to-peer (cursor transfer never transits the origin)
    for i, a in enumerate(relays):
        for b in relays[i + 1:]:
            network.connect(
                a.host, b.host,
                bandwidth=backbone_bandwidth, delay=backbone_delay,
            )
    return directory, relays
