"""The distributed edge-relay serving tier.

The paper promises a *distributed* lecture-on-demand system; a single
:class:`~repro.streaming.server.MediaServer` caps out at O(clients)
origin egress. This module puts relays between the origin and the
viewers, the way Cycon et al.'s distributed e-learning system scales:

* :class:`EdgeRelay` — a :class:`MediaServer` subclass that *fills* its
  local copy of a publishing point from an upstream over one replica
  session, then re-paces to its own clients with the inherited shared
  schedule/pacing-group machinery. All clients behind one edge watching
  one point share a single upstream session (**request coalescing**).
* :class:`PacketRunCache` — LRU + byte-budget cache of filled packet
  runs, keyed by :meth:`~repro.asf.stream.ASFFile.fingerprint`, so
  repeat viewers, seek/replay, and a restarted edge never touch the
  origin's data path again (hit/miss counters in the process-global
  ``edge_cache`` bag). It also keeps a bounded per-point *live history*
  so late joiners of a broadcast get recent packets instead of nothing.
* :class:`EdgeDirectory` — consistent-hash ring (virtual nodes, seeded
  sha1 so placement is deterministic and independent of
  ``PYTHONHASHSEED``) placing clients on edges, with admission control
  (capacity), overflow spill to the next ring node, and — for relay
  trees — a **holder registry** recording which edges hold which runs,
  plus the regional-parent map.
* :class:`FillToken` — the hop-limited path token every tree fill
  request carries; a relay that finds itself already in the token's
  path refuses, so A→B→A can never cycle.
* :func:`build_edge_tier` / :func:`build_relay_tree` — topology
  construction: the flat one-level tier of PR 5, and the multi-level
  tree (regional parents absorbing fan-in, sibling fills, shared
  :class:`~repro.streaming.backbone.BackboneBudget`).

**Fill-source selection** (tree mode): on a cache miss an edge consults
the directory and fills from, in order, (1) a *sibling* edge in its
region that already holds (or is currently filling) the run, (2) its
*regional parent*, which absorbs fan-in — sixty-four cold edges in four
regions cost the origin four fills, not sixty-four — and (3) the origin
as the last resort. The origin is always described first (control
plane, zero media egress) so a stale sibling replica is rejected by
cache key before any media moves. Only parents may fill *on behalf of*
another relay; a leaf receiving a tokened fill request serves it from
local state or refuses, which, with the path token, makes fill cascades
finite and loop-free.

Relays speak the same control plane as the origin, so
:class:`~repro.streaming.client.MediaPlayer` /
:class:`~repro.streaming.recovery.RecoveryClient` NAK, downshift, and
reconnect against an edge unchanged; an edge crash re-routes the client
through the directory to a surviving edge.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import math
from collections import OrderedDict, deque
from typing import (
    Any, Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple,
)
from urllib.parse import urlparse

from ..asf.packets import DataPacket
from ..asf.stream import ASFFile, ASFLiveStream
from ..metrics.counters import Counters, get_counters
from ..net.transport import DatagramChannel, Message
from ..web.http import HTTPClient, HTTPError, HTTPRequest, HTTPResponse, VirtualNetwork
from .backbone import BackboneBudget, BudgetError
from .recovery import NAK_WIRE_SIZE, NakRequest
from .server import MediaServer, PublishError
from .session import SessionError, SessionState, StreamSession


class PlacementError(Exception):
    """No edge can admit the client (all down or at capacity)."""


# ----------------------------------------------------------------------
# packet-run cache
# ----------------------------------------------------------------------


class PacketRunCache:
    """LRU byte-budgeted cache of filled packet runs.

    Entries are whole :class:`~repro.asf.stream.ASFFile` replicas keyed
    by content fingerprint; the charged size is the packed wire image
    (what the run costs to hold), computed from the file's memoized
    :meth:`~repro.asf.stream.ASFFile.packed_packets`. Eviction is LRU
    but never evicts the entry just inserted — a run larger than the
    whole budget still serves its current viewers, it just won't keep
    neighbours around. ``on_evict`` (if set) observes every eviction so
    a directory's holder registry can stop advertising the run.

    Beside the run cache sits the **live history**: a bounded deque of
    recently broadcast packets per live point, evicted by send-time
    horizon rather than LRU, serving late joiners a catch-up burst.

    Two optional content-aware layers (see :mod:`repro.catalog`):

    * ``admission`` — a TinyLFU-style policy consulted when a store
      would overflow the budget: the candidate must *beat* the LRU
      victim's windowed frequency estimate or it is turned away
      (``admission_rejected``), which is what keeps a one-shot catalog
      scan from flushing the hot set;
    * ``ttl_seconds`` + ``clock`` — entries expire on lookup once older
      than the TTL (``ttl_evictions``), the passive half of republish
      invalidation (the active half is the origin's invalidation push).
    """

    def __init__(
        self,
        *,
        max_bytes: int = 64 * 1024 * 1024,
        counters: Optional[Counters] = None,
        admission=None,
        ttl_seconds: Optional[float] = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("cache budget must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.max_bytes = max_bytes
        self.counters = counters if counters is not None else get_counters("edge_cache")
        #: optional :class:`~repro.catalog.TinyLFUAdmission`-shaped policy
        #: (``record_access(key)`` / ``admit(candidate, victim)``)
        self.admission = admission
        self.ttl_seconds = ttl_seconds
        #: time source for TTL (an EdgeRelay binds the simulator clock)
        self.clock: Optional[Callable[[], float]] = None
        self._entries: "OrderedDict[str, ASFFile]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self._stored_at: Dict[str, float] = {}
        self.bytes_cached = 0
        #: observer of evictions (cache key) — set by EdgeRelay when a
        #: directory with a holder registry is attached
        self.on_evict: Optional[Callable[[str], None]] = None
        self._live: Dict[str, Deque[DataPacket]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> List[str]:
        """Keys from least- to most-recently used."""
        return list(self._entries)

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def lookup(self, key: str) -> Optional[ASFFile]:
        if self.admission is not None:
            self.admission.record_access(key)
        entry = self._entries.get(key)
        if entry is None:
            self.counters.inc("misses")
            return None
        if (
            self.ttl_seconds is not None
            and self._now() - self._stored_at.get(key, 0.0) > self.ttl_seconds
        ):
            self.remove(key, counter="ttl_evictions")
            self.counters.inc("misses")
            return None
        self._entries.move_to_end(key)
        self.counters.inc("hits")
        return entry

    def store(self, key: str, asf: ASFFile) -> bool:
        """Insert a run; False when the admission policy turned it away.

        Re-storing a key already resident (a refill landing the same
        content, a stale-serve refresh) is deduped by cache key *before*
        any charge: the entry is only freshened, never double-counted.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            self._stored_at[key] = self._now()
            return True
        size = len(asf.header.pack()) + sum(
            len(blob) for blob in asf.packed_packets()
        )
        if (
            self.admission is not None
            and self._entries
            and self.bytes_cached + size > self.max_bytes
        ):
            victim = next(iter(self._entries))
            if not self.admission.admit(key, victim):
                self.counters.inc("admission_rejected")
                return False
        self._entries[key] = asf
        self._sizes[key] = size
        self._stored_at[key] = self._now()
        self.bytes_cached += size
        self.counters.inc("insertions")
        self.counters.inc("bytes_inserted", size)
        while self.bytes_cached > self.max_bytes and len(self._entries) > 1:
            victim, _ = self._entries.popitem(last=False)
            freed = self._sizes.pop(victim)
            self._stored_at.pop(victim, None)
            self.bytes_cached -= freed
            self.counters.inc("evictions")
            self.counters.inc("bytes_evicted", freed)
            if self.on_evict is not None:
                self.on_evict(victim)
        return True

    def remove(self, key: str, *, counter: str = "invalidations") -> bool:
        """Drop one run eagerly (invalidation push, supersede, TTL).

        Charges come off exactly once however many times this is called;
        ``on_evict`` fires so a holder registry stops advertising it.
        """
        if key not in self._entries:
            return False
        del self._entries[key]
        freed = self._sizes.pop(key)
        self._stored_at.pop(key, None)
        self.bytes_cached -= freed
        self.counters.inc(counter)
        self.counters.inc("bytes_invalidated", freed)
        if self.on_evict is not None:
            self.on_evict(key)
        return True

    # -- bounded live history -------------------------------------------

    def append_live(
        self,
        point: str,
        packets: Sequence[DataPacket],
        *,
        horizon_ms: float,
        now_ms: float,
    ) -> None:
        """Record broadcast packets, dropping everything older than
        ``horizon_ms`` behind ``now_ms`` — the history is bounded by
        time, so a day-long lecture holds minutes, not gigabytes."""
        buf = self._live.get(point)
        if buf is None:
            buf = self._live[point] = deque()
        buf.extend(packets)
        self.counters.inc("live_history_packets", len(packets))
        floor = now_ms - horizon_ms
        while buf and buf[0].send_time_ms < floor:
            buf.popleft()
            self.counters.inc("live_history_evicted")

    def live_tail(self, point: str, *, since_ms: float) -> List[DataPacket]:
        """Recorded broadcast packets at/after ``since_ms``, in order."""
        buf = self._live.get(point)
        if not buf:
            return []
        return [p for p in buf if p.send_time_ms >= since_ms]

    def drop_live(self, point: str) -> None:
        self._live.pop(point, None)


# ----------------------------------------------------------------------
# hop-limited fill token
# ----------------------------------------------------------------------


class FillToken:
    """Loop protection for tree fills.

    ``path`` lists every relay the request chain has traversed (the
    originator first); a relay that finds its own name in the path
    refuses the request, so A→B→A can never cycle. ``hops`` bounds the
    chain length independently of names. The token rides the control
    plane as two fields — ``fill_path`` (comma-joined, so relay names
    must not contain commas) and ``fill_hops`` — in describe query
    strings and ``open`` bodies.
    """

    __slots__ = ("path", "hops")

    def __init__(self, path: Sequence[str], hops: int) -> None:
        self.path: Tuple[str, ...] = tuple(path)
        self.hops = int(hops)

    def descend(self, name: str) -> "FillToken":
        """The token this relay forwards upstream: one hop spent, its
        own name appended to the path."""
        return FillToken(self.path + (name,), self.hops - 1)

    def wire(self) -> Dict[str, Any]:
        return {"fill_path": ",".join(self.path), "fill_hops": self.hops}

    def query(self) -> str:
        return f"fill_path={','.join(self.path)}&fill_hops={self.hops}"

    @classmethod
    def from_wire(cls, fields: Dict[str, Any]) -> Optional["FillToken"]:
        """Parse from a describe query or an ``open`` body; ``None``
        when the request carries no token (an ordinary origin fill)."""
        raw = fields.get("fill_path")
        if not raw:
            return None
        path = tuple(part for part in str(raw).split(",") if part)
        if not path:
            return None
        return cls(path, int(fields.get("fill_hops", 0)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FillToken(path={'>'.join(self.path)}, hops={self.hops})"


# ----------------------------------------------------------------------
# consistent-hash directory
# ----------------------------------------------------------------------


class _EdgeEntry:
    __slots__ = (
        "name", "url", "relay", "capacity", "down", "manual_load",
        "region", "placeable",
    )

    def __init__(
        self,
        name: str,
        url: Optional[str],
        relay: Optional["EdgeRelay"],
        capacity: Optional[int],
        region: Optional[str] = None,
        placeable: bool = True,
    ) -> None:
        self.name = name
        self.url = url
        self.relay = relay
        self.capacity = capacity
        self.down = False
        self.manual_load = 0
        self.region = region
        self.placeable = placeable

    def load(self) -> int:
        if self.relay is not None:
            return len(self.relay.sessions)
        return self.manual_load

    def available(self) -> bool:
        if self.down:
            return False
        if self.relay is not None and (self.relay.crashed or self.relay.draining):
            return False
        if self.capacity is not None and self.load() >= self.capacity:
            return False
        return True


class EdgeDirectory:
    """Consistent-hash placement of clients onto edge relays.

    Each edge owns ``vnodes`` points on a 64-bit sha1 ring (salted by
    ``seed``); a client key walks clockwise from its own hash and takes
    the first *available* edge — not down, not crashed, under capacity.
    The ring gives the two properties the tier needs: deterministic
    placement under a fixed seed, and bounded reshuffle when an edge
    joins or leaves (only keys whose arc changed move).

    For relay trees the directory additionally tracks **regions** (an
    edge belongs to at most one; the per-region *parent* relay is
    registered via :meth:`add_parent` and never placed on the ring) and
    the **holder registry** — which edges hold (or are currently
    filling) which publishing points — consulted by
    :meth:`fill_sources` when a sibling misses.

    ``origin_url`` is the optional last resort: when every edge refuses,
    :meth:`url_for` falls back to serving straight from the origin
    instead of raising :class:`PlacementError`.
    """

    def __init__(
        self,
        *,
        vnodes: int = 64,
        seed: int = 0,
        origin_url: Optional[str] = None,
    ) -> None:
        if vnodes <= 0:
            raise PlacementError("vnodes must be positive")
        self.vnodes = vnodes
        self.seed = seed
        self.origin_url = origin_url.rstrip("/") if origin_url else None
        self._edges: Dict[str, _EdgeEntry] = {}
        self._ring: List[Tuple[int, str]] = []  # (hash, edge name), sorted
        self._parents: Dict[str, str] = {}  # region -> parent entry name
        self._holders: Dict[str, Set[str]] = {}  # point -> edge names

    # -- membership -----------------------------------------------------

    def add_edge(
        self,
        name: str,
        *,
        relay: Optional["EdgeRelay"] = None,
        url: Optional[str] = None,
        capacity: Optional[int] = None,
        region: Optional[str] = None,
    ) -> None:
        if name in self._edges:
            raise PlacementError(f"edge {name!r} already registered")
        if relay is not None and url is None:
            url = f"http://{relay.host}:{relay.port}"
        if url is None:
            raise PlacementError(f"edge {name!r} needs a relay or a url")
        self._edges[name] = _EdgeEntry(
            name, url.rstrip("/"), relay, capacity, region=region
        )
        for v in range(self.vnodes):
            self._ring.append((self._hash(f"{name}#{v}"), name))
        self._ring.sort()

    def add_parent(
        self,
        region: str,
        *,
        relay: Optional["EdgeRelay"] = None,
        url: Optional[str] = None,
        name: Optional[str] = None,
        capacity: Optional[int] = None,
    ) -> str:
        """Register ``region``'s parent relay. Parents are directory
        citizens — watched by heartbeats, targeted by fault plans, valid
        fill sources — but never placed on the ring: clients land on
        leaves, parents absorb fan-in."""
        name = name or f"parent-{region}"
        if name in self._edges:
            raise PlacementError(f"edge {name!r} already registered")
        if region in self._parents:
            raise PlacementError(f"region {region!r} already has a parent")
        if relay is not None and url is None:
            url = f"http://{relay.host}:{relay.port}"
        if url is None:
            raise PlacementError(f"parent {name!r} needs a relay or a url")
        self._edges[name] = _EdgeEntry(
            name, url.rstrip("/"), relay, capacity,
            region=region, placeable=False,
        )
        self._parents[region] = name
        return name

    def remove_edge(self, name: str) -> None:
        if name not in self._edges:
            raise PlacementError(f"no edge {name!r}")
        del self._edges[name]
        self._ring = [(h, n) for h, n in self._ring if n != name]
        for point in list(self._holders):
            self.forget_fill(name, point)
        for region, parent in list(self._parents.items()):
            if parent == name:
                del self._parents[region]

    def mark_down(self, name: str) -> None:
        self._entry(name).down = True

    def mark_up(self, name: str) -> None:
        self._entry(name).down = False

    def set_load(self, name: str, load: int) -> None:
        """Manual load for relay-less (url-only) entries."""
        self._entry(name).manual_load = load

    def relays(self) -> Dict[str, Optional["EdgeRelay"]]:
        """``{name: relay}`` for every registered relay — leaves *and*
        regional parents — for fault-injector and heartbeat registration."""
        return {name: entry.relay for name, entry in self._edges.items()}

    def edges(self) -> List[str]:
        """Placeable (leaf) edges only — what admission and the
        autoscaler's per-edge load signals iterate."""
        return sorted(
            name for name, entry in self._edges.items() if entry.placeable
        )

    def edge_url(self, name: str) -> str:
        """Base control/playback URL of one edge."""
        return self._entry(name).url

    def edge_load(self, name: str) -> int:
        """Modeled viewers on one edge (``multiplicity``-weighted for
        relays, ``set_load`` for url-only entries) — the autoscaler's
        per-edge load signal."""
        entry = self._entry(name)
        if entry.relay is not None:
            return entry.relay.sessions.modeled_viewers()
        return entry.manual_load

    def is_available(self, name: str) -> bool:
        """Whether the edge currently admits clients (not down, not
        crashed, not draining, under capacity)."""
        return self._entry(name).available()

    def region_of(self, name: str) -> Optional[str]:
        return self._entry(name).region

    def parent_name(self, region: str) -> Optional[str]:
        return self._parents.get(region)

    def parent_url(self, region: str) -> Optional[str]:
        name = self._parents.get(region)
        return self._entry(name).url if name is not None else None

    # -- parent failover ------------------------------------------------

    def elect_parent(self, region: str) -> Optional[str]:
        """Pick the healthiest same-region leaf to promote when the
        region's parent dies: lightest modeled load, name as the
        deterministic tiebreak. Returns ``None`` when no leaf qualifies
        — the region then falls flat to origin-only."""
        candidates = [
            entry for entry in self._edges.values()
            if entry.placeable and entry.region == region
            and self.can_serve_fill(entry.name)
            and not (entry.relay is not None and entry.relay.draining)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: (e.load(), e.name)).name

    def promote_parent(self, region: str, name: str) -> None:
        """Re-point ``region``'s parent slot at ``name`` (a leaf being
        promoted to acting parent). The promoted leaf keeps its ring
        presence — it still serves its own viewers — it just absorbs
        the region's fan-in on top."""
        entry = self._entry(name)
        if entry.region != region:
            raise PlacementError(
                f"cannot promote {name!r}: not in region {region!r}"
            )
        self._parents[region] = name

    def clear_parent(self, region: str) -> None:
        """Drop ``region``'s parent slot — the region falls flat: leaves
        fill and attach straight to the origin until a parent rejoins."""
        self._parents.pop(region, None)

    def _entry(self, name: str) -> _EdgeEntry:
        try:
            return self._edges[name]
        except KeyError:
            raise PlacementError(f"no edge {name!r}") from None

    # -- holder registry (who holds which run) --------------------------

    def record_fill(self, name: str, point: str, *, pending: bool = False) -> None:
        """Advertise that ``name`` holds ``point``. Fills register at
        *begin* (``pending=True``) as well as at completion, so two
        siblings missing concurrently coalesce: the second finds the
        first's in-flight fill and rides it instead of starting its own."""
        if name in self._edges:
            self._holders.setdefault(point, set()).add(name)

    def forget_fill(self, name: str, point: str) -> None:
        holders = self._holders.get(point)
        if holders is not None:
            holders.discard(name)
            if not holders:
                del self._holders[point]

    def holders(self, point: str) -> List[str]:
        return sorted(self._holders.get(point, ()))

    def can_serve_fill(self, name: str) -> bool:
        """Whether ``name`` can answer a *fill* right now. Deliberately
        looser than :meth:`is_available`: a **draining** edge still
        serves fills — that is exactly how its successor warms up
        without a cold origin re-fill — and viewer capacity does not
        gate replica sessions."""
        entry = self._edges.get(name)
        if entry is None or entry.down:
            return False
        if entry.relay is not None and entry.relay.crashed:
            return False
        return True

    def fill_sources(self, name: str, point: str) -> List[str]:
        """Sibling edges in ``name``'s region that hold (or are filling)
        ``point`` and can serve, in deterministic (sorted) order."""
        try:
            region = self.region_of(name)
        except PlacementError:
            region = None
        out: List[str] = []
        for holder in self.holders(point):
            if holder == name:
                continue
            entry = self._edges.get(holder)
            if entry is None or not entry.placeable:
                continue
            if entry.region != region:
                continue
            if not self.can_serve_fill(holder):
                continue
            out.append(holder)
        return out

    # -- placement ------------------------------------------------------

    def _hash(self, value: str) -> int:
        digest = hashlib.sha1(f"{self.seed}:{value}".encode()).hexdigest()
        return int(digest[:16], 16)

    def spill_order(self, key: str) -> List[str]:
        """Every placeable edge in ring-walk order from ``key``'s hash.

        The first entry is the primary placement; the rest is the
        deterministic overflow order when primaries refuse admission.
        """
        if not self._ring:
            return []
        h = self._hash(key)
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid][0] < h:
                lo = mid + 1
            else:
                hi = mid
        ring_names = {n for _, n in self._ring}
        order: List[str] = []
        seen: Set[str] = set()
        for i in range(len(self._ring)):
            name = self._ring[(lo + i) % len(self._ring)][1]
            if name not in seen:
                seen.add(name)
                order.append(name)
            if len(seen) == len(ring_names):
                break
        return order

    def place(self, key: str) -> str:
        """Edge name admitting ``key``; raises :class:`PlacementError`."""
        for name in self.spill_order(key):
            if self._edges[name].available():
                return name
        raise PlacementError(
            f"no edge available for {key!r} "
            f"({len(self._edges)} registered, all down or full)"
        )

    def url_for(self, client_host: str, point: str) -> str:
        """Playback URL for one client/point pair.

        Keys combine client and point so one client's lectures spread
        over the ring while the placement stays deterministic; when no
        edge admits and ``origin_url`` is set, the client is sent
        straight to the origin.
        """
        try:
            name = self.place(f"{client_host}|{point}")
        except PlacementError:
            if self.origin_url is not None:
                return f"{self.origin_url}/lod/{point}"
            raise
        return f"{self._edges[name].url}/lod/{point}"


# ----------------------------------------------------------------------
# the relay
# ----------------------------------------------------------------------


class _UpstreamRef:
    """One upstream replica session — at the origin, the regional
    parent, or a sibling edge. Carries everything needed to NAK, close,
    and settle it: the base URL, the NAK datagram channel (lazy), and
    the backbone reservation it holds (if any)."""

    __slots__ = (
        "url", "host", "session_id", "sink", "channel", "budget_rid",
        "abandoned",
    )

    def __init__(
        self,
        url: str,
        host: Optional[str],
        session_id: int,
        sink,
        budget_rid: Optional[str] = None,
    ) -> None:
        self.url = url
        self.host = host
        self.session_id = session_id
        self.sink = sink
        self.channel: Optional[DatagramChannel] = None
        self.budget_rid = budget_rid
        #: the upstream is known dead/unreachable (monitor-settled):
        #: skip the remote close instead of stalling on a silent host
        self.abandoned = False


class _FillState:
    """One in-flight fill of a point, possibly spanning several upstream
    sources. The *driver* (the frame that started the fill) owns source
    selection: ``attempt_failed`` aborts only the current attempt, while
    ``exhausted`` tells nested riders that every source was tried."""

    __slots__ = (
        "point", "header", "cache_key", "sequences",
        "got", "session_id", "done", "exhausted", "attempt_failed",
        "supersedes",
    )

    def __init__(
        self, point: str, header, cache_key: str, sequences: Tuple[int, ...]
    ) -> None:
        self.point = point
        self.header = header
        self.cache_key = cache_key
        self.sequences = sequences
        self.got: Dict[int, DataPacket] = {}
        self.session_id: Optional[int] = None
        self.done = False
        self.exhausted = False
        self.attempt_failed = False
        #: cache key this point previously resolved to (a republish
        #: changed the content): the stale run is dropped when the fill
        #: lands so both generations never occupy budget at once
        self.supersedes: Optional[str] = None

    def missing(self) -> List[int]:
        return [s for s in self.sequences if s not in self.got]


class EdgeRelay(MediaServer):
    """A relay between the origin and the viewers.

    Inherits the full serving stack — sessions, shared-schedule pacing,
    NAK repair, MBR downshift, QoS, crash/restart, HTTP control plane —
    and adds the upstream side:

    * the first client opening a point triggers a **fill**: one replica
      session against an upstream source bursts the whole packet run
      across the backbone (loss repaired by upstream NAK rounds), the
      assembled file is fingerprint-verified, cached, and published
      locally. With a directory attached the source is chosen sibling →
      regional parent → origin; without one (the flat PR 5 tier) fills
      go straight to the origin;
    * later clients of the same point coalesce onto the already-local
      copy — zero extra origin traffic; a refill after crash/idle is a
      cache hit and costs the origin only a control-plane open;
    * when the *last* local client leaves, the local point is retired
      and the upstream session closed, so upstream session/QoS lifetime
      matches local demand exactly (two-hop teardown);
    * ``join_quantum`` > 0 defers each ``play()`` to the next quantum
      boundary so near-simultaneous viewers land in one pacing group.

    Broadcast points pass through: the upstream feed — pulled from the
    regional parent when one is configured, so it enters each region
    exactly once — is republished as a local live stream, late joiners
    get bounded history from the cache, and NAKs for packets the relay
    itself never received are forwarded upstream.
    """

    #: edges publish/retire local copies constantly — only the origin's
    #: point lifecycle is authoritative for the trace audit
    _trace_point_lifecycle = False

    def __init__(
        self,
        network: VirtualNetwork,
        host: str,
        *,
        origin_url: str,
        name: Optional[str] = None,
        cache: Optional[PacketRunCache] = None,
        port: int = 8080,
        qos_enabled: bool = False,
        pacing_quantum: float = 0.0,
        shared_pacing: bool = True,
        join_quantum: float = 0.0,
        fill_burst: float = 64.0,
        fill_timeout: float = 30.0,
        fill_nak_interval: float = 0.25,
        fill_nak_rounds: int = 8,
        region: Optional[str] = None,
        parent_url: Optional[str] = None,
        is_parent: bool = False,
        backbone: Optional[BackboneBudget] = None,
        fill_hop_limit: int = 3,
        live_history_seconds: float = 0.0,
        tracer=None,
    ) -> None:
        if join_quantum < 0:
            raise PublishError("join_quantum must be >= 0")
        if fill_hop_limit < 1:
            raise PublishError("fill_hop_limit must be >= 1")
        self.name = name or host
        super().__init__(
            network, host,
            port=port, qos_enabled=qos_enabled,
            pacing_quantum=pacing_quantum, shared_pacing=shared_pacing,
            tracer=tracer, trace_label=self.name,
        )
        self.origin_url = origin_url.rstrip("/")
        parsed = urlparse(self.origin_url)
        self.origin_host = parsed.hostname
        self.cache = cache if cache is not None else PacketRunCache()
        self.cache.clock = lambda: self.simulator.now
        self.join_quantum = join_quantum
        self.fill_burst = fill_burst
        self.fill_timeout = fill_timeout
        self.fill_nak_interval = fill_nak_interval
        self.fill_nak_rounds = fill_nak_rounds
        self.region = region
        self.parent_url = parent_url.rstrip("/") if parent_url else None
        self.is_parent = is_parent
        self.backbone = backbone
        self.fill_hop_limit = fill_hop_limit
        self.live_history_seconds = live_history_seconds
        #: sibling-aware fill sourcing; set via :meth:`attach_directory`
        self.directory: Optional[EdgeDirectory] = None
        self.http_client = HTTPClient(network, host)
        #: set by :meth:`drain`: the relay stops admitting viewers
        #: (directory entries report unavailable) while live sessions
        #: hand off — but *replica* opens stay admitted, so successors
        #: can warm up from this edge instead of re-filling from origin
        self.draining = False
        #: point -> upstream replica session (exactly one per local point)
        self._upstream: Dict[str, _UpstreamRef] = {}
        self._fills: Dict[str, _FillState] = {}
        #: broadcast points whose upstream attach is in flight — a
        #: concurrent open waits on the attach instead of duplicating it
        self._pending_broadcasts: Set[str] = set()
        #: point -> cache key of the run last filled for it — the disk
        #: index beside the cache: it lets a viewer arriving while the
        #: origin is *unreachable* (describe impossible) still be served
        #: the cached run instead of refused. Like the cache, it survives
        #: crash/restart — it models on-disk metadata, not process state.
        self._cache_keys: Dict[str, str] = {}
        #: (upstream url, session id) pairs whose close never reached the
        #: upstream (edge crash, upstream outage) — retried until one
        #: lands, so no upstream's session table or QoS channels leak
        #: across edge faults
        self._orphan_upstream: List[Tuple[str, int]] = []
        self._releasing: Set[str] = set()
        #: point -> active live feed id (for live.feed/live.feed_end)
        self._live_feeds: Dict[str, str] = {}
        #: point -> sequences already appended to the local live stream.
        #: The upstream deliver path is not duplicate-free: a feed
        #: migrated after parent failover receives overlapping catch-up
        #: history, and the same repair can be forwarded twice — the
        #: local stream fans out to every viewer, so it must append each
        #: sequence exactly once
        self._live_seen: Dict[str, Set[int]] = {}
        self._feed_ids = itertools.count(1)
        #: sequences super()._repair_entry could not serve locally during
        #: the current _handle_nak call — forwarded upstream afterwards
        self._nak_forward: Optional[List[int]] = None

    def attach_directory(self, directory: EdgeDirectory) -> None:
        """Enable tree fills: consult ``directory`` for sibling/parent
        sources and advertise the runs this relay holds (including
        evictions, via the cache's ``on_evict`` hook)."""
        self.directory = directory
        self.cache.on_evict = self._on_cache_evict
        for point, key in self._cache_keys.items():
            if key in self.cache:
                directory.record_fill(self.name, point)

    def _on_cache_evict(self, key: str) -> None:
        if self.directory is None:
            return
        for point, cache_key in self._cache_keys.items():
            if cache_key == key:
                self.directory.forget_fill(self.name, point)

    # ------------------------------------------------------------------
    # upstream control plane
    # ------------------------------------------------------------------

    def _control_at(self, url: str, action: str, **fields) -> Any:
        response = self.http_client.post(
            f"{url}/control/{action}", body=fields
        )
        if not response.ok:
            raise PublishError(
                f"upstream {action} at {url} failed: "
                f"{response.status} {response.body}"
            )
        return response.body

    def _control_upstream(self, action: str, **fields) -> Any:
        return self._control_at(self.origin_url, action, **fields)

    def _open_upstream(
        self,
        url: str,
        name: str,
        deliver: Callable[[DataPacket], None],
        *,
        token: Optional[FillToken] = None,
        budget_rid: Optional[str] = None,
    ) -> _UpstreamRef:
        fields: Dict[str, Any] = {
            "point": name, "deliver": deliver, "replica": True,
        }
        if token is not None:
            fields.update(token.wire())
        body = self._control_at(url, "open", **fields)
        return _UpstreamRef(
            url, urlparse(url).hostname, body["session_id"],
            body.get("recovery_sink"), budget_rid,
        )

    def _nak_upstream(
        self, ref: Optional[_UpstreamRef], sequences: Sequence[int]
    ) -> None:
        if ref is None or ref.sink is None or ref.host is None or not sequences:
            return
        if ref.channel is None:
            link = self.network.link(self.host, ref.host)
            ref.channel = DatagramChannel(link, ref.sink)
        for i in range(0, len(sequences), 64):
            ref.channel.send(Message(
                NakRequest(ref.session_id, tuple(sequences[i:i + 64])),
                NAK_WIRE_SIZE,
            ))
        self.recovery_stats.inc("upstream_naks")

    def _close_ref(self, ref: _UpstreamRef) -> None:
        if ref.abandoned:
            # the monitor declared this upstream dead and settled both
            # sides already; a close round-trip would only stall this
            # frame on a host that cannot answer
            self.cache.counters.inc("dead_upstream_closes_skipped")
            return
        try:
            # a non-OK answer means the upstream already dropped the
            # session (crash wiped it) — nothing left to close either way
            self.http_client.post(
                f"{ref.url}/control/close",
                body={"session_id": ref.session_id},
            )
        except HTTPError:
            self._orphan_upstream.append((ref.url, ref.session_id))

    def _release_budget(self, ref: _UpstreamRef) -> None:
        if ref.budget_rid is not None and self.backbone is not None:
            self.backbone.release(ref.budget_rid)
            ref.budget_rid = None

    # ------------------------------------------------------------------
    # fill: replicate a point from sibling / parent / origin
    # ------------------------------------------------------------------

    def prefetch(self, name: str) -> None:
        """Warm the relay: replicate ``name`` before any client asks."""
        self._ensure_local(name)

    def _drop_superseded(self, name: str, old_key: str) -> None:
        """Retire a pre-republish run unless another point still needs it
        (LOD variants can share a deduped run)."""
        for point, key in self._cache_keys.items():
            if point != name and key == old_key:
                return
        self.cache.remove(old_key, counter="superseded_runs_dropped")

    # ------------------------------------------------------------------
    # republish invalidation (pushed by the origin publisher)
    # ------------------------------------------------------------------

    def invalidate_point(self, name: str, cache_key: Optional[str] = None) -> bool:
        """Eagerly drop a stale run after a republish.

        ``cache_key`` (when given) is the *new* authoritative key: a run
        already matching it is fresh and kept. Everything else held for
        the point — the cached run, the local publishing point, an
        in-flight fill of the old generation — is torn down, so the next
        viewer refills the new content instead of riding stale bytes.
        Returns True when anything stale was actually dropped.
        """
        held = self._cache_keys.get(name)
        if held is not None and cache_key is not None and held == cache_key:
            return False
        dropped = False
        fill = self._fills.get(name)
        if fill is not None and not fill.done and (
            cache_key is None or fill.cache_key != cache_key
        ):
            # a fill of the old generation is mid-flight: abort it so the
            # stale-source gate (origin re-describe) restarts it fresh
            fill.attempt_failed = True
            fill.exhausted = True
            self.cache.counters.inc("stale_fill_aborted")
            dropped = True
        if held is not None:
            if self.cache.remove(held):
                dropped = True
            del self._cache_keys[name]
        point = self.points.get(name)
        if point is not None and not point.broadcast:
            self.unpublish(name)
            dropped = True
        if self.directory is not None:
            self.directory.forget_fill(self.name, name)
        if dropped and self.tracer is not None:
            self.tracer.event(
                "cache.invalidate",
                edge=self.name, point=name,
                stale_key=held, fresh_key=cache_key,
            )
        return dropped

    def _serve_stale(self, name: str) -> bool:
        """Publish ``name`` from the cached run, if the disk holds one.

        No upstream is reachable, so no replica session is registered —
        the upstream learns about this replica (if it ever comes back)
        through the ordinary next fill or shutdown path.
        """
        cache_key = self._cache_keys.get(name)
        cached = self.cache.lookup(cache_key) if cache_key is not None else None
        if cached is None:
            return False
        self.publish(name, cached)
        self.cache.counters.inc("stale_serves")
        if self.directory is not None:
            self.directory.record_fill(self.name, name)
        return True

    def _ensure_local(
        self, name: str, token: Optional[FillToken] = None
    ) -> None:
        """Make ``name`` a local publishing point (fill if needed).

        ``token`` is the fill token a *tree* request carried; ``None``
        for viewer-triggered fills. A relay already in the token's path
        refuses — that, plus the hop limit, is the loop protection.
        """
        if self.crashed:
            raise SessionError("server is down")
        self._retry_orphans()
        if token is not None and self.name in token.path:
            self.cache.counters.inc("fill_refused_loop")
            if self.tracer is not None:
                self.tracer.event(
                    "edge.fill_refused",
                    edge=self.name, point=name,
                    reason="loop", path=list(token.path),
                )
            raise PublishError(
                f"relay {self.name}: fill loop refused "
                f"(path {'>'.join(token.path)})"
            )
        if name in self.points:
            return
        fill = self._fills.get(name)
        if fill is not None:
            # a concurrent request for the same point: ride the fill
            # already in flight instead of starting a second one
            self._ride_fill(fill, name)
            return
        if name in self._pending_broadcasts:
            self._ride_broadcast_attach(name)
            return
        self._begin_fill(name, token)

    def _ride_broadcast_attach(self, name: str) -> None:
        """Wait (re-entrant stepping) on another frame's in-flight
        broadcast attach instead of opening a duplicate upstream feed."""
        simulator = self.simulator
        deadline = simulator.now + self.fill_timeout
        while (
            name in self._pending_broadcasts
            and name not in self.points
            and not self.crashed
            and simulator.now < deadline
        ):
            if simulator.peek_time() is None:
                break
            simulator.step()
        if name not in self.points:
            raise PublishError(f"broadcast attach of {name!r} failed")

    def _describe_source(
        self, url: str, name: str, token: Optional[FillToken]
    ) -> Optional[Dict[str, Any]]:
        query = "replica=1" if token is None else f"replica=1&{token.query()}"
        try:
            response = self.http_client.get(f"{url}/lod/{name}?{query}")
        except HTTPError:
            return None
        if not response.ok:
            return None
        return response.body

    def _current_parent_url(self) -> Optional[str]:
        """This relay's regional upstream right now, or ``None``.

        The directory's parent slot wins over the constructor-time
        ``parent_url`` so a failover promotion is picked up by every
        leaf without reconfiguration, and a parent marked down (or a
        region fallen flat) yields ``None`` — never a dead upstream.
        """
        if self.is_parent:
            return None
        if self.directory is not None and self.region is not None:
            pname = self.directory.parent_name(self.region)
            if pname is None or pname == self.name:
                return None  # region fell flat, or we *are* the parent
            if not self.directory.can_serve_fill(pname):
                return None  # down/crashed parent is no upstream at all
            return self.directory.edge_url(pname)
        return self.parent_url

    def _data_sources(
        self, name: str, token: FillToken
    ) -> List[Tuple[str, str]]:
        """Ordered fill plan: siblings holding the run, then the
        regional parent (which absorbs fan-in), then the origin."""
        sources: List[Tuple[str, str]] = []
        if self.directory is not None:
            for peer in self.directory.fill_sources(self.name, name):
                if peer in token.path:
                    continue  # asking it back would only bounce (loop)
                url = self.directory.edge_url(peer)
                if url != self.origin_url:
                    sources.append(("sibling", url))
        parent = self._current_parent_url()
        if parent:
            sources.append(("parent", parent))
        sources.append(("origin", self.origin_url))
        return sources

    def _begin_fill(self, name: str, token: Optional[FillToken]) -> None:
        out_token = (
            token.descend(self.name) if token is not None
            else FillToken((self.name,), self.fill_hop_limit)
        )
        # always describe the origin first: the authoritative manifest
        # (cache key, sequence list) is what gates stale replicas out of
        # the fill plan, and a describe is control plane — zero media
        authority = self._describe_source(self.origin_url, name, None)
        source_plan: Optional[List[Tuple[str, str]]] = None
        fallback_parent = self._current_parent_url()
        if authority is None and token is None and fallback_parent:
            # the origin is unreachable *from here* — the regional
            # parent may still reach it, and describing the parent both
            # answers and warms it; its manifest becomes the authority
            authority = self._describe_source(fallback_parent, name, out_token)
            if authority is not None:
                source_plan = [("parent", fallback_parent)]
        if authority is None:
            # nothing upstream can even be described — but if a previous
            # fill left the run on disk, serve stale rather than refuse
            if self._serve_stale(name):
                return
            raise PublishError(
                f"origin describe of {name!r} failed: unreachable or refused"
            )
        # the describe round-trip stepped the simulator re-entrantly: a
        # concurrent open may have published the point (or registered a
        # fill) while this frame was blocked — re-check before acting
        if name in self.points:
            return
        racing = self._fills.get(name)
        if racing is not None:
            self._ride_fill(racing, name)
            return
        header = authority["header"]
        if authority.get("broadcast"):
            if name in self._pending_broadcasts:
                self._ride_broadcast_attach(name)
                return
            self._pending_broadcasts.add(name)
            try:
                self._attach_broadcast(name, header, token)
            finally:
                self._pending_broadcasts.discard(name)
            return
        cache_key = authority["cache_key"]
        # a republish changed the point's content address: remember the
        # old run so the refill (or cache hit below) retires it — the
        # budget must never carry two generations of one point
        prev_key = self._cache_keys.get(name)
        superseded = prev_key if prev_key and prev_key != cache_key else None
        self._cache_keys[name] = cache_key
        cached = self.cache.lookup(cache_key)
        if cached is not None:
            if superseded is not None:
                self._drop_superseded(name, superseded)
            # the run is already on local disk: the origin sees only a
            # control-plane open (zero media egress), kept so the origin
            # still knows one replica session per edge per point.
            # Publish BEFORE the (re-entrant) upstream registration so
            # opens landing inside that round-trip see the point and
            # bail at _ensure_local instead of double-publishing.
            self.publish(name, cached)
            if self.directory is not None:
                self.directory.record_fill(self.name, name)
            try:
                ref = self._open_upstream(
                    self.origin_url, name, self._drop_packet
                )
            except (HTTPError, PublishError):
                # origin unreachable/down but the content is local: serve
                # stale rather than refusing viewers
                self.cache.counters.inc("stale_serves")
            else:
                if name in self.points and name not in self._upstream:
                    self._upstream[name] = ref
                else:
                    # the point was released while we were registering:
                    # settle the now-pointless upstream session right away
                    self._close_ref(ref)
            return
        if token is not None:
            # a fill *on behalf of* another relay: only regional parents
            # absorb those. A leaf serves tokened requests from local
            # state (checked above) or refuses — cascades stay finite.
            if not self.is_parent:
                self.cache.counters.inc("fill_refused_cascade")
                raise PublishError(
                    f"relay {self.name}: fill of {name!r} on behalf of "
                    f"{token.path[0]!r} refused (not a regional parent)"
                )
            if token.hops <= 0:
                self.cache.counters.inc("fill_refused_hops")
                raise PublishError(
                    f"relay {self.name}: fill of {name!r} refused — hop "
                    f"limit exhausted (path {'>'.join(token.path)})"
                )
        bitrate = max(float(authority.get("bitrate", 0.0)), 1.0)
        fill = _FillState(name, header, cache_key, tuple(authority["sequences"]))
        fill.supersedes = superseded
        self._fills[name] = fill
        if self.directory is not None:
            # advertise immediately: a sibling missing concurrently finds
            # this in-flight fill and rides it instead of duplicating it
            self.directory.record_fill(self.name, name, pending=True)
        try:
            plan = source_plan if source_plan is not None else \
                self._data_sources(name, out_token)
            for kind, url in plan:
                if self.crashed or fill.exhausted:
                    break
                if self._fill_from(fill, kind, url, bitrate, out_token):
                    if self.directory is not None and fill.cache_key in self.cache:
                        self.directory.record_fill(self.name, name)
                    return
            fill.exhausted = True
            raise PublishError(
                f"edge fill of {name!r} failed: no upstream source delivered"
            )
        finally:
            self._fills.pop(name, None)
            if not fill.done:
                if self.directory is not None:
                    self.directory.forget_fill(self.name, name)
                # a failed fill must not leave a cache-key claim with no
                # run behind it (e.g. the generation was torn down at the
                # origin mid-fill): the next ensure re-describes fresh
                if (
                    self._cache_keys.get(name) == fill.cache_key
                    and fill.cache_key not in self.cache
                ):
                    del self._cache_keys[name]

    def _fill_from(
        self,
        fill: _FillState,
        kind: str,
        url: str,
        bitrate: float,
        token: FillToken,
    ) -> bool:
        """Attempt one upstream source; True when the fill landed."""
        name = fill.point
        upstream_host = urlparse(url).hostname
        if kind != "origin":
            # verify the source against the origin's authoritative cache
            # key before any media moves: a sibling left holding an old
            # version of a republished run is rejected up front (the
            # assembled-bytes fingerprint gate stays as the second line)
            check = self._describe_source(url, name, token)
            if check is None:
                self.cache.counters.inc("fill_source_unreachable")
                return False
            if check.get("cache_key") != fill.cache_key:
                self.cache.counters.inc("stale_source_rejected")
                if self.tracer is not None:
                    self.tracer.event(
                        "edge.fill_refused",
                        edge=self.name, point=name, source=kind,
                        upstream=upstream_host, reason="stale",
                    )
                return False
            if fill.done or name in self.points:
                return name in self.points  # landed during the describe
        rid: Optional[str] = None
        if self.backbone is not None:
            try:
                rid = self.backbone.reserve(
                    (self.host, upstream_host or url), bitrate,
                    owner=f"{self.name}:{name}",
                )
            except BudgetError:
                self.cache.counters.inc("fill_budget_refused")
                if self.tracer is not None:
                    self.tracer.event(
                        "edge.fill_refused",
                        edge=self.name, point=name, source=kind,
                        upstream=upstream_host, reason="budget",
                    )
                return False
        if self.tracer is not None:
            self.tracer.event(
                "edge.fill_request",
                edge=self.name, point=name, source=kind,
                upstream=upstream_host, path=list(token.path),
                hops=token.hops,
            )
        fill.attempt_failed = False
        try:
            ref = self._open_upstream(
                url, name, functools.partial(self._on_fill_packet, fill),
                token=token, budget_rid=rid,
            )
        except (HTTPError, PublishError):
            if rid is not None and self.backbone is not None:
                self.backbone.release(rid)
            self.cache.counters.inc("fill_source_refused")
            return False
        fill.session_id = ref.session_id
        self._upstream[name] = ref
        try:
            # whole-file fast start: burst the entire run across the
            # backbone instead of pacing it out in real time
            self._control_at(
                url, "play",
                session_id=ref.session_id,
                burst_factor=self.fill_burst,
                burst_seconds=(
                    fill.header.file_properties.duration_ms / 1000.0 + 1.0
                ),
            )
            self._await_fill(fill, ref)
        except (HTTPError, PublishError):
            fill.attempt_failed = True
        if fill.done and name in self.points:
            # the burst is over: give the link its bandwidth back — the
            # replica session stays open but is control plane only
            self._release_budget(ref)
            self.cache.counters.inc(f"{kind}_fills")
            return True
        # this source is dead, stale, or incomplete: tear it down and
        # let the caller try the next one. After a local crash the close
        # cannot be sent from here — crash() already orphaned the ref
        # for the heartbeat monitor (or a restart) to settle.
        if self._upstream.get(name) is ref:
            del self._upstream[name]
        self._release_budget(ref)
        if not self.crashed:
            self._close_ref(ref)
        fill.session_id = None
        return False

    @staticmethod
    def _drop_packet(_packet: DataPacket) -> None:
        """Deliver sink of a register-only (cache hit) replica session."""

    def _on_fill_packet(self, fill: _FillState, packet: DataPacket) -> None:
        if fill.done or fill.exhausted or fill.attempt_failed:
            return
        fill.got[packet.sequence] = packet
        if len(fill.got) == len(fill.sequences):
            # completion must happen *here*, in the deliver callback: a
            # nested waiter's _ride_fill (re-entrant simulator stepping)
            # can only proceed once the point is actually published
            self._complete_fill(fill)

    def _complete_fill(self, fill: _FillState) -> None:
        asf = ASFFile(
            header=fill.header,
            packets=[fill.got[s] for s in fill.sequences],
        )
        if asf.fingerprint() != fill.cache_key:
            fill.attempt_failed = True
            self.cache.counters.inc("fill_integrity_failures")
            return
        if fill.supersedes is not None:
            # retire the pre-republish run *before* charging the new one:
            # dedupe by cache key, so the byte budget never counts both
            # generations of the point at once
            self._drop_superseded(fill.point, fill.supersedes)
            fill.supersedes = None
        stored = self.cache.store(fill.cache_key, asf)
        if not stored and self.directory is not None:
            # admission turned the run away: it still serves this fill's
            # viewers (published below) but is not on disk, so stop
            # advertising it as a fill source
            self.directory.forget_fill(self.name, fill.point)
        if fill.point not in self.points and not self.crashed:
            self.publish(fill.point, asf)
        fill.done = True
        self.cache.counters.inc("fills")
        if self.tracer is not None:
            self.tracer.event(
                "edge.fill",
                edge=self.name,
                point=fill.point,
                packets=len(fill.sequences),
            )

    def _await_fill(self, fill: _FillState, ref: _UpstreamRef) -> None:
        """Drive the simulator until the current attempt completes or
        gives up (driver side).

        Re-entrant stepping, the same pattern HTTPClient.fetch uses. Lost
        fill packets are recovered by periodic upstream NAK rounds — the
        upstream repairs from its shared packet cache even after the
        burst finished (FINISHED sessions still answer NAKs). A timeout
        or a dry event queue fails only *this attempt*; the caller moves
        to the next source in the plan.
        """
        simulator = self.simulator
        deadline = simulator.now + self.fill_timeout
        next_nak = simulator.now + self.fill_nak_interval
        rounds = 0
        while not fill.done and not fill.attempt_failed:
            if self.crashed or simulator.now >= deadline:
                fill.attempt_failed = True
                break
            nxt = simulator.peek_time()
            if nxt is None or nxt > next_nak or simulator.now >= next_nak:
                missing = fill.missing()
                if missing and rounds < self.fill_nak_rounds:
                    self._nak_upstream(ref, missing)
                    rounds += 1
                    next_nak = simulator.now + self.fill_nak_interval
                    continue  # the NAK just scheduled wire events
                if nxt is None or nxt > deadline:
                    fill.attempt_failed = True
                    break
                next_nak = max(next_nak, simulator.now) + self.fill_nak_interval
            simulator.step()

    def _ride_fill(self, fill: _FillState, name: str) -> None:
        """Wait on someone else's in-flight fill (re-entrant stepping).

        The rider never mutates the fill — the driver owns retries and
        source switching — but it *does* send NAK rounds for missing
        packets: inside a nested frame the driver sits below us on the
        stack and cannot act until we return. The deadline is generous
        enough to span the driver walking its whole source plan.
        """
        simulator = self.simulator
        deadline = simulator.now + self.fill_timeout * (self.fill_hop_limit + 2)
        next_nak = simulator.now + self.fill_nak_interval
        rounds = 0
        while not fill.done and not fill.exhausted:
            if self.crashed or simulator.now >= deadline:
                break
            nxt = simulator.peek_time()
            if nxt is None or nxt > next_nak or simulator.now >= next_nak:
                missing = fill.missing()
                if missing and rounds < self.fill_nak_rounds:
                    self._nak_upstream(self._upstream.get(name), missing)
                    rounds += 1
                    next_nak = simulator.now + self.fill_nak_interval
                    continue
                if nxt is None or nxt > deadline:
                    break
                next_nak = max(next_nak, simulator.now) + self.fill_nak_interval
            simulator.step()
        if fill.done and name in self.points:
            return
        raise PublishError(f"edge fill of {name!r} failed")

    # -- broadcast passthrough ------------------------------------------

    def _attach_broadcast(
        self, name: str, header, token: Optional[FillToken]
    ) -> None:
        """Republish an upstream broadcast as a local live stream.

        In a relay tree the feed is pulled from the regional parent, so
        it enters each region exactly once and fans out parent →
        children: the origin carries one live session per region, not
        one per edge. The parent's copy of the feed is one shared pacing
        path — every child session rides the same event-driven fan-out.
        """
        if token is not None and not self.is_parent:
            self.cache.counters.inc("fill_refused_cascade")
            raise PublishError(
                f"relay {self.name}: broadcast attach of {name!r} on "
                f"behalf of {token.path[0]!r} refused (not a regional parent)"
            )
        upstream_url = self._current_parent_url() or self.origin_url
        out_token = (
            token.descend(self.name) if token is not None
            else FillToken((self.name,), self.fill_hop_limit)
        )
        upstream_host = urlparse(upstream_url).hostname
        rid: Optional[str] = None
        if self.backbone is not None:
            # a live feed occupies its tree link for as long as it runs;
            # if the backbone refuses, the attach is refused — honest
            # admission beats oversubscribed multicast. BudgetError
            # propagates to the caller (the viewer or child is refused).
            rid = self.backbone.reserve(
                (self.host, upstream_host or upstream_url),
                max(float(header.total_bitrate), 1.0),
                owner=f"{self.name}:{name}:live",
            )
        stream = ASFLiveStream(header)
        try:
            ref = self._open_upstream(
                upstream_url, name,
                functools.partial(self._on_broadcast_packet, name, stream),
                token=out_token, budget_rid=rid,
            )
        except (HTTPError, PublishError):
            if rid is not None and self.backbone is not None:
                self.backbone.release(rid)
            raise
        self._upstream[name] = ref
        self.publish(name, stream)
        self._control_at(upstream_url, "play", session_id=ref.session_id)
        feed_id = f"{self.name}:{name}#{next(self._feed_ids)}"
        self._live_feeds[name] = feed_id
        if self.tracer is not None:
            self.tracer.event(
                "live.feed",
                feed=feed_id,
                edge=self.name,
                region=self.region,
                point=name,
                upstream=upstream_host,
                # the one-feed-per-region invariant audits exactly the
                # feeds that cross the region boundary (origin-fed)
                enters_region=upstream_url == self.origin_url,
            )

    def _on_broadcast_packet(
        self, name: str, stream: ASFLiveStream, packet: DataPacket
    ) -> None:
        if stream.closed:
            return
        seen = self._live_seen.setdefault(name, set())
        if packet.sequence in seen:
            self.cache.counters.inc("live_duplicates_dropped")
            return
        # a sequence jump past everything seen so far marks packets the
        # upstream never sent us — after a feed migration the successor
        # resumes at its own head, so the crash-to-detection gap shows
        # up here as the first post-attach packet overshooting the
        # contiguous tail.  NAK the hole; repairs cascade up the tree.
        if seen:
            tail = max(seen)
            if packet.sequence > tail + 1:
                gap = [
                    s for s in range(tail + 1, packet.sequence)
                    if s not in seen
                ]
                ref = self._upstream.get(name)
                if gap and ref is not None:
                    self._nak_upstream(ref, gap)
                    self.cache.counters.inc("live_gap_naks", len(gap))
        seen.add(packet.sequence)
        stream.append([packet])
        if self.live_history_seconds > 0.0:
            self.cache.append_live(
                name, (packet,),
                horizon_ms=self.live_history_seconds * 1000.0,
                now_ms=self.simulator.now * 1000.0,
            )

    def _end_live_feed(self, point: str) -> None:
        feed_id = self._live_feeds.pop(point, None)
        if feed_id is not None and self.tracer is not None:
            self.tracer.event(
                "live.feed_end",
                feed=feed_id,
                edge=self.name,
                region=self.region,
                point=point,
            )

    def _serve_live_history(self, session: StreamSession) -> None:
        """Bounded catch-up for a late joiner on a live point: one train
        of the last ``live_history_seconds`` of already-fanned-out
        packets. Future-scheduled packets are excluded — the ordinary
        fan-out will deliver them exactly once."""
        if self.live_history_seconds <= 0.0 or self.crashed:
            return
        now_ms = self.simulator.now * 1000.0
        since = now_ms - self.live_history_seconds * 1000.0
        # strictly-past packets only: a packet whose fan-out lands at
        # exactly *now* may still be scheduled for this session, and a
        # missed boundary packet is NAK-recoverable while a duplicate
        # is not filterable downstream
        tail = [
            p for p in self.cache.live_tail(session.point, since_ms=since)
            if p.send_time_ms < now_ms
        ]
        if not tail:
            return
        packets: List[DataPacket] = []
        wire_size = 0
        for packet in tail:
            entry = self._thin_for(session, packet)
            if entry is not None:
                packets.append(entry[0])
                wire_size += entry[1]
        if not packets:
            return
        self._send_train(session, packets, wire_size)
        self.cache.counters.inc("live_catchup_trains")
        self.cache.counters.inc("live_catchup_packets", len(packets))

    # ------------------------------------------------------------------
    # local session lifecycle (coalescing + two-hop teardown)
    # ------------------------------------------------------------------

    def open_session(
        self,
        name: str,
        client_host: str,
        deliver: Callable[[DataPacket], None],
        *,
        replica: bool = False,
        multiplicity: int = 1,
        fill_token: Optional[FillToken] = None,
    ) -> StreamSession:
        if self.crashed:
            raise SessionError("server is down")
        if self.draining and not replica:
            # viewers are refused, but replica opens stay admitted: a
            # drain hands its *upstream* role off by letting successors
            # fill from this edge while it still holds the runs
            raise SessionError("edge is draining")
        self._ensure_local(name, token=fill_token if replica else None)
        return super().open_session(
            name, client_host, deliver, replica=replica,
            multiplicity=multiplicity,
        )

    def close_session(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        point = session.point
        super().close_session(session_id)
        self._maybe_release_point(point)

    def _maybe_release_point(self, point: str) -> None:
        """Last local client gone: retire the replica and free upstream."""
        if point in self._releasing or point in self._fills:
            return
        if point not in self.points:
            return
        if self.sessions.sessions_for_point(point):
            return
        self.unpublish(point)

    def unpublish(self, name: str) -> None:
        nested = name in self._releasing
        self._releasing.add(name)
        try:
            super().unpublish(name)
        finally:
            if not nested:
                self._releasing.discard(name)
        if not nested:
            self._close_upstream(name)
            self.cache.drop_live(name)
            self._live_seen.pop(name, None)

    def _close_upstream(self, point: str) -> None:
        ref = self._upstream.pop(point, None)
        if ref is None:
            return
        self._release_budget(ref)
        self._end_live_feed(point)
        self._close_ref(ref)

    def _retry_orphans(self) -> None:
        if not self._orphan_upstream:
            return
        pending, self._orphan_upstream = self._orphan_upstream, []
        for url, sid in pending:
            try:
                self.http_client.post(
                    f"{url}/control/close", body={"session_id": sid}
                )
            except HTTPError:
                # that upstream is still unreachable; keep for next try
                self._orphan_upstream.append((url, sid))

    def shutdown(self) -> None:
        """Clean teardown for tests: drain clients, retire points, settle
        upstream orphans — after this no upstream holds anything of ours."""
        for session in list(self.sessions.all()):
            self.close_session(session.session_id)
        for point in list(self.points):
            self.unpublish(point)
        self._retry_orphans()

    # ------------------------------------------------------------------
    # graceful drain with warm session hand-off
    # ------------------------------------------------------------------

    def drain(self, directory: "EdgeDirectory") -> Dict[str, int]:
        """Gracefully decommission: hand live sessions to ring successors.

        The crash path costs each viewer a stall-watchdog timeout plus a
        seek+replay reconnect; a *planned* removal shouldn't. ``drain``
        first stops admitting viewers (the directory reports this edge
        unavailable), then for every live streaming session transfers
        the delivery cursor — point, packet-sequence frontier, burst
        parameters, effectively the pacing-group position — to the first
        available successor in :meth:`EdgeDirectory.spill_order`, via the
        successor's ``/control/adopt`` route. The successor opens (and
        QoS-reserves) its own session starting at exactly the next
        unsent packet, the client is re-pointed through its ``relocate``
        callback, and only then is the local session closed (releasing
        this edge's reservation) — no double-reservation window on a
        single link, no gap or overlap in the packet stream, ~0 rebuffer.

        The *upstream* side migrates warm too: adopting a session the
        successor does not hold locally triggers its ordinary fill, and
        because a draining edge still answers **replica** opens (and the
        holder registry still lists it), the successor fills from *this
        edge* over the peer mesh instead of re-filling cold from the
        origin — the draining edge's backbone work is inherited, not
        repeated.

        If the successor refuses or dies mid-transfer the session falls
        back to the crash path: it is closed locally and the client's
        stall watchdog drives an ordinary reconnect. Either way every
        drained session resolves exactly once, an invariant
        :class:`~repro.obs.checker.TraceChecker` audits via the
        ``drain.begin`` / ``session.handoff`` /
        ``session.handoff_fallback`` / ``drain.end`` records.
        """
        if self.crashed:
            raise SessionError("cannot drain a crashed edge")
        if self.draining:
            return {"handoffs": 0, "fallbacks": 0}
        self.draining = True
        candidates = [
            session for session in self.sessions.all()
            if session.state is SessionState.STREAMING and not session.replica
        ]
        if self.tracer is not None:
            self.tracer.event(
                "drain.begin",
                edge=self.name,
                sessions=[self._sid(s.session_id) for s in candidates],
            )
        handoffs = fallbacks = 0
        for session in candidates:
            if self._handoff(session, directory):
                handoffs += 1
            else:
                fallbacks += 1
        if self.tracer is not None:
            self.tracer.event(
                "drain.end",
                edge=self.name,
                handoffs=handoffs,
                fallbacks=fallbacks,
            )
        # whatever remains (paused/finished/connecting sessions, idle
        # points, upstream replicas) takes the ordinary teardown path
        self.shutdown()
        return {"handoffs": handoffs, "fallbacks": fallbacks}

    def _handoff(self, session: StreamSession, directory: "EdgeDirectory") -> bool:
        """Transfer one session to its ring successor; True on success."""
        # freeze delivery first: leaving the pacing group syncs
        # session.packet_cursor to the group frontier, and nothing may be
        # sent from here while the transfer is in flight
        self._stop_session_pacing(session)
        target: Optional[str] = None
        for name in directory.spill_order(f"{session.client_host}|{session.point}"):
            if name != self.name and directory.is_available(name):
                target = name
                break
        response = None
        url = None
        if target is not None and session.relocate is not None:
            url = directory.edge_url(target)
            try:
                response = self.http_client.post(
                    f"{url}/control/adopt",
                    body={
                        "point": session.point,
                        "client_host": session.client_host,
                        "deliver": session.deliver,
                        "relocate": session.relocate,
                        "multiplicity": session.multiplicity,
                        "cursor": session.packet_cursor,
                        "burst_factor": getattr(session, "_burst_factor", 1.0),
                        "burst_window_ms": getattr(session, "_burst_window_ms", 0.0),
                    },
                )
            except HTTPError:
                # the successor died mid-transfer: fall back to the
                # crash path rather than stranding the viewer
                response = None
        if response is not None and response.ok:
            body = response.body
            if self.tracer is not None:
                self.tracer.event(
                    "session.handoff",
                    edge=self.name,
                    to_edge=target,
                    session=self._sid(session.session_id),
                    to=body.get("trace_session"),
                    point=session.point,
                )
            session.relocate({
                "url": url,
                "session_id": body["session_id"],
                "recovery_sink": body.get("recovery_sink"),
                "streams": body.get("streams"),
                "selected_video": body.get("selected_video"),
            })
            self.close_session(session.session_id)
            return True
        if self.tracer is not None:
            self.tracer.event(
                "session.handoff_fallback",
                edge=self.name,
                session=self._sid(session.session_id),
                point=session.point,
            )
        self.close_session(session.session_id)
        return False

    def take_upstream_orphans(self) -> List[Tuple[str, int]]:
        """Hand pending orphaned ``(upstream url, session id)`` pairs to
        a settling agent (the heartbeat monitor, at suspicion time) and
        forget them."""
        orphans, self._orphan_upstream = self._orphan_upstream, []
        return orphans

    # ------------------------------------------------------------------
    # region parent failover (downstream side)
    # ------------------------------------------------------------------

    def upstream_crashed(
        self, dead_url: str, *, migrate_to: Optional[str] = None
    ) -> Dict[str, int]:
        """Settle every reference this relay holds *at* a dead upstream.

        The downstream direction of orphan settlement, driven by the
        heartbeat monitor at suspicion time: in-flight fills through the
        dead upstream abort immediately (their drivers re-plan through
        the sibling → origin cascade on their own stack frame), live
        feeds re-attach to ``migrate_to`` — the promoted parent or the
        origin — keeping the local stream and its viewers' clocks
        untouched, and plain replica refs are simply settled (the dead
        upstream's session table died with it, so there is nothing to
        close remotely). ``migrate_to=None`` drops migrated-less live
        points instead; viewers reconnect via their stall watchdogs.
        """
        dead_url = dead_url.rstrip("/")
        out = {
            "fills_aborted": 0, "feeds_migrated": 0,
            "feeds_dropped": 0, "refs_settled": 0,
        }
        if self.crashed:
            return out
        driving: Set[str] = set()
        for point, fill in self._fills.items():
            ref = self._upstream.get(point)
            if ref is not None and ref.url == dead_url and not fill.done:
                # the driver frame owns this ref's teardown: flagging the
                # attempt failed breaks its re-entrant wait loop, which
                # releases the budget and moves to the next plan source
                # (skipping the close round-trip — a silent host would
                # stall the driver for a full fetch timeout)
                fill.attempt_failed = True
                ref.abandoned = True
                driving.add(point)
                out["fills_aborted"] += 1
                self.cache.counters.inc("fill_upstream_crashed")
        for point, ref in list(self._upstream.items()):
            if ref.url != dead_url or point in driving:
                continue
            del self._upstream[point]
            self._release_budget(ref)
            out["refs_settled"] += 1
            if point not in self._live_feeds:
                continue  # register-only replica: the cached copy serves on
            self._end_live_feed(point)
            migrated = (
                migrate_to is not None
                and point in self.points
                and self._reattach_live(point, migrate_to)
            )
            if migrated:
                out["feeds_migrated"] += 1
            elif point in self.points:
                out["feeds_dropped"] += 1
                self.unpublish(point)
        return out

    def _reattach_live(self, point: str, new_url: str) -> bool:
        """Re-attach one live feed to a new upstream after the old died.

        Mirrors the ``/control/adopt`` warm-drain contract from the
        other side: the locally published stream — and with it every
        attached viewer's clock, buffer and pacing group — is untouched;
        only the upstream leg is rebuilt. The new upstream's bounded
        live history covers the detection gap as a catch-up train and
        NAK forwarding repairs the rest.
        """
        new_url = new_url.rstrip("/")
        point_obj = self.points.get(point)
        if point_obj is None or not point_obj.broadcast:
            return False
        stream = point_obj.content
        upstream_host = urlparse(new_url).hostname
        rid: Optional[str] = None
        if self.backbone is not None:
            try:
                rid = self.backbone.reserve(
                    (self.host, upstream_host or new_url),
                    max(float(stream.header.total_bitrate), 1.0),
                    owner=f"{self.name}:{point}:live",
                )
            except BudgetError:
                self.cache.counters.inc("feed_migration_budget_refused")
                return False
        token = FillToken((self.name,), self.fill_hop_limit)
        try:
            ref = self._open_upstream(
                new_url, point,
                functools.partial(self._on_broadcast_packet, point, stream),
                token=token, budget_rid=rid,
            )
            self._upstream[point] = ref
            self._control_at(new_url, "play", session_id=ref.session_id)
        except (HTTPError, PublishError):
            if rid is not None and self.backbone is not None:
                self.backbone.release(rid)
            self._upstream.pop(point, None)
            self.cache.counters.inc("feed_migration_failed")
            return False
        feed_id = f"{self.name}:{point}#{next(self._feed_ids)}"
        self._live_feeds[point] = feed_id
        self.cache.counters.inc("live_feeds_migrated")
        if self.tracer is not None:
            self.tracer.event(
                "live.feed",
                feed=feed_id,
                edge=self.name,
                region=self.region,
                point=point,
                upstream=upstream_host,
                enters_region=new_url == self.origin_url,
                migrated=True,
            )
        # gap repair: the catch-up train (served re-entrantly inside the
        # play round-trip above) covers the new upstream's bounded
        # history, but the detection window may be wider — NAK whatever
        # sequence holes remain so the repair cascades up the tree (the
        # new upstream forwards what it lacks itself) and the local
        # stream stays complete for every attached viewer
        seen = self._live_seen.get(point)
        if seen:
            holes = [s for s in range(min(seen), max(seen)) if s not in seen]
            if holes:
                self._nak_upstream(ref, holes)
                self.cache.counters.inc("migration_gap_naks", len(holes))
        return True

    # ------------------------------------------------------------------
    # faults (mirrors the origin MediaServer API)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        if self.crashed:
            return
        for fill in self._fills.values():
            fill.attempt_failed = True
            fill.exhausted = True
        super().crash()
        # the process died before telling its upstreams: those replica
        # sessions are now orphans upstream, settled at restart/shutdown
        # (or by the heartbeat monitor); any backbone reservations and
        # live feeds the process held are gone with it
        for point, ref in list(self._upstream.items()):
            self._release_budget(ref)
            self._end_live_feed(point)
            self._orphan_upstream.append((ref.url, ref.session_id))
        self._upstream.clear()
        # local replicas are process memory; the cache plays the disk, so
        # a restarted edge refills by cache hit instead of origin egress
        for name in list(self.points):
            self._releasing.add(name)
            try:
                super().unpublish(name)
            finally:
                self._releasing.discard(name)
        self._live_seen.clear()

    def restart(self) -> None:
        super().restart()
        self.draining = False
        self._retry_orphans()

    # ------------------------------------------------------------------
    # deferred join (pacing-group aggregation) + live catch-up
    # ------------------------------------------------------------------

    def play(
        self,
        session_id: int,
        *,
        start: float = 0.0,
        burst_factor: float = 1.0,
        burst_seconds: Optional[float] = None,
    ) -> None:
        """Start delivery, deferred to the next ``join_quantum`` boundary.

        Clients arriving within one quantum land on the *same* boundary
        with the same cursor and burst parameters, so they share one
        pacing group — the edge-side half of request coalescing. With
        ``join_quantum == 0`` behaviour is exactly the base class's.
        Broadcast joins start immediately; a late joiner additionally
        receives the bounded live history as a catch-up train.
        """
        session = self.sessions.get(session_id)
        if session.broadcast:
            super().play(
                session_id, start=start, burst_factor=burst_factor,
                burst_seconds=burst_seconds,
            )
            # replica sessions get catch-up too: that is how a late-
            # attaching child edge pulls its parent's history down the
            # tree before the live fan-out takes over
            self._serve_live_history(session)
            return
        if self.join_quantum <= 0.0:
            super().play(
                session_id, start=start, burst_factor=burst_factor,
                burst_seconds=burst_seconds,
            )
            return
        quantum = self.join_quantum
        now = self.simulator.now
        boundary = math.ceil(now / quantum - 1e-9) * quantum
        if boundary <= now + 1e-9:
            super().play(
                session_id, start=start, burst_factor=burst_factor,
                burst_seconds=burst_seconds,
            )
            return

        def deferred() -> None:
            if self.crashed:
                return
            try:
                pending = self.sessions.get(session_id)
            except SessionError:
                return  # closed while waiting for the boundary
            if pending.state not in (
                SessionState.CONNECTING,
                SessionState.PAUSED,
                SessionState.FINISHED,
            ):
                return
            super(EdgeRelay, self).play(
                session_id, start=start, burst_factor=burst_factor,
                burst_seconds=burst_seconds,
            )

        self.simulator.schedule_at(boundary, deferred)

    # ------------------------------------------------------------------
    # NAK forwarding (broadcast holes the relay itself never received)
    # ------------------------------------------------------------------

    def _handle_nak(self, nak: NakRequest) -> None:
        self._nak_forward = []
        try:
            super()._handle_nak(nak)
            pending = self._nak_forward
        finally:
            self._nak_forward = None
        if not pending:
            return
        try:
            session = self.sessions.get(nak.session_id)
        except SessionError:
            return
        upstream = self._upstream.get(session.point)
        if upstream is not None:
            # the repair arrives on the upstream deliver path, lands in
            # the local live history, and fans out to attached clients
            self._nak_upstream(upstream, pending)

    def _repair_entry(
        self, point, session: StreamSession, sequence: int
    ) -> Optional[Tuple[DataPacket, int]]:
        entry = super()._repair_entry(point, session, sequence)
        if entry is None and self._nak_forward is not None and point.broadcast:
            self._nak_forward.append(sequence)
        return entry

    # ------------------------------------------------------------------
    # HTTP control plane (describe proxies unknown points; open carries
    # the fill token)
    # ------------------------------------------------------------------

    def _open_kwargs(self, body: Dict[str, Any]) -> Dict[str, Any]:
        kwargs = super()._open_kwargs(body)
        if kwargs.get("replica"):
            token = FillToken.from_wire(body)
            if token is not None:
                kwargs["fill_token"] = token
        return kwargs

    def _handle_control(self, request: HTTPRequest) -> HTTPResponse:
        # ``invalidate`` is a publisher push, not a session verb: it
        # carries a point + fresh cache key instead of a session_id, so
        # intercept it before the base dispatch parses one
        action = request.path[len("/control/"):]
        if action == "invalidate":
            if self.crashed:
                return HTTPResponse(503, body="server is down")
            body = request.body or {}
            dropped = self.invalidate_point(
                str(body["point"]), body.get("cache_key")
            )
            return HTTPResponse(200, body={"dropped": dropped})
        return super()._handle_control(request)

    def _handle_describe(self, request: HTTPRequest) -> HTTPResponse:
        if self.crashed:
            return HTTPResponse(503, body="server is down")
        name = request.path[len("/lod/"):]
        if name not in self.points:
            token = FillToken.from_wire(request.query)
            try:
                self._ensure_local(name, token=token)
            except (PublishError, SessionError) as exc:
                return HTTPResponse(502, body=f"edge fill failed: {exc}")
            except HTTPError as exc:
                return HTTPResponse(502, body=f"origin unreachable: {exc}")
        return super()._handle_describe(request)


# ----------------------------------------------------------------------
# topology construction
# ----------------------------------------------------------------------


def _make_cache(
    cache_bytes: int,
    cache_admission: bool,
    cache_ttl_seconds: Optional[float],
    admission_seed: int,
) -> PacketRunCache:
    """Per-relay cache (separate machines, separate disks) — with its
    own TinyLFU instance when admission is on, so edges' frequency
    windows are independent."""
    admission = None
    if cache_admission:
        # local import: repro.catalog sits above repro.streaming in the
        # layer order, so the streaming module must not hard-require it
        from ..catalog.admission import TinyLFUAdmission
        admission = TinyLFUAdmission(seed=admission_seed)
    return PacketRunCache(
        max_bytes=cache_bytes,
        admission=admission,
        ttl_seconds=cache_ttl_seconds,
    )


def build_edge_tier(
    network: VirtualNetwork,
    origin: MediaServer,
    edge_hosts: Sequence[str],
    *,
    backbone_bandwidth: float = 50_000_000.0,
    backbone_delay: float = 0.005,
    capacity: Optional[int] = None,
    cache_bytes: int = 64 * 1024 * 1024,
    vnodes: int = 64,
    seed: int = 0,
    port: int = 8080,
    qos_enabled: bool = False,
    pacing_quantum: float = 0.0,
    shared_pacing: bool = True,
    join_quantum: float = 0.0,
    fill_burst: float = 64.0,
    origin_fallback: bool = False,
    sibling_fills: bool = False,
    backbone_budget: Optional[BackboneBudget] = None,
    live_history_seconds: float = 0.0,
    cache_admission: bool = False,
    cache_ttl_seconds: Optional[float] = None,
    admission_seed: int = 0,
    tracer=None,
) -> Tuple[EdgeDirectory, List[EdgeRelay]]:
    """Origin + N edges: backbone links, relays, populated directory.

    Each edge gets its own backbone link to the origin and its own
    :class:`PacketRunCache` (separate machines, separate disks). The
    returned directory places clients; hand it to players (re-route on
    reconnect) and to :meth:`FaultInjector.register_directory
    <repro.net.faults.FaultInjector.register_directory>` (chaos).

    ``sibling_fills=True`` attaches the directory to every relay so
    cache misses fill from sibling edges before the origin; the default
    keeps PR 5's flat origin-only behaviour. For regional parents and
    live multicast use :func:`build_relay_tree`.
    """
    origin_url = f"http://{origin.host}:{origin.port}"
    directory = EdgeDirectory(
        vnodes=vnodes, seed=seed,
        origin_url=origin_url if origin_fallback else None,
    )
    relays: List[EdgeRelay] = []
    for host in edge_hosts:
        network.connect(
            origin.host, host,
            bandwidth=backbone_bandwidth, delay=backbone_delay,
        )
        relay = EdgeRelay(
            network, host,
            origin_url=origin_url,
            cache=_make_cache(
                cache_bytes, cache_admission, cache_ttl_seconds,
                admission_seed,
            ),
            port=port,
            qos_enabled=qos_enabled,
            pacing_quantum=pacing_quantum,
            shared_pacing=shared_pacing,
            join_quantum=join_quantum,
            fill_burst=fill_burst,
            backbone=backbone_budget,
            live_history_seconds=live_history_seconds,
            tracer=tracer,
        )
        relays.append(relay)
        directory.add_edge(relay.name, relay=relay, capacity=capacity)
    if sibling_fills:
        for relay in relays:
            relay.attach_directory(directory)
    # edge-to-edge mesh: the drain protocol's adopt round-trip and the
    # sibling fills run peer-to-peer (never transiting the origin)
    for i, a in enumerate(relays):
        for b in relays[i + 1:]:
            network.connect(
                a.host, b.host,
                bandwidth=backbone_bandwidth, delay=backbone_delay,
            )
    return directory, relays


def build_relay_tree(
    network: VirtualNetwork,
    origin: MediaServer,
    regions: Dict[str, Sequence[str]],
    *,
    backbone_bandwidth: float = 50_000_000.0,
    backbone_delay: float = 0.005,
    capacity: Optional[int] = None,
    cache_bytes: int = 64 * 1024 * 1024,
    vnodes: int = 64,
    seed: int = 0,
    port: int = 8080,
    qos_enabled: bool = False,
    pacing_quantum: float = 0.0,
    shared_pacing: bool = True,
    join_quantum: float = 0.0,
    fill_burst: float = 64.0,
    fill_hop_limit: int = 3,
    live_history_seconds: float = 30.0,
    backbone_budget: Optional[BackboneBudget] = None,
    origin_fallback: bool = False,
    cache_admission: bool = False,
    cache_ttl_seconds: Optional[float] = None,
    admission_seed: int = 0,
    tracer=None,
) -> Tuple[EdgeDirectory, Dict[str, EdgeRelay], List[EdgeRelay]]:
    """Origin + regional parents + leaf edges: the multi-level tree.

    ``regions`` maps a region name to its leaf edge hosts. Every region
    gets one parent relay (host ``<region>-parent``) linked to the
    origin; leaves link to their parent, to the origin (authority
    describes and last-resort fills), and to each other (sibling fills,
    drain adopts). The directory is attached to every relay, so cache
    misses fill sibling → parent → origin, and broadcast feeds enter
    each region exactly once at the parent.

    Returns ``(directory, {region: parent relay}, leaf relays)``.
    """
    origin_url = f"http://{origin.host}:{origin.port}"
    directory = EdgeDirectory(
        vnodes=vnodes, seed=seed,
        origin_url=origin_url if origin_fallback else None,
    )
    parents: Dict[str, EdgeRelay] = {}
    leaves: List[EdgeRelay] = []
    all_relays: List[EdgeRelay] = []
    connected: Set[Tuple[str, str]] = set()

    def connect(a: str, b: str) -> None:
        pair = (a, b) if a <= b else (b, a)
        if a == b or pair in connected:
            return
        connected.add(pair)
        network.connect(
            a, b, bandwidth=backbone_bandwidth, delay=backbone_delay
        )

    for region in sorted(regions):
        parent_host = f"{region}-parent"
        connect(origin.host, parent_host)
        parent = EdgeRelay(
            network, parent_host,
            origin_url=origin_url,
            name=f"parent-{region}",
            cache=_make_cache(
                cache_bytes, cache_admission, cache_ttl_seconds,
                admission_seed,
            ),
            port=port,
            qos_enabled=qos_enabled,
            pacing_quantum=pacing_quantum,
            shared_pacing=shared_pacing,
            fill_burst=fill_burst,
            region=region,
            is_parent=True,
            backbone=backbone_budget,
            fill_hop_limit=fill_hop_limit,
            live_history_seconds=live_history_seconds,
            tracer=tracer,
        )
        parents[region] = parent
        all_relays.append(parent)
        directory.add_parent(region, relay=parent, name=parent.name)
        parent_url = f"http://{parent.host}:{parent.port}"
        for host in regions[region]:
            connect(origin.host, host)
            connect(parent_host, host)
            relay = EdgeRelay(
                network, host,
                origin_url=origin_url,
                cache=_make_cache(
                    cache_bytes, cache_admission, cache_ttl_seconds,
                    admission_seed,
                ),
                port=port,
                qos_enabled=qos_enabled,
                pacing_quantum=pacing_quantum,
                shared_pacing=shared_pacing,
                join_quantum=join_quantum,
                fill_burst=fill_burst,
                region=region,
                parent_url=parent_url,
                backbone=backbone_budget,
                fill_hop_limit=fill_hop_limit,
                live_history_seconds=live_history_seconds,
                tracer=tracer,
            )
            leaves.append(relay)
            all_relays.append(relay)
            directory.add_edge(
                relay.name, relay=relay, capacity=capacity, region=region
            )
    for relay in all_relays:
        relay.attach_directory(directory)
    # peer mesh: sibling fills and drain adopts run edge-to-edge
    for i, a in enumerate(all_relays):
        for b in all_relays[i + 1:]:
            connect(a.host, b.host)
    return directory, parents, leaves
