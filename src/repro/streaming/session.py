"""Server-side client sessions.

One :class:`StreamSession` per connected client: which publishing point it
watches, delivery mode (on-demand vs broadcast), pacing state, and QoS
reservation. :class:`SessionTable` is the server's registry with lifecycle
and accounting.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..asf.packets import DataPacket
from ..net.qos import Reservation


class SessionState(enum.Enum):
    CONNECTING = "connecting"
    STREAMING = "streaming"
    PAUSED = "paused"
    FINISHED = "finished"
    CLOSED = "closed"


class SessionError(Exception):
    """Lifecycle misuse of a streaming session."""


#: legal state transitions
_TRANSITIONS = {
    SessionState.CONNECTING: {SessionState.STREAMING, SessionState.CLOSED},
    SessionState.STREAMING: {
        SessionState.PAUSED,
        SessionState.FINISHED,
        SessionState.CLOSED,
    },
    SessionState.PAUSED: {SessionState.STREAMING, SessionState.CLOSED},
    SessionState.FINISHED: {SessionState.CLOSED, SessionState.STREAMING},
    SessionState.CLOSED: set(),
}


@dataclass
class StreamSession:
    """One client's attachment to a publishing point."""

    session_id: int
    point: str
    client_host: str
    broadcast: bool
    deliver: Callable[[DataPacket], None]
    state: SessionState = SessionState.CONNECTING
    position: float = 0.0  # media seconds already dispatched (on-demand)
    packet_cursor: int = 0
    reservation: Optional[Reservation] = None
    packets_sent: int = 0
    bytes_sent: int = 0
    pacing_handle: Optional[object] = None
    #: stream numbers withheld from this client (MBR renditions not chosen)
    excluded_streams: frozenset = frozenset()
    #: the MBR video stream chosen for this client (None = single-rate)
    selected_video: Optional[int] = None

    def transition(self, new_state: SessionState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise SessionError(
                f"session {self.session_id}: cannot go {self.state.value} "
                f"-> {new_state.value}"
            )
        self.state = new_state

    @property
    def active(self) -> bool:
        return self.state in (SessionState.STREAMING, SessionState.PAUSED)


class SessionTable:
    """Registry of live sessions on a media server."""

    def __init__(self) -> None:
        self._sessions: Dict[int, StreamSession] = {}
        self._ids = itertools.count(1)
        self.total_created = 0

    def create(
        self,
        point: str,
        client_host: str,
        deliver: Callable[[DataPacket], None],
        *,
        broadcast: bool,
    ) -> StreamSession:
        session = StreamSession(
            session_id=next(self._ids),
            point=point,
            client_host=client_host,
            broadcast=broadcast,
            deliver=deliver,
        )
        self._sessions[session.session_id] = session
        self.total_created += 1
        return session

    def get(self, session_id: int) -> StreamSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"no session {session_id}") from None

    def close(self, session_id: int) -> StreamSession:
        session = self.get(session_id)
        if session.state is not SessionState.CLOSED:
            session.transition(SessionState.CLOSED)
        del self._sessions[session_id]
        return session

    def active_sessions(self) -> List[StreamSession]:
        return [s for s in self._sessions.values() if s.active]

    def sessions_for_point(self, point: str) -> List[StreamSession]:
        return [s for s in self._sessions.values() if s.point == point]

    def __len__(self) -> int:
        return len(self._sessions)
