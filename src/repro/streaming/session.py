"""Server-side client sessions.

One :class:`StreamSession` per connected client: which publishing point it
watches, delivery mode (on-demand vs broadcast), pacing state, and QoS
reservation. :class:`SessionTable` is the server's registry with lifecycle
and accounting.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..asf.packets import DataPacket
from ..net.qos import Reservation


class SessionState(enum.Enum):
    CONNECTING = "connecting"
    STREAMING = "streaming"
    PAUSED = "paused"
    FINISHED = "finished"
    CLOSED = "closed"


class SessionError(Exception):
    """Lifecycle misuse of a streaming session."""


#: legal state transitions
_TRANSITIONS = {
    SessionState.CONNECTING: {SessionState.STREAMING, SessionState.CLOSED},
    SessionState.STREAMING: {
        SessionState.PAUSED,
        SessionState.FINISHED,
        SessionState.CLOSED,
    },
    SessionState.PAUSED: {SessionState.STREAMING, SessionState.CLOSED},
    SessionState.FINISHED: {SessionState.CLOSED, SessionState.STREAMING},
    SessionState.CLOSED: set(),
}


@dataclass
class StreamSession:
    """One client's attachment to a publishing point."""

    session_id: int
    point: str
    client_host: str
    broadcast: bool
    deliver: Callable[[DataPacket], None]
    state: SessionState = SessionState.CONNECTING
    position: float = 0.0  # media seconds already dispatched (on-demand)
    packet_cursor: int = 0
    reservation: Optional[Reservation] = None
    packets_sent: int = 0
    bytes_sent: int = 0
    pacing_handle: Optional[object] = None
    #: shared-schedule pacing group this session currently rides (server-owned)
    pacing_group: Optional[object] = None
    #: stream numbers withheld from this client (MBR renditions not chosen)
    excluded_streams: frozenset = frozenset()
    #: the MBR video stream chosen for this client (None = single-rate)
    selected_video: Optional[int] = None
    #: graceful-degradation shifts applied to this session
    downshifts: int = 0
    #: packets re-sent in answer to client NAKs
    retransmits_sent: int = 0
    #: True when the downstream is an edge relay filling its buffer, not a
    #: viewer: rendition selection is skipped so the replica gets the full
    #: packet run (an edge thins per *its own* clients, not per itself)
    replica: bool = False
    #: modeled viewers behind this session. 1 for a real client; a load
    #: cohort's delegate session carries the cohort size, so capacity
    #: accounting can report modeled audience without per-viewer sessions.
    #: Delivery and QoS stay 1× — one carrier stream feeds the cohort.
    multiplicity: int = 1
    #: client-side relocation callback for warm hand-off: a draining edge
    #: invokes it with the successor's coordinates after the successor
    #: adopted this session (None: client falls back to the crash path)
    relocate: Optional[Callable[[dict], None]] = field(
        default=None, repr=False, compare=False
    )
    #: registry hook: notified after every state change (set by SessionTable)
    _observer: Optional[Callable[["StreamSession"], None]] = field(
        default=None, repr=False, compare=False
    )

    def transition(self, new_state: SessionState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise SessionError(
                f"session {self.session_id}: cannot go {self.state.value} "
                f"-> {new_state.value}"
            )
        self.state = new_state
        if self._observer is not None:
            self._observer(self)

    @property
    def active(self) -> bool:
        return self.state in (SessionState.STREAMING, SessionState.PAUSED)


class SessionTable:
    """Registry of live sessions on a media server."""

    def __init__(self, *, tracer=None, label: str = "") -> None:
        #: trace namespace: with several servers sharing one tracer (origin
        #: plus edge relays) session ids would collide in the audit, so a
        #: labeled table emits "label:id" session attrs instead of raw ints
        self.label = label
        self._sessions: Dict[int, StreamSession] = {}
        #: point name -> {session_id: session}; closed sessions are removed,
        #: so per-point lookups never scan the whole table
        self._by_point: Dict[str, Dict[int, StreamSession]] = {}
        #: sessions currently STREAMING or PAUSED, kept current by the
        #: transition observer — active_sessions() never scans the table
        self._active: Dict[int, StreamSession] = {}
        self._ids = itertools.count(1)
        self.total_created = 0
        self.tracer = tracer  # optional repro.obs.Tracer

    def trace_id(self, session_id: int):
        """The session attr value trace records carry for ``session_id``."""
        return f"{self.label}:{session_id}" if self.label else session_id

    def create(
        self,
        point: str,
        client_host: str,
        deliver: Callable[[DataPacket], None],
        *,
        broadcast: bool,
        replica: bool = False,
        multiplicity: int = 1,
    ) -> StreamSession:
        if multiplicity < 1:
            raise SessionError(f"multiplicity must be >= 1, got {multiplicity}")
        session = StreamSession(
            session_id=next(self._ids),
            point=point,
            client_host=client_host,
            broadcast=broadcast,
            deliver=deliver,
            replica=replica,
            multiplicity=multiplicity,
        )
        self._sessions[session.session_id] = session
        self._by_point.setdefault(point, {})[session.session_id] = session
        session._observer = self._track_state
        self.total_created += 1
        if self.tracer is not None:
            attrs = dict(
                session=self.trace_id(session.session_id),
                point=point,
                client=client_host,
                broadcast=broadcast,
            )
            if multiplicity > 1:
                attrs["multiplicity"] = multiplicity
            self.tracer.event("session.open", **attrs)
        return session

    def modeled_viewers(self) -> int:
        """Σ multiplicity over registered sessions (modeled audience)."""
        return sum(s.multiplicity for s in self._sessions.values())

    def _track_state(self, session: StreamSession) -> None:
        if session.active:
            self._active[session.session_id] = session
        else:
            self._active.pop(session.session_id, None)

    def get(self, session_id: int) -> StreamSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"no session {session_id}") from None

    def close(self, session_id: int) -> StreamSession:
        session = self.get(session_id)
        if session.state is not SessionState.CLOSED:
            session.transition(SessionState.CLOSED)
        del self._sessions[session_id]
        bucket = self._by_point.get(session.point)
        if bucket is not None:
            bucket.pop(session_id, None)
            if not bucket:
                del self._by_point[session.point]
        if self.tracer is not None:
            self.tracer.event(
                "session.close",
                session=self.trace_id(session_id),
                point=session.point,
                packets_sent=session.packets_sent,
                bytes_sent=session.bytes_sent,
            )
        return session

    def active_sessions(self) -> List[StreamSession]:
        """STREAMING/PAUSED sessions — indexed, not a table scan."""
        return list(self._active.values())

    def all(self) -> List[StreamSession]:
        """Every registered session regardless of state."""
        return list(self._sessions.values())

    def sessions_for_point(self, point: str) -> List[StreamSession]:
        """Sessions attached to ``point`` — indexed, not a table scan."""
        return list(self._by_point.get(point, {}).values())

    def __len__(self) -> int:
        return len(self._sessions)

    def assert_consistent(self) -> None:
        """Audit the three indexes against each other.

        Raises :class:`SessionError` if any closed session is still
        registered, the active index disagrees with session state, or the
        per-point buckets drifted from the main table — the leak classes
        that `close()` on every teardown path must prevent.
        """
        problems: List[str] = []
        for sid, session in self._sessions.items():
            if session.state is SessionState.CLOSED:
                problems.append(f"closed session {sid} still in table")
            if session.active and sid not in self._active:
                problems.append(f"active session {sid} missing from index")
            bucket = self._by_point.get(session.point, {})
            if sid not in bucket:
                problems.append(
                    f"session {sid} missing from point bucket {session.point!r}"
                )
        for sid, session in self._active.items():
            if sid not in self._sessions:
                problems.append(f"active index has unregistered session {sid}")
            elif not session.active:
                problems.append(
                    f"active index has {session.state.value} session {sid}"
                )
        for point, bucket in self._by_point.items():
            if not bucket:
                problems.append(f"empty bucket left for point {point!r}")
            for sid in bucket:
                if sid not in self._sessions:
                    problems.append(
                        f"point bucket {point!r} holds unregistered session {sid}"
                    )
        if problems:
            raise SessionError(
                "session table inconsistent: " + "; ".join(problems)
            )
