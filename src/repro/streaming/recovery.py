"""Selective retransmission, degradation, and stall detection for players.

Media rides fire-and-forget :class:`~repro.net.transport.DatagramChannel`s;
a dropped packet is gone unless somebody asks for it again. This module is
the asking. :class:`RecoveryClient` sits beside the player's depacketizer:

* **NAK loop** — sequence gaps the depacketizer reports become batched
  :class:`NakRequest`s on a small reverse datagram channel; the server
  re-sends the exact cached packets (no re-encode). Each missing sequence
  gets a bounded retry budget, and NAKs only go out while the *recovery
  window* is open — there must be enough buffered runway that a repair can
  still arrive before its deadline; chasing a packet whose play time has
  passed wastes the uplink.
* **Graceful degradation** — when gaps are abandoned faster than the
  budget can cover (collapsed link, sustained burst), the client asks the
  server for the next lower-bitrate rendition through the existing
  Intelligent-Streaming selection path, instead of rebuffering forever.
* **Stall watchdog** — :meth:`RecoveryClient.stalled` answers "has media
  stopped arriving entirely?" (server crash, partition). The player polls
  it from its *existing* render tick — crucially this module schedules no
  periodic events of its own, so a fault-free run costs zero extra
  simulator events. The NAK timer exists only while gaps are outstanding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..net.engine import EventHandle, SimulationError, Simulator
from ..metrics.counters import Counters

#: wire size of one NAK datagram (session id + a handful of sequences)
NAK_WIRE_SIZE = 48


@dataclass(frozen=True)
class NakRequest:
    """Client → server: please re-send these packet sequences."""

    session_id: int
    sequences: Tuple[int, ...]


@dataclass(frozen=True)
class RecoveryConfig:
    """Tunables for the client-side recovery state machine."""

    nak_delay: float = 0.04  # gap detection -> first NAK (reorder grace)
    nak_timeout: float = 0.25  # retry spacing while a repair is pending
    nak_budget: int = 4  # attempts per missing sequence
    min_runway: float = 0.25  # buffered seconds required to keep asking
    downshift_after: int = 6  # abandoned repairs within cooldown window
    downshift_cooldown: float = 4.0  # seconds between downshift requests
    watchdog_timeout: float = 1.5  # silence before declaring a stall
    reconnect_backoff: float = 0.25  # first reconnect retry delay
    reconnect_backoff_max: float = 2.0
    max_reconnects: int = 10
    #: fractional backoff spread in [0, 1]: each retry delay is scaled by
    #: 1 + jitter·(u − ½) with u derived per-player from a sha1 of the
    #: stalled session's identity — fully deterministic (two runs with the
    #: same seed replay the same timeline) yet de-synchronized across
    #: players so a mass stall doesn't reconnect as a thundering herd.
    #: 0 (the default) reproduces the un-jittered schedule exactly.
    reconnect_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.nak_delay < 0 or self.nak_timeout <= 0:
            raise SimulationError("nak timings must be positive")
        if self.nak_budget < 0:
            raise SimulationError("nak_budget must be >= 0")
        if self.watchdog_timeout <= 0:
            raise SimulationError("watchdog_timeout must be positive")
        if self.reconnect_backoff <= 0 or self.max_reconnects < 1:
            raise SimulationError("reconnect settings must be positive")
        if not 0.0 <= self.reconnect_jitter <= 1.0:
            raise SimulationError("reconnect_jitter must be in [0, 1]")


class RecoveryClient:
    """Tracks missing sequences, emits NAKs, decides degradation/stalls.

    Wired by the player with callables instead of object references so it
    stays testable in isolation:

    * ``send_nak(sequences)`` — ship a batched NAK to the server;
    * ``runway()`` — buffered seconds ahead of the playhead (the recovery
      window key); may return ``inf`` while the clock is paused;
    * ``on_downshift()`` — ask for the next lower rendition; returns True
      if a shift actually happened (False: already at the floor).
    """

    def __init__(
        self,
        simulator: Simulator,
        config: RecoveryConfig,
        *,
        send_nak: Callable[[Tuple[int, ...]], None],
        runway: Callable[[], float],
        on_downshift: Callable[[], bool],
        counters: Optional[Counters] = None,
        tracer=None,
    ) -> None:
        self.simulator = simulator
        self.config = config
        self.send_nak = send_nak
        self.runway = runway
        self.on_downshift = on_downshift
        self.counters = counters if counters is not None else Counters("recovery")
        self.tracer = tracer  # optional repro.obs.Tracer
        self._pending: Dict[int, int] = {}  # sequence -> attempts so far
        self._timer: Optional[EventHandle] = None
        self._abandons: List[float] = []  # recent abandon times
        self._last_downshift: Optional[float] = None
        self.last_arrival: float = simulator.now

    # -- arrivals -------------------------------------------------------

    def note_arrival(self, sequence: Optional[int] = None) -> None:
        """Any media packet arrived; ``sequence`` repairs a pending gap."""
        self.last_arrival = self.simulator.now
        if sequence is not None and self._pending.pop(sequence, None) is not None:
            self.counters.inc("repairs_received")
            if not self._pending:
                self._cancel_timer()

    def observe_gaps(self, sequences: List[int]) -> None:
        """The depacketizer skipped these sequences; start chasing them."""
        fresh = [s for s in sequences if s not in self._pending]
        if not fresh:
            return
        for seq in fresh:
            self._pending[seq] = 0
        self.counters.inc("gaps_observed", len(fresh))
        if self.tracer is not None:
            self.tracer.event("gap.observed", count=len(fresh))
        if self._timer is None:
            self._arm(self.config.nak_delay)

    # -- the NAK timer --------------------------------------------------

    def _arm(self, delay: float) -> None:
        self._timer = self.simulator.schedule(delay, self._fire)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self.simulator.cancel(self._timer)
            self._timer = None

    def _fire(self) -> None:
        self._timer = None
        if not self._pending:
            return
        window_open = self.runway() >= self.config.min_runway
        due: List[int] = []
        for seq in sorted(self._pending):
            # re-entrancy: _abandon may trigger a downshift whose HTTP
            # round trip drives the simulator, delivering repairs that
            # pop other pending entries while this loop runs
            attempts = self._pending.get(seq)
            if attempts is None:
                continue
            if attempts >= self.config.nak_budget or not window_open:
                self._abandon(seq)
                continue
            self._pending[seq] = attempts + 1
            due.append(seq)
        if due:
            self.counters.inc("naks_sent")
            self.counters.inc("sequences_nacked", len(due))
            if self.tracer is not None:
                self.tracer.event("nak.sent", count=len(due))
            self.send_nak(tuple(due))
        if self._pending:
            self._arm(self.config.nak_timeout)

    def _abandon(self, seq: int) -> None:
        del self._pending[seq]
        self.counters.inc("repairs_abandoned")
        if self.tracer is not None:
            self.tracer.event("repair.abandoned", sequence=seq)
        now = self.simulator.now
        window = self.config.downshift_cooldown
        self._abandons = [t for t in self._abandons if now - t <= window]
        self._abandons.append(now)
        if len(self._abandons) >= self.config.downshift_after:
            if self.request_downshift():
                self._abandons.clear()

    # -- degradation ----------------------------------------------------

    def request_downshift(self) -> bool:
        """Ask for a lower rendition, rate-limited by the cooldown."""
        now = self.simulator.now
        if (
            self._last_downshift is not None
            and now - self._last_downshift < self.config.downshift_cooldown
        ):
            return False
        self._last_downshift = now
        shifted = self.on_downshift()
        if shifted:
            self.counters.inc("downshifts")
        return shifted

    # -- stall detection ------------------------------------------------

    def stalled(self, now: float) -> bool:
        """True when nothing has arrived for ``watchdog_timeout`` seconds."""
        return now - self.last_arrival > self.config.watchdog_timeout

    def reset(self) -> None:
        """Forget all pending repairs and restart the arrival clock
        (pause/seek/reconnect: old gaps no longer apply)."""
        self._pending.clear()
        self._cancel_timer()
        self.last_arrival = self.simulator.now

    @property
    def pending_repairs(self) -> int:
        return len(self._pending)
