"""Client-side jitter buffer.

Received media units wait here until the render clock reaches their
timestamp. The buffer answers the two questions the player's control loop
asks every tick: *what is due now* (:meth:`JitterBuffer.pop_due`) and *how
much runway is left* (:meth:`JitterBuffer.depth`) — runway depleting to
zero while the stream is still open is a rebuffer event.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asf.packets import MediaUnit


def media_ms(seconds: float) -> int:
    """A float position in seconds as integer media milliseconds.

    Rounds half-up with a one-nanosecond tolerance so that positions that
    *mean* a .5 ms boundary land on it regardless of float representation.
    ``round()`` is wrong here twice over: banker's rounding makes ``.5``
    boundaries parity-dependent (``round(12.5) == 12`` but
    ``round(13.5) == 14``), and seek/replay rebasing can leave the product
    a few ulps *below* the boundary (``12.4999999999999998``), which any
    plain rounding would push to the previous millisecond — skipping a
    unit stamped exactly on the boundary.
    """
    return math.floor(seconds * 1000.0 + 0.5 + 1e-9)


class JitterBuffer:
    """Timestamp-ordered buffer of media units across streams."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, MediaUnit]] = []
        self._seq = itertools.count()
        #: highest buffered-or-consumed timestamp per stream (ms)
        self.horizon_ms: Dict[int, int] = {}
        self.pushed = 0
        self.popped = 0

    def push(self, unit: MediaUnit) -> None:
        heapq.heappush(self._heap, (unit.timestamp_ms, next(self._seq), unit))
        horizon = self.horizon_ms.get(unit.stream_number, -1)
        self.horizon_ms[unit.stream_number] = max(horizon, unit.timestamp_ms)
        self.pushed += 1

    def __len__(self) -> int:
        return len(self._heap)

    def peek_timestamp(self) -> Optional[float]:
        return self._heap[0][0] / 1000.0 if self._heap else None

    def pop_due(self, position: float) -> List[MediaUnit]:
        """All units with timestamp ≤ ``position`` seconds, in order."""
        due_ms = media_ms(position)
        out: List[MediaUnit] = []
        while self._heap and self._heap[0][0] <= due_ms:
            out.append(heapq.heappop(self._heap)[2])
            self.popped += 1
        return out

    def depth(self, position: float, streams: Optional[List[int]] = None) -> float:
        """Seconds of runway past ``position``: min over ``streams`` of
        (horizon − position). Streams never seen give zero runway."""
        relevant = streams if streams is not None else list(self.horizon_ms)
        if not relevant:
            return 0.0
        pos_ms = media_ms(position)
        depths = []
        for stream in relevant:
            horizon = self.horizon_ms.get(stream)
            if horizon is None:
                return 0.0
            # integer-ms subtraction keeps depth consistent with pop_due:
            # a unit counted as runway here is exactly one not yet due there
            depths.append((horizon - pos_ms) / 1000.0)
        return max(0.0, min(depths))

    def clear(self) -> None:
        """Drop everything (seek discontinuity)."""
        self._heap.clear()
        self.horizon_ms.clear()
