"""The media player — "the browser with the windows media services".

:class:`MediaPlayer` connects to a publishing point, prebuffers the
header's preroll, renders media units against a presentation clock, and
fires script commands (slide changes, annotations) at their timestamps —
the paper's synchronized video + slides playback (Fig. 7).

Everything measurable about playback lands in a :class:`PlaybackReport`:
startup latency, rebuffer count/time, per-stream loss, rendered-unit log,
and per-slide synchronization error (the distance between the media
position when the slide actually changed and the timestamp the orchestrator
asked for).

Two synchronization modes exist for the ablation benches:

* ``"script"`` (the paper's design) — commands fire off the *media clock*,
  so stalls shift slides and video together;
* ``"timer"`` (the strawman) — commands fire off a wall-clock timer started
  at playback begin, so every stall desynchronizes slides from video.
"""

from __future__ import annotations

import copy
import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple
from urllib.parse import urlparse

from ..asf.constants import SCRIPT_STREAM_NUMBER
from ..asf.drm import DRMError, License, LicenseServer, scramble
from ..asf.header import HeaderObject
from ..asf.packets import DataPacket, Depacketizer, MediaUnit, command_from_unit
from ..asf.script_commands import ScriptCommand, ScriptCommandDispatcher
from ..media.clock import PresentationClock
from ..metrics.counters import Counters
from ..net.engine import EventHandle, PeriodicTask, Simulator
from ..net.transport import DatagramChannel, Message
from ..web.http import HTTPClient, HTTPError, VirtualNetwork
from .recovery import NAK_WIRE_SIZE, NakRequest, RecoveryClient, RecoveryConfig


class PlayerError(Exception):
    """Connection/rendering misuse."""


class PlayerState(enum.Enum):
    IDLE = "idle"
    CONNECTING = "connecting"
    BUFFERING = "buffering"
    PLAYING = "playing"
    PAUSED = "paused"
    FINISHED = "finished"


@dataclass
class RenderedUnit:
    """One media unit handed to the renderer."""

    wall_time: float
    position: float
    unit: MediaUnit


@dataclass
class FiredCommand:
    """A script command the player executed."""

    wall_time: float
    position: float
    command: ScriptCommand

    @property
    def sync_error(self) -> float:
        """|media position at firing − commanded timestamp| in seconds."""
        return abs(self.position - self.command.timestamp)


@dataclass
class PlaybackReport:
    """Everything measured during one playback."""

    point: str
    startup_latency: float
    rebuffer_count: int
    rebuffer_time: float
    rendered: List[RenderedUnit]
    commands: List[FiredCommand]
    loss_rates: Dict[int, float]
    duration_watched: float
    #: media-stream bytes reassembled end to end (delivery-ratio numerator)
    media_bytes: int = 0
    #: recovery counters (NAKs, repairs, reconnects, downshifts...)
    recovery: Dict[str, int] = field(default_factory=dict)
    #: downshift timeline: (position seconds, new video stream) per shift
    downshifts: List[Tuple[float, Optional[int]]] = field(default_factory=list)

    @property
    def max_command_sync_error(self) -> float:
        return max((c.sync_error for c in self.commands), default=0.0)

    @property
    def mean_command_sync_error(self) -> float:
        if not self.commands:
            return 0.0
        return sum(c.sync_error for c in self.commands) / len(self.commands)

    def slide_changes(self) -> List[FiredCommand]:
        return [c for c in self.commands if c.command.type == "SLIDE"]

    def rendered_for_stream(self, stream_number: int) -> List[RenderedUnit]:
        return [r for r in self.rendered if r.unit.stream_number == stream_number]


class MediaPlayer:
    """A streaming client on one host of the virtual network."""

    RENDER_TICK = 0.05
    UNDERRUN_MARGIN = 0.05

    def __init__(
        self,
        network: VirtualNetwork,
        host: str,
        *,
        user: str = "",
        license_server: Optional[LicenseServer] = None,
        sync_mode: str = "script",
        preroll_override: Optional[float] = None,
        recovery: Optional[RecoveryConfig] = None,
        directory=None,
        tracer=None,
        multiplicity: int = 1,
        render_ticker=None,
    ) -> None:
        if sync_mode not in ("script", "timer"):
            raise PlayerError(f"unknown sync mode {sync_mode!r}")
        if multiplicity < 1:
            raise PlayerError(f"multiplicity must be >= 1, got {multiplicity}")
        from .buffer import JitterBuffer

        self.network = network
        self.simulator: Simulator = network.simulator
        self.host = network.add_host(host)
        self.user = user or host
        self.tracer = tracer  # optional repro.obs.Tracer
        self._playback_span: Optional[int] = None
        self.license_server = license_server
        self.sync_mode = sync_mode
        self.preroll_override = preroll_override
        #: optional repro.streaming.edge.EdgeDirectory — when set, every
        #: reconnect re-resolves the serving URL, so a crashed edge relay
        #: re-routes the player to a surviving one
        self.directory = directory
        #: modeled viewers this player stands for — a cohort delegate in
        #: the load harness carries the cohort size; the server records it
        #: on the session for audience accounting, delivery stays 1×
        self.multiplicity = multiplicity
        #: optional repro.net.engine.SharedTicker — when set, the render
        #: loop registers on it instead of running a private PeriodicTask,
        #: so thousands of players share one simulator event per tick
        self._render_ticker = render_ticker
        self.http = HTTPClient(network, host)

        self.state = PlayerState.IDLE
        self.header: Optional[HeaderObject] = None
        self.session_id: Optional[int] = None
        self._server_url: Optional[str] = None
        self._point: Optional[str] = None
        self._broadcast = False
        self._license: Optional[License] = None
        self._depacketizer = Depacketizer()
        self._buffer = JitterBuffer()
        self._clock = PresentationClock()
        self._dispatcher: Optional[ScriptCommandDispatcher] = None
        #: PeriodicTask or a SharedTicker slot — both expose .stop()
        self._render_task: Optional[Any] = None
        #: play() parameters, kept so split_member can replay the cohort's
        #: exact fast-start shape on the split-out session
        self._play_burst_factor = 1.0
        self._media_streams: List[int] = []
        self.selected_video: Optional[int] = None
        self._timer_commands: List[ScriptCommand] = []
        self._timer_cursor = 0
        self._timer_origin: Optional[float] = None

        # metrics
        self.rendered: List[RenderedUnit] = []
        self.fired: List[FiredCommand] = []
        self._connect_time: Optional[float] = None
        self._first_render: Optional[float] = None
        self.rebuffer_count = 0
        self.rebuffer_time = 0.0
        self._stall_started: Optional[float] = None
        self._stall_is_underrun = False
        self._start_position = 0.0
        self._stream_ended = False
        #: (position seconds, new video stream) per accepted downshift
        self.downshift_log: List[Tuple[float, Optional[int]]] = []

        # recovery (opt-in: None keeps the seed's fire-and-forget behavior
        # and schedules not a single extra simulator event)
        self.recovery_config = recovery
        self.recovery_stats = Counters("player-recovery")
        self._recovery: Optional[RecoveryClient] = None
        self._nak_channel: Optional[DatagramChannel] = None
        self._recovery_sink = None  # server's NAK receiver (from "open")
        self._reconnecting = False
        self._reconnect_attempts = 0
        self._reconnect_timer: Optional[EventHandle] = None
        #: identity of the session whose stall started the current
        #: reconnect loop — the deterministic seed for backoff jitter
        self._stall_session_id: Optional[int] = None
        #: old (server url, session id) pairs whose close was swallowed by
        #: a partition — that server still thinks they stream (and holds
        #: their QoS channels), so every later attempt retries the close
        #: until one lands. Keyed by URL: after a directory re-route the
        #: orphan lives on the *old* edge, and session ids are only unique
        #: per server, so closing a bare id elsewhere could kill an
        #: innocent session
        self._orphan_sessions: List[Tuple[str, int]] = []
        #: streams granted by a downshift but not yet seen on the wire —
        #: excluded from buffer-depth accounting until data arrives, so a
        #: shift doesn't instantly register as an underrun
        self._pending_streams: Set[int] = set()

    # ------------------------------------------------------------------
    # connection
    # ------------------------------------------------------------------

    @property
    def preroll(self) -> float:
        if self.preroll_override is not None:
            return self.preroll_override
        if self.header is None:
            return 3.0
        return self.header.file_properties.preroll_ms / 1000.0

    @property
    def position(self) -> float:
        return self._clock.media_time(self.simulator.now)

    def connect(self, url: str) -> HeaderObject:
        """DESCRIBE: fetch the header of ``url`` (…/lod/<point>)."""
        if self.state is not PlayerState.IDLE:
            raise PlayerError("player already connected")
        self.state = PlayerState.CONNECTING
        self._connect_time = self.simulator.now
        try:
            response = self.http.get(url)
        except HTTPError:
            # an unreachable server must not wedge the player in
            # CONNECTING: the caller may retry against another edge
            self.state = PlayerState.IDLE
            raise
        if not response.ok:
            self.state = PlayerState.IDLE
            raise PlayerError(f"describe failed: {response.status} {response.body}")
        body = response.body
        self.header = body["header"]
        self._point = body["point"]
        self._broadcast = bool(body.get("broadcast"))
        base = url.rsplit("/lod/", 1)[0]
        self._server_url = base
        if self.header.file_properties.is_protected:
            self._acquire_license()
        self._media_streams = [
            s.stream_number
            for s in self.header.streams
            if s.stream_type in ("video", "audio")
        ]
        commands = list(self.header.script_commands)
        self._dispatcher = ScriptCommandDispatcher(commands, self._on_command_fired)
        self._timer_commands = sorted(commands)
        return self.header

    def _acquire_license(self) -> None:
        if self.license_server is None:
            raise DRMError(
                "content is DRM-protected and the player has no license server"
            )
        assert self.header is not None and self.header.drm is not None
        self._license = self.license_server.acquire(
            self.header.drm.content_id, self.user
        )

    def _control(self, action: str, **fields) -> Any:
        assert self._server_url is not None
        response = self.http.post(f"{self._server_url}/control/{action}", body=fields)
        if not response.ok:
            raise PlayerError(f"{action} failed: {response.status} {response.body}")
        if action == "open":
            self.session_id = response.body["session_id"]
            self._recovery_sink = response.body.get("recovery_sink")
            included = response.body.get("streams")
            if included is not None:
                # MBR: buffer-depth accounting covers only streams the
                # server actually sends this session — recomputed from the
                # header so a reconnect after a downshift starts clean
                self._media_streams = [
                    s.stream_number
                    for s in self.header.streams
                    if s.stream_type in ("video", "audio")
                    and s.stream_number in included
                ]
                self.selected_video = response.body.get("selected_video")
            self._pending_streams.clear()
        return response.body

    def play(self, *, start: float = 0.0, burst_factor: float = 1.0) -> None:
        """Open a session and begin buffering from ``start`` seconds.

        ``burst_factor`` > 1 asks the server for fast start: the preroll
        is delivered at that multiple of real time, cutting startup
        latency roughly to ``preroll / burst_factor``.
        """
        if self.header is None:
            raise PlayerError("connect() first")
        if self.state is not PlayerState.CONNECTING:
            raise PlayerError(f"cannot play from state {self.state.value}")
        if self.tracer is not None and self._playback_span is None:
            self._playback_span = self.tracer.begin(
                "playback", client=self.user, point=self._point
            )
        self._control(
            "open", point=self._point, deliver=self._on_packet,
            multiplicity=self.multiplicity, relocate=self._on_relocate,
        )
        if self.tracer is not None:
            self.tracer.event(
                "session.attach",
                span=self._playback_span,
                client=self.user,
                session=self.session_id,
            )
        self._control(
            "play", session_id=self.session_id, start=start,
            burst_factor=burst_factor,
        )
        self.state = PlayerState.BUFFERING
        self._start_position = start
        self._play_burst_factor = burst_factor
        self._pending_catchup = start > 0
        self._arm_recovery()
        self._start_render_loop()

    def _start_render_loop(self) -> None:
        if self._render_ticker is not None:
            self._render_task = self._render_ticker.register(self._render_tick)
        else:
            self._render_task = PeriodicTask(
                self.simulator, self.RENDER_TICK, self._render_tick
            )

    # ------------------------------------------------------------------
    # recovery plumbing (NAKs, watchdog, reconnection, degradation)
    # ------------------------------------------------------------------

    def _arm_recovery(self) -> None:
        """Wire the NAK loop and watchdog to the current session.

        Costs no simulator events by itself: the NAK timer only exists
        while gaps are outstanding, and the watchdog is polled from the
        render tick the player already runs.
        """
        if self.recovery_config is None or self._recovery_sink is None:
            return
        if self._nak_channel is None:
            server_host = urlparse(self._server_url).hostname
            link = self.network.link(self.host, server_host)
            self._nak_channel = DatagramChannel(link, self._recovery_sink)
        else:
            self._nak_channel.on_receive = self._recovery_sink
        if self._recovery is None:
            self._recovery = RecoveryClient(
                self.simulator,
                self.recovery_config,
                send_nak=self._send_nak,
                runway=self._recovery_runway,
                on_downshift=self._request_downshift,
                counters=self.recovery_stats,
                tracer=self.tracer,
            )
        self._depacketizer.on_gap = self._on_sequence_gap
        self._recovery.note_arrival()

    def _send_nak(self, sequences: Tuple[int, ...]) -> None:
        if self._nak_channel is None or self.session_id is None:
            return
        self._nak_channel.send(
            Message(NakRequest(self.session_id, tuple(sequences)), NAK_WIRE_SIZE)
        )

    def _on_sequence_gap(self, missing: List[int]) -> None:
        if self._recovery is None or self._reconnecting:
            return
        self._recovery.observe_gaps(missing)

    def _recovery_runway(self) -> float:
        """Buffered seconds ahead of the playhead — the recovery window.

        While the clock is stopped (buffering, paused) no deadline is
        approaching, so the window is unconditionally open.
        """
        if self.state is not PlayerState.PLAYING:
            return float("inf")
        return self._buffer.depth(self.position, self._media_streams)

    def _reconnect_position(self) -> float:
        """Where to resume after a reconnect: the buffered frontier.

        Everything up to min(per-stream horizons) was already delivered —
        asking the server to replay from there keeps continuity with the
        playhead without re-downloading delivered content.
        """
        base = self.position if self._clock.started else self._start_position
        if self._media_streams:
            horizons = [
                self._buffer.horizon_ms.get(s, -1) for s in self._media_streams
            ]
            if all(h >= 0 for h in horizons):
                base = max(base, min(horizons) / 1000.0)
        return base

    def _resolve_placement(self) -> None:
        """Re-ask the edge directory where this client should be served.

        A crashed or full edge re-routes the player to the next ring
        node; when the target changes, the NAK channel is dropped so the
        next :meth:`_arm_recovery` rebuilds it toward the new host.
        Placement failures (every edge down) become :class:`PlayerError`
        so the reconnect backoff keeps retrying them.
        """
        if self.directory is None or self._point is None:
            return
        try:
            url = self.directory.url_for(self.host, self._point)
        except Exception as exc:
            raise PlayerError(f"placement failed: {exc}") from exc
        base = url.rsplit("/lod/", 1)[0]
        if base != self._server_url:
            self.recovery_stats.inc("reroutes")
            if self.tracer is not None:
                self.tracer.event(
                    "playback.reroute",
                    span=self._playback_span,
                    client=self.user,
                    target=base,
                )
            self._server_url = base
            self._nak_channel = None  # points at the old server's link

    def _close_orphans(self) -> None:
        """Retry closing sessions stranded on this or previous servers."""
        for url, orphan in list(self._orphan_sessions):
            try:
                # direct post, not _control: the orphan must be closed on
                # the server it lives on, not the current target. Any
                # answer settles it — non-OK means the session is already
                # gone (crash wiped it)
                self.http.post(
                    f"{url}/control/close", body={"session_id": orphan}
                )
                self._orphan_sessions.remove((url, orphan))
            except HTTPError:
                if url == self._server_url:
                    # the current target is unreachable: the open below
                    # would fail too, so surface it to the backoff loop
                    raise
                # an *old* edge being down must not block re-routing to a
                # live one; keep the orphan for a later sweep

    def _on_relocate(self, notice: Dict[str, Any]) -> None:
        """A draining edge warm-handed our session to a successor.

        Modeled as a control-plane callback riding the open body, the
        same way ``deliver`` and ``recovery_sink`` ride request/response
        bodies: the old edge invokes it only *after* the successor has
        adopted the session at the exact packet cursor. The player just
        re-points its control/NAK plumbing — the jitter buffer, clock,
        and playhead are untouched, so a planned drain costs no seek, no
        replay, and ~0 rebuffer.
        """
        if self.state in (PlayerState.IDLE, PlayerState.FINISHED):
            return
        if self._reconnecting:
            # a hand-off racing our own stall recovery: ignore the notice
            # and let the reconnect loop re-resolve placement itself (the
            # drained edge closes the old session either way)
            return
        self._server_url = notice["url"]
        self.session_id = notice["session_id"]
        self._recovery_sink = notice.get("recovery_sink")
        self._nak_channel = None  # pointed at the drained edge's link
        included = notice.get("streams")
        if included is not None and self.header is not None:
            self._media_streams = [
                s.stream_number
                for s in self.header.streams
                if s.stream_type in ("video", "audio")
                and s.stream_number in included
            ]
            self.selected_video = notice.get("selected_video")
        self._pending_streams.clear()
        self.recovery_stats.inc("handoffs")
        if self.tracer is not None:
            self.tracer.event(
                "playback.handoff",
                span=self._playback_span,
                client=self.user,
                target=self._server_url,
                session=self.session_id,
            )
        if self._recovery is not None:
            # a transfer is not a stall: restart the watchdog clock so the
            # successor gets a full silence window before suspicion
            self._recovery.note_arrival()
        self._arm_recovery()

    def _begin_reconnect(self, now: float) -> None:
        """The watchdog fired: delivery stalled (crash or partition)."""
        self._stall_session_id = self.session_id
        self.recovery_stats.inc("stalls_detected")
        if self.tracer is not None:
            self.tracer.event(
                "playback.stall",
                span=self._playback_span,
                client=self.user,
                position=self.position,
            )
        self._reconnecting = True
        self._reconnect_attempts = 0
        if self._recovery is not None:
            self._recovery.reset()  # in-flight NAKs are moot
        if self.state is PlayerState.PLAYING:
            self._enter_rebuffer(now)
        self._attempt_reconnect()

    def _backoff_jitter(self, attempt: int) -> float:
        """Deterministic u ∈ [0, 1) for this player/stall/attempt.

        Seeded from the *stalled* session's identity rather than the
        wall clock or a shared RNG: two chaos runs with the same seed
        replay byte-identical backoff timelines, yet distinct players
        (and distinct stalls of one player) de-synchronize.
        """
        key = f"{self.user}|{self._stall_session_id}|{attempt}".encode()
        digest = hashlib.sha1(key).hexdigest()[:8]
        return int(digest, 16) / float(1 << 32)

    def _attempt_reconnect(self) -> None:
        """Close whatever is left of the old session, reopen, resume.

        Runs re-entrantly from the render tick (precedent: `_finish`'s
        close). The HTTP timeout is clamped while the server may be
        unreachable so a dead control plane costs seconds, not the
        default 10s, per attempt.
        """
        assert self.recovery_config is not None
        self._reconnect_timer = None
        self._reconnect_attempts += 1
        self.recovery_stats.inc("reconnect_attempts")
        saved_timeout = self.http.timeout
        self.http.timeout = min(saved_timeout, 2.0)
        try:
            if self.session_id is not None:
                self._orphan_sessions.append(
                    (self._server_url, self.session_id)
                )
                self.session_id = None
            self._resolve_placement()
            # close old sessions first so their servers free the QoS
            # channels before the new open reserves another
            self._close_orphans()
            resume_at = self._reconnect_position()
            self._control(
                "open", point=self._point, deliver=self._on_packet,
                multiplicity=self.multiplicity, relocate=self._on_relocate,
            )
            if self._broadcast:
                # live: just reattach; the sequence gap across the outage
                # drives NAK repair of whatever the feed sent meanwhile
                self._control("play", session_id=self.session_id)
            else:
                # replay overlaps delivered content at the boundary; the
                # depacketizer drops anything already reassembled
                self._depacketizer.expect_replay(suppress_completed=True)
                self._control(
                    "play", session_id=self.session_id, start=resume_at
                )
        except (PlayerError, HTTPError):
            self.session_id = None
            if self._reconnect_attempts >= self.recovery_config.max_reconnects:
                self.recovery_stats.inc("reconnect_giveups")
                self._reconnecting = False
                self._finish()
                return
            delay = min(
                self.recovery_config.reconnect_backoff
                * (2 ** (self._reconnect_attempts - 1)),
                self.recovery_config.reconnect_backoff_max,
            )
            jitter = self.recovery_config.reconnect_jitter
            if jitter > 0.0:
                u = self._backoff_jitter(self._reconnect_attempts)
                delay *= 1.0 + jitter * (u - 0.5)
            self._reconnect_timer = self.simulator.schedule(
                delay, self._attempt_reconnect
            )
        else:
            self._reconnecting = False
            self._reconnect_attempts = 0
            self.recovery_stats.inc("reconnects")
            if self.tracer is not None:
                self.tracer.event(
                    "playback.reconnect",
                    span=self._playback_span,
                    client=self.user,
                    session=self.session_id,
                )
            if self._recovery is not None:
                self._recovery.reset()
            self._arm_recovery()
        finally:
            self.http.timeout = saved_timeout

    def _request_downshift(self) -> bool:
        """Ask the server for the next lower rendition (reliable path —
        a lost downshift request would defeat its purpose)."""
        if (
            self.session_id is None
            or self._reconnecting
            or (
                self._recovery is not None
                and self._recovery.stalled(self.simulator.now)
            )
        ):
            return False  # stalled/reconnecting: the watchdog owns this
        try:
            body = self._control("downshift", session_id=self.session_id)
        except (PlayerError, HTTPError):
            return False
        if not isinstance(body, dict) or not body.get("ok"):
            return False
        old_video = self.selected_video
        new_video = body.get("selected_video")
        self.selected_video = new_video
        if old_video is not None and old_video in self._media_streams:
            self._media_streams.remove(old_video)
        if new_video is not None and new_video not in self._media_streams:
            self._pending_streams.add(new_video)
        self.downshift_log.append((self.position, new_video))
        if self.tracer is not None:
            self.tracer.event(
                "playback.downshift",
                span=self._playback_span,
                client=self.user,
                position=self.position,
                video=new_video,
            )
        return True

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def _on_packet(self, packet: DataPacket) -> None:
        if self._recovery is not None:
            self._recovery.note_arrival(packet.sequence)
        for unit in self._depacketizer.push_packet(packet):
            if unit.stream_number in self._pending_streams:
                # first data of a downshifted rendition: it now counts
                # toward buffer depth
                self._pending_streams.discard(unit.stream_number)
                self._media_streams.append(unit.stream_number)
            if unit.stream_number == SCRIPT_STREAM_NUMBER:
                # stored files dispatch from the header command table; only
                # live broadcasts (no table up front) fire inline commands
                if self._broadcast:
                    self._on_live_command(unit)
                continue
            if self._license is not None:
                unit = MediaUnit(
                    unit.stream_number,
                    unit.object_number,
                    unit.timestamp_ms,
                    unit.keyframe,
                    scramble(unit.data, self._license.key),
                )
            self._buffer.push(unit)

    def _on_live_command(self, unit: MediaUnit) -> None:
        """Live streams carry commands inline: fire immediately."""
        command = command_from_unit(unit)
        self._on_command_fired(command)

    def _on_command_fired(self, command: ScriptCommand) -> None:
        self.fired.append(
            FiredCommand(self.simulator.now, self.position, command)
        )

    @property
    def current_slide(self) -> Optional[str]:
        """The slide currently on screen (last SLIDE command fired)."""
        for fired in reversed(self.fired):
            if fired.command.type == "SLIDE":
                return fired.command.parameter
        return None

    def active_annotations(self, *, lifetime: float = 5.0) -> List[str]:
        """Annotations fired within ``lifetime`` seconds of media time.

        The wire format carries no explicit annotation end, so the overlay
        applies a display lifetime — matching how the original player
        showed teacher comments for a few seconds.
        """
        position = self.position
        return [
            fired.command.parameter
            for fired in self.fired
            if fired.command.type == "ANNOTATION"
            and fired.position <= position <= fired.position + lifetime
        ]

    # ------------------------------------------------------------------
    # render loop
    # ------------------------------------------------------------------

    def _render_tick(self) -> None:
        if self.state in (PlayerState.PAUSED, PlayerState.FINISHED, PlayerState.IDLE):
            return
        now = self.simulator.now
        # stall watchdog, piggybacked on the tick the player already runs:
        # total delivery silence means the server crashed or the path is
        # partitioned — reconnect and resume from the buffered frontier
        if (
            self._recovery is not None
            and not self._reconnecting
            and not self._stream_ended
            and not self._end_of_content()
            and self._recovery.stalled(now)
        ):
            self._begin_reconnect(now)
            return
        if self.state is PlayerState.BUFFERING:
            anchor = self.position if self._clock.started else self._start_position
            if (
                self._buffer.depth(anchor, self._media_streams) >= self.preroll
                or self._end_of_content()
                or (self._stream_ended and len(self._buffer))
            ):
                self._start_playing(now)
            return
        # PLAYING
        position = self.position
        due = self._buffer.pop_due(position)
        for unit in due:
            self.rendered.append(RenderedUnit(now, position, unit))
            if self.tracer is not None:
                self.tracer.event(
                    "render.unit",
                    span=self._playback_span,
                    client=self.user,
                    stream=unit.stream_number,
                    ts=unit.timestamp_ms,
                )
        if self.sync_mode == "script" and self._dispatcher is not None:
            self._dispatcher.advance_to(position)
        elif self.sync_mode == "timer":
            self._fire_timer_commands(now)
        duration = self.header.file_properties.duration_ms / 1000.0
        if duration and position >= duration:
            self._finish()
            return
        depth = self._buffer.depth(position, self._media_streams)
        if depth <= self.UNDERRUN_MARGIN and not self._end_of_content():
            self._enter_rebuffer(now)

    #: tolerance for "everything up to the end is already buffered" — the
    #: last media unit of a stream sits one unit-duration before `duration`
    END_TOLERANCE = 0.5

    def _end_of_content(self) -> bool:
        """True when the tail of the stream is fully buffered/consumed."""
        if self._stream_ended:
            return True
        duration = (
            self.header.file_properties.duration_ms / 1000.0 if self.header else 0.0
        )
        if not duration or not self._media_streams:
            return False
        horizons = [
            self._buffer.horizon_ms.get(s, -1) / 1000.0 for s in self._media_streams
        ]
        return min(horizons) >= duration - self.END_TOLERANCE

    def _start_playing(self, now: float) -> None:
        if self._stall_started is not None:
            if self._stall_is_underrun:
                self.rebuffer_time += now - self._stall_started
                if self.tracer is not None:
                    self.tracer.event(
                        "rebuffer.end",
                        span=self._playback_span,
                        client=self.user,
                        duration=now - self._stall_started,
                    )
            self._stall_started = None
            self._clock.resume(now)
        elif not self._clock.started:
            self._clock.start(now, media_time=self._start_position)
        if getattr(self, "_pending_catchup", False):
            # starting mid-lecture: replay only the latest stateful command
            # per type (the current slide), not the whole history
            self._pending_catchup = False
            if self.sync_mode == "script" and self._dispatcher is not None:
                self._dispatcher.seek(self._start_position)
            elif self.sync_mode == "timer":
                while (
                    self._timer_cursor < len(self._timer_commands)
                    and self._timer_commands[self._timer_cursor].timestamp
                    < self._start_position
                ):
                    self._timer_cursor += 1
        if self._first_render is None:
            self._first_render = now
            if self.sync_mode == "timer":
                self._timer_origin = now
            if self.tracer is not None:
                startup = (
                    now - self._connect_time
                    if self._connect_time is not None
                    else 0.0
                )
                self.tracer.event(
                    "playback.start",
                    span=self._playback_span,
                    client=self.user,
                    startup=startup,
                )
        self.state = PlayerState.PLAYING

    def _enter_rebuffer(self, now: float) -> None:
        self.state = PlayerState.BUFFERING
        self.rebuffer_count += 1
        self._stall_started = now
        self._stall_is_underrun = True
        self._clock.pause(now)
        if self.tracer is not None:
            self.tracer.event(
                "rebuffer.begin",
                span=self._playback_span,
                client=self.user,
                position=self.position,
            )
        if (
            self._recovery is not None
            and not self._reconnecting
            and not self._recovery.stalled(now)
        ):
            # data still flows, just not fast enough: degrade gracefully
            # to a lighter rendition instead of rebuffering repeatedly
            self._recovery.request_downshift()

    def _fire_timer_commands(self, now: float) -> None:
        """Strawman sync: commands fire at wall-clock offsets from start."""
        if self._timer_origin is None:
            return
        elapsed = now - self._timer_origin
        while (
            self._timer_cursor < len(self._timer_commands)
            and self._timer_commands[self._timer_cursor].timestamp <= elapsed
        ):
            self._on_command_fired(self._timer_commands[self._timer_cursor])
            self._timer_cursor += 1

    def _finish(self) -> None:
        self.state = PlayerState.FINISHED
        # freeze the playback position: the close handshake below advances
        # simulated time, and the clock must not drift past the content end
        duration = (
            self.header.file_properties.duration_ms / 1000.0
            if self.header is not None
            else 0.0
        )
        final = min(self.position, duration) if duration else self.position
        self._clock.seek(self.simulator.now, final)
        if not self._clock.paused and self._clock.started:
            self._clock.pause(self.simulator.now)
        if self._render_task is not None:
            self._render_task.stop()
        if self._reconnect_timer is not None:
            self.simulator.cancel(self._reconnect_timer)
            self._reconnect_timer = None
        if self._recovery is not None:
            self._recovery.reset()  # cancel any armed NAK timer
        for url, orphan in self._orphan_sessions:
            try:
                self.http.post(
                    f"{url}/control/close", body={"session_id": orphan}
                )
            except HTTPError:
                pass
        self._orphan_sessions.clear()
        if self.session_id is not None:
            try:
                self._control("close", session_id=self.session_id)
            except (PlayerError, HTTPError):
                pass
            self.session_id = None
        if self.tracer is not None and self._playback_span is not None:
            self.tracer.end(
                self._playback_span,
                rendered=len(self.rendered),
                rebuffers=self.rebuffer_count,
            )
            self._playback_span = None

    # ------------------------------------------------------------------
    # user interactions
    # ------------------------------------------------------------------

    def pause(self) -> None:
        if self.state is not PlayerState.PLAYING:
            raise PlayerError(f"cannot pause from {self.state.value}")
        self._control("pause", session_id=self.session_id)
        self._clock.pause(self.simulator.now)
        self.state = PlayerState.PAUSED

    def resume(self) -> None:
        if self.state is not PlayerState.PAUSED:
            raise PlayerError(f"cannot resume from {self.state.value}")
        self._control("resume", session_id=self.session_id)
        self._clock.resume(self.simulator.now)
        if self._recovery is not None:
            # arrivals legitimately stopped while paused; restart the
            # watchdog clock instead of declaring a stall
            self._recovery.note_arrival()
        self.state = PlayerState.PLAYING

    def seek(self, position: float) -> None:
        """Reposition; the post-seek stall is buffering but not an underrun."""
        if self.state not in (PlayerState.PLAYING, PlayerState.PAUSED):
            raise PlayerError(f"cannot seek from {self.state.value}")
        now = self.simulator.now
        was_paused = self.state is PlayerState.PAUSED
        if self.tracer is not None:
            self.tracer.event(
                "playback.seek",
                span=self._playback_span,
                client=self.user,
                position=position,
            )
        self._control("seek", session_id=self.session_id, position=position)
        if was_paused:
            self._control("resume", session_id=self.session_id)
        self._buffer.clear()
        self._depacketizer.expect_replay()  # the server re-sends from here
        if self._recovery is not None:
            self._recovery.reset()  # gaps before the seek are moot
        self._clock.seek(now, position)
        if not was_paused:
            self._clock.pause(now)
        if self._dispatcher is not None:
            self._dispatcher.seek(position)
        self._stall_started = now
        self._stall_is_underrun = False
        self.state = PlayerState.BUFFERING

    def stop(self) -> None:
        """End playback (the way to leave a broadcast with no duration)."""
        if self.state in (PlayerState.IDLE, PlayerState.FINISHED):
            raise PlayerError(f"cannot stop from {self.state.value}")
        self._finish()

    # ------------------------------------------------------------------
    # cohort de-aggregation
    # ------------------------------------------------------------------

    def split_member(
        self,
        host: str,
        *,
        user: str = "",
        seek_to: Optional[float] = None,
        render_ticker=None,
    ) -> "MediaPlayer":
        """De-aggregate one modeled viewer into its own real player.

        A cohort delegate (``multiplicity`` > 1) stands for N viewers whose
        playback never diverged. The moment one of them individuates — a
        seek (``seek_to``), or a reconnect-style action (``seek_to=None``,
        resume at the buffered frontier) — that member becomes a *twin*
        player on ``host``: it inherits the delegate's entire client-side
        history (delivered bytes, rendered log, fired commands, clock,
        QoE counters — the member lived inside the cohort until this
        instant), opens its own server session, and restarts delivery
        exactly where the individuating action lands it. The delegate's
        multiplicity drops by one; its server session keeps the opening
        multiplicity (server-side counts are attach-time audience).

        The twin's post-split delivery is byte-identical to what an
        independent player that issued the same action would receive:
        ``server.play(start=p)`` and ``server.seek(p)`` resolve the same
        packet cursor, and the twin replays the delegate's fast-start
        parameters so the pacing shape matches too.
        """
        if self.state not in (
            PlayerState.BUFFERING, PlayerState.PLAYING, PlayerState.PAUSED
        ):
            raise PlayerError(f"cannot split from {self.state.value}")
        if self.multiplicity < 2:
            raise PlayerError("no aggregated members left to split out")
        if self._broadcast and seek_to is not None:
            raise PlayerError("cannot seek a broadcast member")
        now = self.simulator.now
        twin = MediaPlayer(
            self.network,
            host,
            user=user or host,
            license_server=self.license_server,
            sync_mode=self.sync_mode,
            preroll_override=self.preroll_override,
            recovery=self.recovery_config,
            directory=self.directory,
            tracer=self.tracer,
            render_ticker=(
                render_ticker if render_ticker is not None
                else self._render_ticker
            ),
        )
        # shared context (immutable or server-owned)
        twin.header = self.header
        twin._point = self._point
        twin._broadcast = self._broadcast
        twin._server_url = self._server_url
        twin._license = self._license
        twin._media_streams = list(self._media_streams)
        twin.selected_video = self.selected_video
        twin._pending_streams = set(self._pending_streams)
        # client-side playback state: cloned, not re-derived — the member's
        # history *is* the delegate's. on_gap is a bound method back into
        # this player; detach it around the deepcopy so the clone doesn't
        # drag the whole player (network, simulator...) along
        saved_gap = self._depacketizer.on_gap
        self._depacketizer.on_gap = None
        twin._depacketizer = copy.deepcopy(self._depacketizer)
        self._depacketizer.on_gap = saved_gap
        twin._buffer = copy.deepcopy(self._buffer)
        twin._clock = copy.deepcopy(self._clock)
        assert self.header is not None
        twin._dispatcher = ScriptCommandDispatcher(
            list(self.header.script_commands), twin._on_command_fired
        )
        if self._dispatcher is not None:
            twin._dispatcher._cursor = self._dispatcher._cursor
        twin._timer_commands = sorted(self.header.script_commands)
        twin._timer_cursor = self._timer_cursor
        twin._timer_origin = self._timer_origin
        twin.rendered = list(self.rendered)
        twin.fired = list(self.fired)
        twin._connect_time = self._connect_time
        twin._first_render = self._first_render
        twin.rebuffer_count = self.rebuffer_count
        twin.rebuffer_time = self.rebuffer_time
        twin._stall_started = self._stall_started
        twin._stall_is_underrun = self._stall_is_underrun
        twin._start_position = self._start_position
        twin._play_burst_factor = self._play_burst_factor
        twin._stream_ended = self._stream_ended
        twin.downshift_log = list(self.downshift_log)
        twin._pending_catchup = getattr(self, "_pending_catchup", False)
        twin.state = self.state
        self.multiplicity -= 1
        if self.tracer is not None:
            self.tracer.event(
                "playback.split",
                span=self._playback_span,
                client=self.user,
                member=twin.user,
                remaining=self.multiplicity,
            )
            twin._playback_span = self.tracer.begin(
                "playback", client=twin.user, point=twin._point
            )
        twin._control(
            "open", point=twin._point, deliver=twin._on_packet, multiplicity=1,
            relocate=twin._on_relocate,
        )
        if self.tracer is not None:
            self.tracer.event(
                "session.attach",
                span=twin._playback_span,
                client=twin.user,
                session=twin.session_id,
            )
        if self._broadcast:
            # live: just attach; the feed's next packets reach the twin
            twin._control("play", session_id=twin.session_id)
        elif seek_to is not None:
            # the server resolves play(start=p) with the same cursor as
            # seek(p); client-side this is exactly seek()'s transition
            twin._control(
                "play", session_id=twin.session_id, start=seek_to,
                burst_factor=self._play_burst_factor,
            )
            if self.tracer is not None:
                self.tracer.event(
                    "playback.seek",
                    span=twin._playback_span,
                    client=twin.user,
                    position=seek_to,
                )
            twin._buffer.clear()
            twin._depacketizer.expect_replay()
            twin._clock.seek(now, seek_to)
            if twin._clock.started and not twin._clock.paused:
                twin._clock.pause(now)
            if twin._dispatcher is not None:
                twin._dispatcher.seek(seek_to)
            twin._stall_started = now
            twin._stall_is_underrun = False
            twin.state = PlayerState.BUFFERING
        else:
            # reconnect-style individuation: resume at the buffered
            # frontier; the replay overlap dedups in the depacketizer
            resume_at = twin._reconnect_position()
            twin._depacketizer.expect_replay(suppress_completed=True)
            twin._control(
                "play", session_id=twin.session_id, start=resume_at,
                burst_factor=self._play_burst_factor,
            )
        twin._arm_recovery()
        twin._start_render_loop()
        return twin

    # ------------------------------------------------------------------
    # driving & reporting
    # ------------------------------------------------------------------

    def run_until_finished(self, *, timeout: float = 3_600.0) -> "PlaybackReport":
        """Advance the simulation until playback completes."""
        deadline = self.simulator.now + timeout
        while self.state is not PlayerState.FINISHED:
            nxt = self.simulator.peek_time()
            if nxt is None or nxt > deadline:
                raise PlayerError(
                    f"playback did not finish before t={deadline} "
                    f"(state {self.state.value})"
                )
            self.simulator.step()
        return self.report()

    def watch(self, url: str, **play_kwargs) -> "PlaybackReport":
        """Connect, play to completion, report."""
        self.connect(url)
        self.play(**play_kwargs)
        return self.run_until_finished()

    def report(self) -> PlaybackReport:
        loss = self._depacketizer.loss_report()
        startup = (
            (self._first_render - self._connect_time)
            if self._first_render is not None and self._connect_time is not None
            else float("inf")
        )
        media_bytes = sum(
            unit.size
            for unit in self._depacketizer.completed
            if unit.stream_number != SCRIPT_STREAM_NUMBER
        )
        return PlaybackReport(
            point=self._point or "",
            startup_latency=startup,
            rebuffer_count=self.rebuffer_count,
            rebuffer_time=self.rebuffer_time,
            rendered=list(self.rendered),
            commands=list(self.fired),
            loss_rates={
                s: loss.loss_rate(s) for s in loss.delivered
            },
            duration_watched=self.position,
            media_bytes=media_bytes,
            recovery=self.recovery_stats.as_dict(),
            downshifts=list(self.downshift_log),
        )

    def mark_stream_ended(self) -> None:
        """Broadcast feeds call this when the live session closes."""
        self._stream_ended = True
