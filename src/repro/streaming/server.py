"""The media server — equivalent of Windows Media Services.

Publishes ASF content at named *publishing points* and streams it to
clients over the simulated network:

* **on-demand points** hold a stored :class:`~repro.asf.stream.ASFFile`;
  each client gets its own paced unicast with pause/resume/seek;
* **broadcast points** hold a live :class:`~repro.asf.stream.ASFLiveStream`;
  every attached client receives packets as the encoder emits them
  ("broadcast their encoded content in real time", §2.5).

The serving stack's structural invariant is **encode once, serve many**:

* every on-demand point owns exactly one :class:`_PointSchedule` — the
  packet walk (and any MBR-thinned packet variants) is computed once and
  shared by every session; per-session pacing state shrinks to a cursor;
* sessions that start at the same instant with the same parameters ride
  one :class:`_PacingGroup` — one simulator event per packet train paces
  all of them, instead of one private event chain per client;
* broadcast delivery is event-driven: the live stream pushes freshly
  encoded packets to the server, which schedules their fan-out at their
  send times — there is no polling pump.

Control is exposed both as a Python API (used by
:class:`repro.streaming.client.MediaPlayer`) and as HTTP routes on the
server's port (used by the publishing manager) — describe / play / pause /
resume / seek / close. QoS admission per client link uses
:class:`~repro.net.qos.QoSManager` when enabled.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..asf.packets import DataPacket
from ..asf.stream import ASFFile, ASFLiveStream
from ..metrics.counters import Counters
from ..net.engine import Simulator
from ..net.qos import QoSError, QoSManager, QoSSpec, Reservation
from ..net.transport import DatagramChannel, Message
from ..web.http import HTTPRequest, HTTPResponse, HTTPServer, VirtualNetwork
from .recovery import NakRequest
from .session import SessionError, SessionState, SessionTable, StreamSession


class PublishError(Exception):
    """Publishing-point misuse."""


class _PointSchedule:
    """The shared packet walk of one on-demand publishing point.

    Holds the stored file's packet sequence plus a memo of MBR-thinned
    packet variants keyed by ``(packet index, excluded streams)`` — a
    thinned packet is built once and then shipped to every session with
    the same rendition selection (zero-copy fan-out).
    """

    def __init__(self, asf: ASFFile) -> None:
        self.asf = asf
        self.packets = asf.packets
        self._thinned: Dict[
            Tuple[int, frozenset], Optional[Tuple[DataPacket, int]]
        ] = {}
        self._by_sequence: Optional[Dict[int, int]] = None

    def __len__(self) -> int:
        return len(self.packets)

    def index_of_sequence(self, sequence: int) -> Optional[int]:
        """Packet index carrying ``sequence`` (NAK repair lookup).

        Sequences are not dense in stored files (the packetizer drops
        empty packets), so this keeps a lazily built map rather than
        assuming ``index == sequence``.
        """
        if self._by_sequence is None:
            self._by_sequence = {
                p.sequence: i for i, p in enumerate(self.packets)
            }
        return self._by_sequence.get(sequence)

    def entry(
        self, index: int, excluded: frozenset
    ) -> Optional[Tuple[DataPacket, int]]:
        """``(packet, wire size)`` to ship at ``index``, or None if the
        whole packet belongs to withheld renditions."""
        packet = self.packets[index]
        if not excluded:
            return packet, packet.packet_size
        key = (index, excluded)
        try:
            return self._thinned[key]
        except KeyError:
            pass
        kept = [
            p for p in packet.payloads if p.stream_number not in excluded
        ]
        if not kept:
            result: Optional[Tuple[DataPacket, int]] = None
        else:
            thin = DataPacket(
                packet.sequence, packet.send_time_ms, kept, packet.packet_size
            )
            result = (thin, thin.used())  # thinned: padding stripped
        self._thinned[key] = result
        return result


class _PacingGroup:
    """Sessions walking one point's schedule in lock-step.

    Members joined at the same simulated instant, cursor and burst
    parameters, so a single event per packet train paces every one of
    them. A session that pauses/seeks/closes leaves the group, taking a
    snapshot of the shared cursor as its private ``packet_cursor``.
    """

    __slots__ = (
        "point", "key", "cursor", "origin", "base_ms",
        "burst_factor", "burst_window_ms", "members", "handle",
    )

    def __init__(
        self,
        point: str,
        key: tuple,
        cursor: int,
        origin: float,
        base_ms: int,
        burst_factor: float,
        burst_window_ms: float,
    ) -> None:
        self.point = point
        self.key = key
        self.cursor = cursor
        self.origin = origin
        self.base_ms = base_ms
        self.burst_factor = burst_factor
        self.burst_window_ms = burst_window_ms
        self.members: Dict[int, StreamSession] = {}
        self.handle: Optional[object] = None

    def effective_offset_ms(self, send_time_ms: int) -> float:
        """Send offset after fast-start burst compression."""
        offset = float(send_time_ms - self.base_ms)
        if self.burst_factor > 1.0:
            if offset <= self.burst_window_ms:
                offset = offset / self.burst_factor
            else:
                offset = (
                    self.burst_window_ms / self.burst_factor
                    + (offset - self.burst_window_ms)
                )
        return offset


@dataclass
class PublishingPoint:
    """A named piece of published content."""

    name: str
    content: Union[ASFFile, ASFLiveStream]
    description: str = ""

    @property
    def broadcast(self) -> bool:
        return isinstance(self.content, ASFLiveStream)

    @property
    def header(self):
        return self.content.header


class MediaServer:
    """Streams publishing points to clients over the virtual network.

    ``pacing_quantum`` (seconds) groups consecutive packets of a shared
    schedule whose send times fall within one window into a single packet
    train — one pacing event and one wire message per session per train.
    ``0.0`` (the default) paces packet-by-packet, exactly like a private
    walk. ``shared_pacing=False`` disables the shared-schedule fast path
    entirely and gives every session its own event chain — the seed
    behaviour, kept as the baseline for the serving-scale benchmark.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        host: str,
        *,
        port: int = 8080,
        qos_enabled: bool = False,
        pacing_quantum: float = 0.0,
        shared_pacing: bool = True,
        tracer=None,
        trace_label: str = "",
    ) -> None:
        if pacing_quantum < 0:
            raise PublishError("pacing_quantum must be >= 0")
        self.network = network
        self.simulator: Simulator = network.simulator
        self.host = network.add_host(host)
        self.port = port
        self.tracer = tracer  # optional repro.obs.Tracer
        #: namespace for trace/QoS identifiers when several servers (an
        #: origin plus edge relays) share one tracer — session ids and QoS
        #: rids are only unique per server, so multi-server audits need it
        self.trace_label = trace_label
        self.points: Dict[str, PublishingPoint] = {}
        self.sessions = SessionTable(tracer=tracer, label=trace_label)
        self.qos_enabled = qos_enabled
        self.pacing_quantum = pacing_quantum
        self.shared_pacing = shared_pacing
        self._qos: Dict[str, QoSManager] = {}
        self._schedules: Dict[str, _PointSchedule] = {}
        self._groups: Dict[tuple, _PacingGroup] = {}
        self._channels: Dict[int, DatagramChannel] = {}
        self._broadcast_feeds: Dict[str, Callable] = {}
        #: fault state: while crashed the server answers nothing and
        #: delivers nothing (flipped by crash()/restart(), typically via
        #: repro.net.faults)
        self.crashed = False
        self.crash_count = 0
        #: total media bytes shipped over all sessions (egress accounting
        #: for the edge-tier bench: origin egress vs direct fan-out)
        self.bytes_served = 0
        self.recovery_stats = Counters("server-recovery")
        #: broadcast NAK repair: per-point sequence -> packet, built
        #: incrementally over the live stream's accumulated history
        self._live_index: Dict[str, Dict[int, DataPacket]] = {}
        self._live_scanned: Dict[str, int] = {}
        self.http = HTTPServer(network, host, port)
        self._register_routes()

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------

    #: trace point.published/point.retired — True at the origin only:
    #: EdgeRelay overrides this to False, so local replica copies coming
    #: and going don't masquerade as authoritative lifecycle events
    _trace_point_lifecycle = True

    def publish(
        self,
        name: str,
        content: Union[ASFFile, ASFLiveStream],
        *,
        description: str = "",
    ) -> PublishingPoint:
        if name in self.points:
            raise PublishError(f"publishing point {name!r} already exists")
        point = PublishingPoint(name, content, description)
        self.points[name] = point
        if point.broadcast:
            # event-driven fan-out: the encoder's append wakes the server,
            # which schedules delivery at each packet's send time — no
            # polling pump, no events while the feed is idle
            feed = functools.partial(self._on_live_packets, name, content)
            content.subscribe(feed)
            self._broadcast_feeds[name] = feed
            backlog = content.packets
            if backlog:
                self._on_live_packets(name, content, backlog)
        else:
            self._schedules[name] = _PointSchedule(content)
        if self.tracer is not None and self._trace_point_lifecycle:
            self.tracer.event(
                "point.published",
                server=self.trace_label or self.host,
                point=name, broadcast=point.broadcast,
            )
        return point

    def unpublish(self, name: str) -> None:
        point = self._point(name)
        for session in self.sessions.sessions_for_point(name):
            self.close_session(session.session_id)
        feed = self._broadcast_feeds.pop(name, None)
        if feed is not None:
            point.content.unsubscribe(feed)
        self._schedules.pop(name, None)
        self._live_index.pop(name, None)
        self._live_scanned.pop(name, None)
        del self.points[name]
        if self.tracer is not None and self._trace_point_lifecycle:
            self.tracer.event(
                "point.retired",
                server=self.trace_label or self.host,
                point=name,
            )

    def _point(self, name: str) -> PublishingPoint:
        try:
            return self.points[name]
        except KeyError:
            raise PublishError(f"no publishing point {name!r}") from None

    def url_of(self, name: str) -> str:
        """The URL the publishing manager hands to students (Fig. 5)."""
        self._point(name)
        return f"http://{self.host}:{self.port}/lod/{name}"

    # ------------------------------------------------------------------
    # session control (Python API)
    # ------------------------------------------------------------------

    def describe(self, name: str):
        """Header of a publishing point (the DESCRIBE step)."""
        return self._point(name).header

    def _sid(self, session_id: int):
        """Trace-namespaced session identifier (see ``trace_label``)."""
        return self.sessions.trace_id(session_id)

    def open_session(
        self,
        name: str,
        client_host: str,
        deliver: Callable[[DataPacket], None],
        *,
        replica: bool = False,
        multiplicity: int = 1,
    ) -> StreamSession:
        if self.crashed:
            raise SessionError("server is down")
        point = self._point(name)
        session = self.sessions.create(
            name, client_host, deliver, broadcast=point.broadcast,
            replica=replica, multiplicity=multiplicity,
        )
        if not replica:
            # replicas buffer for *their* clients: they must receive the
            # full packet run, so MBR rendition selection is skipped
            self._select_renditions(session, point)
        if self.qos_enabled:
            qos_label = (
                f"{self.trace_label}:{client_host}"
                if self.trace_label else client_host
            )
            manager = self._qos.setdefault(
                client_host,
                QoSManager(
                    self.network.link(self.host, client_host),
                    tracer=self.tracer,
                    label=qos_label,
                ),
            )
            spec = QoSSpec(bandwidth=max(self._session_bitrate(session, point), 1.0))
            try:
                session.reservation = manager.reserve(
                    spec, owner=f"session{session.session_id}"
                )
            except QoSError:
                # failed handshake must not leave a half-open session
                # (nor, trivially, a reservation) behind
                self.sessions.close(session.session_id)
                raise
        return session

    def _select_renditions(self, session: StreamSession, point: PublishingPoint) -> None:
        """Intelligent streaming: pick one MBR video rendition per client.

        The chosen rendition is the highest-rate one that, together with
        the non-MBR streams, fits the client's downlink with 10% headroom;
        the other renditions are withheld (packet thinning).
        """
        header = point.header
        renditions = header.mbr_group("video")
        if not renditions:
            return
        link = self.network.link(self.host, session.client_host)
        other = sum(
            s.bitrate for s in header.streams
            if s.extra.get("mbr_group") != "video"
        )
        budget = link.bandwidth * 0.9 - other
        chosen = renditions[0]
        for rendition in renditions:
            if rendition.bitrate <= budget:
                chosen = rendition
        session.selected_video = chosen.stream_number
        session.excluded_streams = frozenset(
            s.stream_number for s in renditions if s is not chosen
        )

    @staticmethod
    def _session_bitrate(session: StreamSession, point: PublishingPoint) -> float:
        return sum(
            s.bitrate for s in point.header.streams
            if s.stream_number not in session.excluded_streams
        )

    def included_streams(self, session_id: int) -> List[int]:
        """Stream numbers this session actually receives."""
        session = self.sessions.get(session_id)
        header = self._point(session.point).header
        return [
            s.stream_number for s in header.streams
            if s.stream_number not in session.excluded_streams
        ]

    def play(
        self,
        session_id: int,
        *,
        start: float = 0.0,
        burst_factor: float = 1.0,
        burst_seconds: Optional[float] = None,
    ) -> None:
        """Start (or restart) delivery.

        ``burst_factor`` > 1 enables *fast start*: the first
        ``burst_seconds`` of content (default: the file's preroll) is sent
        at ``burst_factor``× the nominal pacing so the client fills its
        preroll buffer quickly, then delivery settles to real-time pacing —
        Windows Media's "Fast Start" behaviour.
        """
        if burst_factor < 1.0:
            raise SessionError("burst_factor must be >= 1")
        session = self.sessions.get(session_id)
        point = self._point(session.point)
        if session.state is SessionState.CONNECTING:
            session.transition(SessionState.STREAMING)
        elif session.state in (SessionState.PAUSED, SessionState.FINISHED):
            session.transition(SessionState.STREAMING)
        if point.broadcast:
            return  # broadcast clients receive the live fan-out's packets
        self._stop_session_pacing(session)
        session.position = start
        session.packet_cursor = self._cursor_for(point.content, start)
        window = burst_seconds
        if window is None:
            window = point.header.file_properties.preroll_ms / 1000.0
        session._burst_factor = burst_factor  # type: ignore[attr-defined]
        session._burst_window_ms = window * 1000.0  # type: ignore[attr-defined]
        self._start_pacing(session)

    def adopt_session(
        self,
        name: str,
        client_host: str,
        deliver: Callable[[DataPacket], None],
        *,
        cursor: int = 0,
        multiplicity: int = 1,
        burst_factor: float = 1.0,
        burst_window_ms: float = 0.0,
        relocate: Optional[Callable] = None,
    ) -> StreamSession:
        """Successor side of a warm hand-off: continue another server's
        delivery from an exact packet cursor.

        Unlike :meth:`play`, which anchors at a *position* and (re)sends
        from the nearest index point, adoption resumes at precisely the
        next unsent packet index — the client's buffer already holds
        everything before it, so there is no seek, no replay, and no gap.
        A cursor at/past the end of the schedule adopts straight into
        FINISHED (the predecessor had already delivered everything);
        broadcast sessions just attach to the live fan-out.
        """
        session = self.open_session(
            name, client_host, deliver, multiplicity=multiplicity
        )
        session.relocate = relocate
        point = self._point(name)
        session.transition(SessionState.STREAMING)
        if point.broadcast:
            return session
        sched = self._schedules[name]
        cursor = max(0, min(int(cursor), len(sched.packets)))
        session.packet_cursor = cursor
        if cursor < len(sched.packets):
            session.position = sched.packets[cursor].send_time_ms / 1000.0
            session._burst_factor = burst_factor  # type: ignore[attr-defined]
            session._burst_window_ms = burst_window_ms  # type: ignore[attr-defined]
            self._start_pacing(session)
        else:
            session.position = (
                point.header.file_properties.duration_ms / 1000.0
            )
            session.transition(SessionState.FINISHED)
        return session

    def pause(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        if session.state is SessionState.FINISHED:
            # delivery already completed; the client may still be rendering
            # its buffer, so a pause here is trivially satisfied
            return
        session.transition(SessionState.PAUSED)
        self._stop_session_pacing(session)

    def resume(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        session.transition(SessionState.STREAMING)
        if not session.broadcast:
            self._start_pacing(session)

    def seek(self, session_id: int, position: float) -> None:
        session = self.sessions.get(session_id)
        if session.broadcast:
            raise SessionError("cannot seek a broadcast session")
        point = self._point(session.point)
        was_streaming = session.state is SessionState.STREAMING
        self._stop_session_pacing(session)
        if session.state is SessionState.FINISHED:
            session.transition(SessionState.STREAMING)
            was_streaming = True
        session.position = position
        session.packet_cursor = self._cursor_for(point.content, position)
        if was_streaming:
            self._start_pacing(session)

    def close_session(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        self._stop_session_pacing(session)
        self._channels.pop(session_id, None)
        self._release_reservation(session)
        self.sessions.close(session_id)

    def _release_reservation(self, session: StreamSession) -> None:
        """Give back a session's QoS channel — every teardown path (clean
        close, crash, aborted handshake) funnels through here so no
        reservation outlives its session."""
        if session.reservation is not None:
            self._qos[session.client_host].release(session.reservation)
            session.reservation = None

    def qos_leaks(self) -> List[Reservation]:
        """Reservations still held across all client links."""
        return [r for manager in self._qos.values() for r in manager.active()]

    def assert_no_qos_leaks(self) -> None:
        """Raise :class:`QoSError` if any client link still holds a
        reservation — test-suite invariant after every teardown path."""
        for manager in self._qos.values():
            manager.assert_no_leaks()

    # ------------------------------------------------------------------
    # fault hooks (driven by repro.net.faults)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Hard process failure mid-stream.

        Every session dies with the process: pacing chains stop, datagram
        channels vanish, QoS reservations are reclaimed (the reservations
        live in this process — nothing survives to hold them). Clients
        notice only through silence; their watchdog drives reconnection
        after :meth:`restart`.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        if self.tracer is not None:
            self.tracer.event(
                "server.crash", host=self.host, sessions=len(self.sessions)
            )
        for session in self.sessions.all():
            self._stop_session_pacing(session)
            self._release_reservation(session)
            self.sessions.close(session.session_id)
        self._channels.clear()
        self._groups.clear()

    def restart(self) -> None:
        """Bring the crashed process back with empty session state.

        Published content is durable (stored files on disk, the live feed
        re-attached by the encoder), so points survive; sessions do not —
        clients must reopen.
        """
        self.crashed = False
        if self.tracer is not None:
            self.tracer.event("server.restart", host=self.host)

    # ------------------------------------------------------------------
    # recovery: NAK-driven selective retransmit + graceful degradation
    # ------------------------------------------------------------------

    def _on_recovery_message(self, message: Message) -> None:
        """Receive side of the client's recovery datagram channel."""
        payload = message.payload
        if isinstance(payload, NakRequest):
            self._handle_nak(payload)

    def _handle_nak(self, nak: NakRequest) -> None:
        """Re-send cached packets the client reports missing.

        Repairs reuse the point's shared packet cache (`_PointSchedule`
        entries for stored files, the live stream's accumulated packets
        for broadcasts) — a retransmit costs a lookup and a send, never a
        re-encode. Passive by design: no server-side timers or per-client
        loss state, so a loss-free run does zero extra work.
        """
        if self.crashed:
            return
        try:
            session = self.sessions.get(nak.session_id)
        except SessionError:
            self.recovery_stats.inc("naks_stale_session")
            return
        if not session.active and session.state is not SessionState.FINISHED:
            # FINISHED sessions still repair: an edge replica that took its
            # whole fill in one burst NAKs the holes *after* delivery ends
            self.recovery_stats.inc("naks_stale_session")
            return
        point = self.points.get(session.point)
        if point is None:
            return
        batch: List[DataPacket] = []
        wire = 0
        for sequence in nak.sequences:
            entry = self._repair_entry(point, session, sequence)
            if entry is None:
                self.recovery_stats.inc("repairs_unavailable")
                continue
            batch.append(entry[0])
            wire += entry[1]
        if batch:
            if self.tracer is not None:
                self.tracer.event(
                    "repair.sent",
                    session=self._sid(session.session_id),
                    count=len(batch),
                    bytes=wire,
                )
            self._send_train(session, batch, wire)
            session.retransmits_sent += len(batch)
            self.recovery_stats.inc("repairs_sent", len(batch))

    def _repair_entry(
        self, point: PublishingPoint, session: StreamSession, sequence: int
    ) -> Optional[Tuple[DataPacket, int]]:
        """Cached ``(packet, wire size)`` for one NAKed sequence."""
        if point.broadcast:
            packet = self._live_packet(point, sequence)
            if packet is None:
                return None
            return self._thin_for(session, packet)
        sched = self._schedules.get(point.name)
        if sched is None:
            return None
        index = sched.index_of_sequence(sequence)
        if index is None:
            return None
        return sched.entry(index, session.excluded_streams)

    def _live_packet(
        self, point: PublishingPoint, sequence: int
    ) -> Optional[DataPacket]:
        """Find a broadcast packet by sequence, extending the per-point
        index over whatever the live stream has accumulated since the
        last lookup (amortized O(1) per appended packet)."""
        index = self._live_index.setdefault(point.name, {})
        packets = point.content.packets
        scanned = self._live_scanned.get(point.name, 0)
        while scanned < len(packets):
            packet = packets[scanned]
            index[packet.sequence] = packet
            scanned += 1
        self._live_scanned[point.name] = scanned
        return index.get(sequence)

    def downshift(self, session_id: int) -> Optional[int]:
        """Shift a session one MBR rendition down (graceful degradation).

        Returns the new video stream number, or None when the session is
        single-rate or already at the lowest rendition. The QoS channel is
        re-reserved at the reduced bitrate; if even that is refused the
        session continues best-effort rather than being torn down.
        """
        session = self.sessions.get(session_id)
        point = self._point(session.point)
        renditions = sorted(
            point.header.mbr_group("video"), key=lambda s: s.bitrate
        )
        if not renditions or session.selected_video is None:
            return None
        numbers = [s.stream_number for s in renditions]
        try:
            current = numbers.index(session.selected_video)
        except ValueError:
            return None
        if current == 0:
            return None  # already at the floor
        chosen = renditions[current - 1]
        session.selected_video = chosen.stream_number
        session.excluded_streams = frozenset(
            s.stream_number for s in renditions if s is not chosen
        )
        session.downshifts += 1
        self.recovery_stats.inc("downshifts")
        if self.tracer is not None:
            self.tracer.event(
                "session.downshift",
                session=self._sid(session.session_id),
                video=chosen.stream_number,
            )
        if session.reservation is not None:
            manager = self._qos[session.client_host]
            manager.release(session.reservation)
            session.reservation = None
            spec = QoSSpec(
                bandwidth=max(self._session_bitrate(session, point), 1.0)
            )
            try:
                session.reservation = manager.reserve(
                    spec, owner=f"session{session.session_id}"
                )
            except QoSError:
                pass  # collapsed link may refuse even the floor; run best-effort
        return chosen.stream_number

    # ------------------------------------------------------------------
    # pacing
    # ------------------------------------------------------------------

    @staticmethod
    def _cursor_for(asf: ASFFile, position: float) -> int:
        start_seq = asf.ensure_index().seek(position)
        for i, packet in enumerate(asf.packets):
            if packet.sequence >= start_seq:
                return i
        return len(asf.packets)

    def _stop_session_pacing(self, session: StreamSession) -> None:
        """Detach a session from whatever is pacing it (group or private)."""
        if session.pacing_handle is not None:
            self.simulator.cancel(session.pacing_handle)
            session.pacing_handle = None
        self._leave_group(session)

    def _start_pacing(self, session: StreamSession) -> None:
        """Anchor pacing at 'now'; packets go out at their relative send times."""
        if self.shared_pacing:
            self._join_group(session)
            return
        # legacy per-session packet walk (bench baseline): every session
        # runs its own event chain over the point's packets
        point = self._point(session.point)
        asf: ASFFile = point.content
        session._pace_origin = self.simulator.now  # type: ignore[attr-defined]
        if session.packet_cursor < len(asf.packets):
            session._pace_base = asf.packets[  # type: ignore[attr-defined]
                session.packet_cursor
            ].send_time_ms
        else:
            session._pace_base = 0  # type: ignore[attr-defined]
        self._schedule_next_packet(session)

    def _schedule_next_packet(self, session: StreamSession) -> None:
        point = self._point(session.point)
        asf: ASFFile = point.content
        if session.packet_cursor >= len(asf.packets):
            if session.state is SessionState.STREAMING:
                session.transition(SessionState.FINISHED)
            return
        packet = asf.packets[session.packet_cursor]
        offset_ms = packet.send_time_ms - session._pace_base  # type: ignore[attr-defined]
        burst = getattr(session, "_burst_factor", 1.0)
        window = getattr(session, "_burst_window_ms", 0.0)
        if burst > 1.0:
            if offset_ms <= window:
                offset_ms = offset_ms / burst
            else:
                offset_ms = window / burst + (offset_ms - window)
        offset = offset_ms / 1000.0

        def send() -> None:
            session.pacing_handle = None
            if session.state is not SessionState.STREAMING:
                return
            self._transmit(session, packet)
            session.packet_cursor += 1
            self._schedule_next_packet(session)

        at = session._pace_origin + max(0.0, offset)  # type: ignore[attr-defined]
        session.pacing_handle = self.simulator.schedule_at(
            max(at, self.simulator.now), send
        )

    # ------------------------------------------------------------------
    # shared-schedule pacing (encode once, serve many)
    # ------------------------------------------------------------------

    def _join_group(self, session: StreamSession) -> None:
        """Attach a session to the pacing group walking its point from the
        same cursor at this instant — creating the group if none exists."""
        sched = self._schedules[session.point]
        burst = getattr(session, "_burst_factor", 1.0)
        window = getattr(session, "_burst_window_ms", 0.0)
        now = self.simulator.now
        key = (session.point, session.packet_cursor, now, burst, window)
        group = self._groups.get(key)
        if group is None:
            if session.packet_cursor < len(sched.packets):
                base_ms = sched.packets[session.packet_cursor].send_time_ms
            else:
                base_ms = 0
            group = _PacingGroup(
                session.point, key, session.packet_cursor, now,
                base_ms, burst, window,
            )
            self._groups[key] = group
        group.members[session.session_id] = session
        session.pacing_group = group
        if group.handle is None:
            self._schedule_group(group)

    def _leave_group(self, session: StreamSession) -> None:
        group = session.pacing_group
        if group is None:
            return
        session.packet_cursor = group.cursor
        session.pacing_group = None
        group.members.pop(session.session_id, None)
        if not group.members:
            if group.handle is not None:
                self.simulator.cancel(group.handle)
                group.handle = None
            self._groups.pop(group.key, None)

    def _schedule_group(self, group: _PacingGroup) -> None:
        sched = self._schedules.get(group.point)
        if sched is None or group.cursor >= len(sched.packets):
            self._finish_group(group)
            return
        packet = sched.packets[group.cursor]
        offset = group.effective_offset_ms(packet.send_time_ms) / 1000.0
        at = group.origin + max(0.0, offset)
        group.handle = self.simulator.schedule_at(
            max(at, self.simulator.now),
            functools.partial(self._fire_group, group),
        )

    def _fire_group(self, group: _PacingGroup) -> None:
        group.handle = None
        # once the walk advances, the group is no longer joinable: a later
        # play() at the original cursor must start its own schedule
        self._groups.pop(group.key, None)
        sched = self._schedules.get(group.point)
        if sched is None:
            return  # point unpublished with a fan-out still in flight
        packets = sched.packets
        start_eff = group.effective_offset_ms(
            packets[group.cursor].send_time_ms
        )
        quantum_ms = self.pacing_quantum * 1000.0
        train = [group.cursor]
        group.cursor += 1
        while group.cursor < len(packets):
            eff = group.effective_offset_ms(packets[group.cursor].send_time_ms)
            if eff - start_eff > quantum_ms:
                break
            train.append(group.cursor)
            group.cursor += 1
        delivered: List[int] = []
        total_wire = 0
        for session in list(group.members.values()):
            if session.state is not SessionState.STREAMING:
                continue
            batch: List[DataPacket] = []
            wire = 0
            for index in train:
                entry = sched.entry(index, session.excluded_streams)
                if entry is None:
                    continue
                batch.append(entry[0])
                wire += entry[1]
            if batch:
                self._send_train(session, batch, wire, traced=False)
                delivered.append(session.session_id)
                total_wire += wire
        if self.tracer is not None and delivered:
            # one record per group fire, not per member — tracing must not
            # reintroduce the O(sessions) per-train work the shared pacing
            # group exists to avoid
            self.tracer.event(
                "packet.train",
                sessions=[self._sid(s) for s in delivered],
                count=len(train),
                bytes=total_wire,
                first_seq=packets[train[0]].sequence,
                last_seq=packets[train[-1]].sequence,
            )
        for session in group.members.values():
            session.packet_cursor = group.cursor
        if group.cursor >= len(packets):
            self._finish_group(group)
        else:
            self._schedule_group(group)

    def _finish_group(self, group: _PacingGroup) -> None:
        self._groups.pop(group.key, None)
        if group.handle is not None:
            self.simulator.cancel(group.handle)
            group.handle = None
        for session in list(group.members.values()):
            session.packet_cursor = group.cursor
            session.pacing_group = None
            if session.state is SessionState.STREAMING:
                session.transition(SessionState.FINISHED)
        group.members.clear()

    # ------------------------------------------------------------------
    # broadcast fan-out (event-driven)
    # ------------------------------------------------------------------

    def _on_live_packets(
        self, name: str, stream: ASFLiveStream, packets: Sequence[DataPacket]
    ) -> None:
        """Fresh packets from the live encoder: schedule each fan-out at
        its send time (immediately for overdue packets) in one batch."""
        if self.crashed:
            # the process is down; the encoder's history still accumulates
            # in the live stream, so post-restart NAKs can repair the hole
            return
        now = self.simulator.now
        self.simulator.schedule_batch(
            (
                max(0.0, packet.send_time_ms / 1000.0 - now),
                functools.partial(self._fan_out_live, name, stream, packet),
            )
            for packet in packets
        )

    def _fan_out_live(
        self, name: str, stream: ASFLiveStream, packet: DataPacket
    ) -> None:
        if self.crashed:
            return  # fan-out event scheduled before the crash landed
        point = self.points.get(name)
        if point is None or point.content is not stream:
            return  # unpublished (or republished) while the event was in flight
        for session in self.sessions.sessions_for_point(name):
            if session.state is SessionState.STREAMING:
                self._transmit(session, packet)

    # ------------------------------------------------------------------
    # the wire
    # ------------------------------------------------------------------

    def _channel_for(self, session: StreamSession) -> DatagramChannel:
        channel = self._channels.get(session.session_id)
        if channel is None:
            link = self.network.link(self.host, session.client_host)
            channel = DatagramChannel(
                link, functools.partial(self._deliver_message, session)
            )
            self._channels[session.session_id] = channel
        return channel

    @staticmethod
    def _deliver_message(session: StreamSession, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, list):  # a packet train: deliver in order
            for packet in payload:
                session.deliver(packet)
        else:
            session.deliver(payload)

    def _send_train(
        self,
        session: StreamSession,
        packets: List[DataPacket],
        wire_size: int,
        traced: bool = True,
    ) -> None:
        """Ship a train as one wire message (one serialization, one arrival).

        ``traced=False`` lets the shared-pacing fan-out emit a single
        aggregated ``packet.train`` record for the whole group instead of
        one per member.
        """
        if traced and self.tracer is not None:
            self.tracer.event(
                "packet.train",
                session=self._sid(session.session_id),
                count=len(packets),
                bytes=wire_size,
                first_seq=packets[0].sequence,
                last_seq=packets[-1].sequence,
            )
        payload = packets[0] if len(packets) == 1 else packets
        self._channel_for(session).send(Message(payload, wire_size))
        session.packets_sent += len(packets)
        session.bytes_sent += wire_size
        self.bytes_served += wire_size

    def _thin_for(
        self, session: StreamSession, packet: DataPacket
    ) -> Optional[Tuple[DataPacket, int]]:
        """Per-session view of one packet (MBR thinning), or None when the
        whole packet belongs to withheld renditions."""
        if not session.excluded_streams:
            return packet, packet.packet_size
        kept = [
            p for p in packet.payloads
            if p.stream_number not in session.excluded_streams
        ]
        if not kept:
            return None
        thin = DataPacket(
            packet.sequence, packet.send_time_ms, kept, packet.packet_size
        )
        return thin, thin.used()  # thinned: padding stripped

    def _transmit(self, session: StreamSession, packet: DataPacket) -> None:
        entry = self._thin_for(session, packet)
        if entry is None:
            return
        self._send_train(session, [entry[0]], entry[1])

    # ------------------------------------------------------------------
    # HTTP control plane
    # ------------------------------------------------------------------

    def _register_routes(self) -> None:
        self.http.route("GET", "/lod/", self._handle_describe)
        self.http.route("POST", "/control/", self._handle_control)

    def _handle_describe(self, request: HTTPRequest) -> HTTPResponse:
        if self.crashed:
            return HTTPResponse(503, body="server is down")
        name = request.path[len("/lod/"):]
        if name not in self.points:
            return HTTPResponse(404, body=f"unknown publishing point {name!r}")
        point = self.points[name]
        body = {
            "point": name,
            "broadcast": point.broadcast,
            "header": point.header,
            "description": point.description,
            # nominal content rate — what a relay tree charges against its
            # backbone budget for a fill or live feed over this point
            "bitrate": point.header.total_bitrate,
        }
        if request.query.get("replica") and not point.broadcast:
            # a replica fill needs the content address (cache key) and the
            # exact sequence manifest — sequences are sparse, so a count
            # alone cannot tell a hole from a packetizer gap
            content: ASFFile = point.content
            body["cache_key"] = content.fingerprint()
            body["packet_count"] = content.packet_count
            body["sequences"] = tuple(p.sequence for p in content.packets)
        return HTTPResponse(200, body=body)

    def _open_kwargs(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Keyword arguments the ``open`` control action forwards to
        :meth:`open_session`. Subclasses extend — the edge relay adds the
        hop-limited fill token a tree fill carries."""
        return {
            "replica": bool(body.get("replica")),
            "multiplicity": int(body.get("multiplicity", 1)),
        }

    def _handle_control(self, request: HTTPRequest) -> HTTPResponse:
        if self.crashed:
            return HTTPResponse(503, body="server is down")
        action = request.path[len("/control/"):]
        body = request.body or {}
        try:
            if action == "open":
                session = self.open_session(
                    body["point"], request.client_host, body["deliver"],
                    **self._open_kwargs(body),
                )
                # how to re-point this client if its session is ever
                # warm-handed to a successor edge (None: crash path only)
                session.relocate = body.get("relocate")
                return HTTPResponse(
                    200,
                    body={
                        "session_id": session.session_id,
                        "streams": self.included_streams(session.session_id),
                        "selected_video": session.selected_video,
                        # reverse datagram path for NAKs — callables ride
                        # response bodies the same way `deliver` rides the
                        # open request
                        "recovery_sink": self._on_recovery_message,
                    },
                )
            if action == "adopt":
                # warm hand-off: the draining edge posts the session
                # cursor here; client_host comes from the body (the
                # *viewer's* host — request.client_host is the edge's)
                session = self.adopt_session(
                    body["point"], body["client_host"], body["deliver"],
                    cursor=int(body.get("cursor", 0)),
                    multiplicity=int(body.get("multiplicity", 1)),
                    burst_factor=float(body.get("burst_factor", 1.0)),
                    burst_window_ms=float(body.get("burst_window_ms", 0.0)),
                    relocate=body.get("relocate"),
                )
                return HTTPResponse(
                    200,
                    body={
                        "session_id": session.session_id,
                        "trace_session": self._sid(session.session_id),
                        "streams": self.included_streams(session.session_id),
                        "selected_video": session.selected_video,
                        "recovery_sink": self._on_recovery_message,
                    },
                )
            session_id = int(body["session_id"])
            if action == "downshift":
                new_video = self.downshift(session_id)
                return HTTPResponse(
                    200,
                    body={
                        "ok": new_video is not None,
                        "selected_video": self.sessions.get(
                            session_id
                        ).selected_video,
                        "streams": self.included_streams(session_id),
                    },
                )
            if action == "play":
                self.play(
                    session_id,
                    start=float(body.get("start", 0.0)),
                    burst_factor=float(body.get("burst_factor", 1.0)),
                    burst_seconds=(
                        float(body["burst_seconds"])
                        if "burst_seconds" in body
                        else None
                    ),
                )
            elif action == "pause":
                self.pause(session_id)
            elif action == "resume":
                self.resume(session_id)
            elif action == "seek":
                self.seek(session_id, float(body["position"]))
            elif action == "close":
                self.close_session(session_id)
            else:
                return HTTPResponse(404, body=f"unknown action {action!r}")
            return HTTPResponse(200, body={"ok": True})
        except (PublishError, SessionError, QoSError, KeyError) as exc:
            return HTTPResponse(409, body=str(exc))
