"""The media server — equivalent of Windows Media Services.

Publishes ASF content at named *publishing points* and streams it to
clients over the simulated network:

* **on-demand points** hold a stored :class:`~repro.asf.stream.ASFFile`;
  each client gets its own paced unicast with pause/resume/seek;
* **broadcast points** hold a live :class:`~repro.asf.stream.ASFLiveStream`;
  every attached client receives packets as the encoder emits them
  ("broadcast their encoded content in real time", §2.5).

Control is exposed both as a Python API (used by
:class:`repro.streaming.client.MediaPlayer`) and as HTTP routes on the
server's port (used by the publishing manager) — describe / play / pause /
resume / seek / close. QoS admission per client link uses
:class:`~repro.net.qos.QoSManager` when enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from ..asf.packets import DataPacket
from ..asf.stream import ASFFile, ASFLiveStream
from ..net.engine import PeriodicTask, Simulator
from ..net.qos import QoSError, QoSManager, QoSSpec
from ..net.transport import DatagramChannel, Message
from ..web.http import HTTPRequest, HTTPResponse, HTTPServer, VirtualNetwork
from .session import SessionError, SessionState, SessionTable, StreamSession


class PublishError(Exception):
    """Publishing-point misuse."""


@dataclass
class PublishingPoint:
    """A named piece of published content."""

    name: str
    content: Union[ASFFile, ASFLiveStream]
    description: str = ""

    @property
    def broadcast(self) -> bool:
        return isinstance(self.content, ASFLiveStream)

    @property
    def header(self):
        return self.content.header


class MediaServer:
    """Streams publishing points to clients over the virtual network."""

    #: how often broadcast points poll the live encoder feed
    BROADCAST_TICK = 0.05

    def __init__(
        self,
        network: VirtualNetwork,
        host: str,
        *,
        port: int = 8080,
        qos_enabled: bool = False,
    ) -> None:
        self.network = network
        self.simulator: Simulator = network.simulator
        self.host = network.add_host(host)
        self.port = port
        self.points: Dict[str, PublishingPoint] = {}
        self.sessions = SessionTable()
        self.qos_enabled = qos_enabled
        self._qos: Dict[str, QoSManager] = {}
        self._broadcast_pumps: Dict[str, PeriodicTask] = {}
        self.http = HTTPServer(network, host, port)
        self._register_routes()

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------

    def publish(
        self,
        name: str,
        content: Union[ASFFile, ASFLiveStream],
        *,
        description: str = "",
    ) -> PublishingPoint:
        if name in self.points:
            raise PublishError(f"publishing point {name!r} already exists")
        point = PublishingPoint(name, content, description)
        self.points[name] = point
        if point.broadcast:
            self._broadcast_pumps[name] = PeriodicTask(
                self.simulator, self.BROADCAST_TICK, lambda n=name: self._pump_broadcast(n)
            )
        return point

    def unpublish(self, name: str) -> None:
        point = self._point(name)
        for session in self.sessions.sessions_for_point(name):
            self.close_session(session.session_id)
        pump = self._broadcast_pumps.pop(name, None)
        if pump is not None:
            pump.stop()
        del self.points[name]

    def _point(self, name: str) -> PublishingPoint:
        try:
            return self.points[name]
        except KeyError:
            raise PublishError(f"no publishing point {name!r}") from None

    def url_of(self, name: str) -> str:
        """The URL the publishing manager hands to students (Fig. 5)."""
        self._point(name)
        return f"http://{self.host}:{self.port}/lod/{name}"

    # ------------------------------------------------------------------
    # session control (Python API)
    # ------------------------------------------------------------------

    def describe(self, name: str):
        """Header of a publishing point (the DESCRIBE step)."""
        return self._point(name).header

    def open_session(
        self,
        name: str,
        client_host: str,
        deliver: Callable[[DataPacket], None],
    ) -> StreamSession:
        point = self._point(name)
        session = self.sessions.create(
            name, client_host, deliver, broadcast=point.broadcast
        )
        self._select_renditions(session, point)
        if self.qos_enabled:
            manager = self._qos.setdefault(
                client_host, QoSManager(self.network.link(self.host, client_host))
            )
            spec = QoSSpec(bandwidth=max(self._session_bitrate(session, point), 1.0))
            session.reservation = manager.reserve(spec, owner=f"session{session.session_id}")
        return session

    def _select_renditions(self, session: StreamSession, point: PublishingPoint) -> None:
        """Intelligent streaming: pick one MBR video rendition per client.

        The chosen rendition is the highest-rate one that, together with
        the non-MBR streams, fits the client's downlink with 10% headroom;
        the other renditions are withheld (packet thinning).
        """
        header = point.header
        renditions = header.mbr_group("video")
        if not renditions:
            return
        link = self.network.link(self.host, session.client_host)
        other = sum(
            s.bitrate for s in header.streams
            if s.extra.get("mbr_group") != "video"
        )
        budget = link.bandwidth * 0.9 - other
        chosen = renditions[0]
        for rendition in renditions:
            if rendition.bitrate <= budget:
                chosen = rendition
        session.selected_video = chosen.stream_number
        session.excluded_streams = frozenset(
            s.stream_number for s in renditions if s is not chosen
        )

    @staticmethod
    def _session_bitrate(session: StreamSession, point: PublishingPoint) -> float:
        return sum(
            s.bitrate for s in point.header.streams
            if s.stream_number not in session.excluded_streams
        )

    def included_streams(self, session_id: int) -> List[int]:
        """Stream numbers this session actually receives."""
        session = self.sessions.get(session_id)
        header = self._point(session.point).header
        return [
            s.stream_number for s in header.streams
            if s.stream_number not in session.excluded_streams
        ]

    def play(
        self,
        session_id: int,
        *,
        start: float = 0.0,
        burst_factor: float = 1.0,
        burst_seconds: Optional[float] = None,
    ) -> None:
        """Start (or restart) delivery.

        ``burst_factor`` > 1 enables *fast start*: the first
        ``burst_seconds`` of content (default: the file's preroll) is sent
        at ``burst_factor``× the nominal pacing so the client fills its
        preroll buffer quickly, then delivery settles to real-time pacing —
        Windows Media's "Fast Start" behaviour.
        """
        if burst_factor < 1.0:
            raise SessionError("burst_factor must be >= 1")
        session = self.sessions.get(session_id)
        point = self._point(session.point)
        if session.state is SessionState.CONNECTING:
            session.transition(SessionState.STREAMING)
        elif session.state in (SessionState.PAUSED, SessionState.FINISHED):
            session.transition(SessionState.STREAMING)
        if point.broadcast:
            return  # broadcast clients just receive the pump's packets
        session.position = start
        session.packet_cursor = self._cursor_for(point.content, start)
        window = burst_seconds
        if window is None:
            window = point.header.file_properties.preroll_ms / 1000.0
        session._burst_factor = burst_factor  # type: ignore[attr-defined]
        session._burst_window_ms = window * 1000.0  # type: ignore[attr-defined]
        self._start_pacing(session)

    def pause(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        session.transition(SessionState.PAUSED)
        if session.pacing_handle is not None:
            self.simulator.cancel(session.pacing_handle)
            session.pacing_handle = None

    def resume(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        session.transition(SessionState.STREAMING)
        if not session.broadcast:
            self._start_pacing(session)

    def seek(self, session_id: int, position: float) -> None:
        session = self.sessions.get(session_id)
        if session.broadcast:
            raise SessionError("cannot seek a broadcast session")
        point = self._point(session.point)
        was_streaming = session.state is SessionState.STREAMING
        if session.pacing_handle is not None:
            self.simulator.cancel(session.pacing_handle)
            session.pacing_handle = None
        if session.state is SessionState.FINISHED:
            session.transition(SessionState.STREAMING)
            was_streaming = True
        session.position = position
        session.packet_cursor = self._cursor_for(point.content, position)
        if was_streaming:
            self._start_pacing(session)

    def close_session(self, session_id: int) -> None:
        session = self.sessions.get(session_id)
        if session.pacing_handle is not None:
            self.simulator.cancel(session.pacing_handle)
        if session.reservation is not None:
            self._qos[session.client_host].release(session.reservation)
            session.reservation = None
        self.sessions.close(session_id)

    # ------------------------------------------------------------------
    # pacing
    # ------------------------------------------------------------------

    @staticmethod
    def _cursor_for(asf: ASFFile, position: float) -> int:
        start_seq = asf.ensure_index().seek(position)
        for i, packet in enumerate(asf.packets):
            if packet.sequence >= start_seq:
                return i
        return len(asf.packets)

    def _start_pacing(self, session: StreamSession) -> None:
        """Anchor pacing at 'now'; packets go out at their relative send times."""
        point = self._point(session.point)
        asf: ASFFile = point.content
        session._pace_origin = self.simulator.now  # type: ignore[attr-defined]
        if session.packet_cursor < len(asf.packets):
            session._pace_base = asf.packets[  # type: ignore[attr-defined]
                session.packet_cursor
            ].send_time_ms
        else:
            session._pace_base = 0  # type: ignore[attr-defined]
        self._schedule_next_packet(session)

    def _schedule_next_packet(self, session: StreamSession) -> None:
        point = self._point(session.point)
        asf: ASFFile = point.content
        if session.packet_cursor >= len(asf.packets):
            if session.state is SessionState.STREAMING:
                session.transition(SessionState.FINISHED)
            return
        packet = asf.packets[session.packet_cursor]
        offset_ms = packet.send_time_ms - session._pace_base  # type: ignore[attr-defined]
        burst = getattr(session, "_burst_factor", 1.0)
        window = getattr(session, "_burst_window_ms", 0.0)
        if burst > 1.0:
            if offset_ms <= window:
                offset_ms = offset_ms / burst
            else:
                offset_ms = window / burst + (offset_ms - window)
        offset = offset_ms / 1000.0

        def send() -> None:
            session.pacing_handle = None
            if session.state is not SessionState.STREAMING:
                return
            self._transmit(session, packet)
            session.packet_cursor += 1
            self._schedule_next_packet(session)

        at = session._pace_origin + max(0.0, offset)  # type: ignore[attr-defined]
        session.pacing_handle = self.simulator.schedule_at(
            max(at, self.simulator.now), send
        )

    def _pump_broadcast(self, name: str) -> None:
        point = self.points.get(name)
        if point is None or not point.broadcast:
            return
        stream: ASFLiveStream = point.content
        due = stream.packets_due(self.simulator.now)
        if not due:
            return
        for session in self.sessions.sessions_for_point(name):
            if session.state is not SessionState.STREAMING:
                continue
            for packet in due:
                self._transmit(session, packet)

    def _transmit(self, session: StreamSession, packet: DataPacket) -> None:
        if session.excluded_streams:
            kept = [
                p for p in packet.payloads
                if p.stream_number not in session.excluded_streams
            ]
            if not kept:
                return  # whole packet belonged to withheld renditions
            packet = DataPacket(
                packet.sequence, packet.send_time_ms, kept, packet.packet_size
            )
            wire_size = packet.used()  # thinned: padding stripped
        else:
            wire_size = packet.packet_size
        link = self.network.link(self.host, session.client_host)
        channel = DatagramChannel(link, lambda m: session.deliver(m.payload))
        channel.send(Message(packet, wire_size))
        session.packets_sent += 1
        session.bytes_sent += wire_size

    # ------------------------------------------------------------------
    # HTTP control plane
    # ------------------------------------------------------------------

    def _register_routes(self) -> None:
        self.http.route("GET", "/lod/", self._handle_describe)
        self.http.route("POST", "/control/", self._handle_control)

    def _handle_describe(self, request: HTTPRequest) -> HTTPResponse:
        name = request.path[len("/lod/"):]
        if name not in self.points:
            return HTTPResponse(404, body=f"unknown publishing point {name!r}")
        point = self.points[name]
        return HTTPResponse(
            200,
            body={
                "point": name,
                "broadcast": point.broadcast,
                "header": point.header,
                "description": point.description,
            },
        )

    def _handle_control(self, request: HTTPRequest) -> HTTPResponse:
        action = request.path[len("/control/"):]
        body = request.body or {}
        try:
            if action == "open":
                session = self.open_session(
                    body["point"], request.client_host, body["deliver"]
                )
                return HTTPResponse(
                    200,
                    body={
                        "session_id": session.session_id,
                        "streams": self.included_streams(session.session_id),
                        "selected_video": session.selected_video,
                    },
                )
            session_id = int(body["session_id"])
            if action == "play":
                self.play(
                    session_id,
                    start=float(body.get("start", 0.0)),
                    burst_factor=float(body.get("burst_factor", 1.0)),
                    burst_seconds=(
                        float(body["burst_seconds"])
                        if "burst_seconds" in body
                        else None
                    ),
                )
            elif action == "pause":
                self.pause(session_id)
            elif action == "resume":
                self.resume(session_id)
            elif action == "seek":
                self.seek(session_id, float(body["position"]))
            elif action == "close":
                self.close_session(session_id)
            else:
                return HTTPResponse(404, body=f"unknown action {action!r}")
            return HTTPResponse(200, body={"ok": True})
        except (PublishError, SessionError, QoSError, KeyError) as exc:
            return HTTPResponse(409, body=str(exc))
