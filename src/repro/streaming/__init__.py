"""Streaming: media server, edge-relay tier, sessions, jitter-buffered player."""

from .backbone import BackboneBudget, BudgetError
from .buffer import JitterBuffer
from .client import (
    FiredCommand,
    MediaPlayer,
    PlaybackReport,
    PlayerError,
    PlayerState,
    RenderedUnit,
)
from .edge import (
    EdgeDirectory,
    EdgeRelay,
    FillToken,
    PacketRunCache,
    PlacementError,
    build_edge_tier,
    build_relay_tree,
)
from .recovery import NakRequest, RecoveryClient, RecoveryConfig
from .server import MediaServer, PublishError, PublishingPoint
from .session import SessionError, SessionState, SessionTable, StreamSession

__all__ = [
    "BackboneBudget",
    "BudgetError",
    "EdgeDirectory",
    "EdgeRelay",
    "FillToken",
    "FiredCommand",
    "JitterBuffer",
    "MediaPlayer",
    "MediaServer",
    "NakRequest",
    "PacketRunCache",
    "PlacementError",
    "PlaybackReport",
    "PlayerError",
    "PlayerState",
    "PublishError",
    "PublishingPoint",
    "RecoveryClient",
    "RecoveryConfig",
    "RenderedUnit",
    "SessionError",
    "SessionState",
    "SessionTable",
    "StreamSession",
    "build_edge_tier",
    "build_relay_tree",
]
