"""Streaming: media server, sessions, jitter-buffered player."""

from .buffer import JitterBuffer
from .client import (
    FiredCommand,
    MediaPlayer,
    PlaybackReport,
    PlayerError,
    PlayerState,
    RenderedUnit,
)
from .recovery import NakRequest, RecoveryClient, RecoveryConfig
from .server import MediaServer, PublishError, PublishingPoint
from .session import SessionError, SessionState, SessionTable, StreamSession

__all__ = [
    "FiredCommand",
    "JitterBuffer",
    "MediaPlayer",
    "MediaServer",
    "NakRequest",
    "PlaybackReport",
    "PlayerError",
    "PlayerState",
    "PublishError",
    "PublishingPoint",
    "RecoveryClient",
    "RecoveryConfig",
    "RenderedUnit",
    "SessionError",
    "SessionState",
    "SessionTable",
    "StreamSession",
]
