"""Backbone QoS budget for the relay tree.

The edge tier's *last-mile* QoS is per-client-link
:class:`~repro.net.qos.QoSManager` admission on each server. The
*backbone* — the tree links a fill or live feed crosses between an edge
and its sibling, regional parent, or the origin — had no admission story
at all: PR 5 edges simply burst whole runs upstream and hoped. With
multi-level relay topologies the backbone is a shared, finite resource,
so admission must be honest end to end: every tree link an upstream
session occupies is charged against a :class:`BackboneBudget` before a
single media byte moves, and released when the flow stops.

One budget instance models the backbone controller for a whole
deployment. Links are identified by ``(downstream host, upstream host)``
pairs; each carries ``default_capacity`` bits/second unless overridden
in ``capacities``. Reservations are charged at the content's nominal
bitrate — a whole-file fast-start fill bursts *faster* than that, but
the burst rides the link's spare bandwidth; the reservation is the
guaranteed floor the paper's XOCPN channel setup would have pinned.

Every reserve/release is traced (``backbone.reserve`` /
``backbone.release``) with the link's running total and capacity, so
:class:`~repro.obs.checker.TraceChecker` can audit that the budget was
never over-reserved and that every reservation was released exactly
once.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..metrics.counters import Counters


class BudgetError(Exception):
    """Backbone admission refused or reservation misuse."""


class BackboneBudget:
    """Admission control over the relay tree's upstream links.

    ``reserve`` returns an opaque reservation id; ``release`` gives the
    bandwidth back. A link with no explicit capacity entry falls back to
    ``default_capacity``; ``symmetric=True`` (default) folds ``(a, b)``
    and ``(b, a)`` onto one budget line, matching the virtual network's
    undirected links.
    """

    def __init__(
        self,
        default_capacity: float = 50_000_000.0,
        *,
        capacities: Optional[Dict[Tuple[str, str], float]] = None,
        symmetric: bool = True,
        tracer=None,
    ) -> None:
        if default_capacity <= 0:
            raise BudgetError("default_capacity must be positive")
        self.default_capacity = default_capacity
        self.symmetric = symmetric
        self._capacities: Dict[Tuple[str, str], float] = {}
        for link, capacity in (capacities or {}).items():
            if capacity <= 0:
                raise BudgetError(f"capacity for {link!r} must be positive")
            self._capacities[self._key(link)] = capacity
        #: rid -> (link key, bandwidth, owner)
        self._reservations: Dict[str, Tuple[Tuple[str, str], float, str]] = {}
        self._reserved: Dict[Tuple[str, str], float] = {}
        #: rids settled by a forced release; a holder's own late
        #: ``release`` after its upstream died must be a no-op, not an
        #: error and not a duplicate trace record
        self._force_released: set = set()
        self._ids = itertools.count(1)
        self.rejected = 0
        self.counters = Counters("backbone-budget")
        self.tracer = tracer

    # ------------------------------------------------------------------

    def _key(self, link: Tuple[str, str]) -> Tuple[str, str]:
        a, b = link
        if self.symmetric and b < a:
            return (b, a)
        return (a, b)

    def capacity(self, link: Tuple[str, str]) -> float:
        return self._capacities.get(self._key(link), self.default_capacity)

    def reserved(self, link: Tuple[str, str]) -> float:
        return self._reserved.get(self._key(link), 0.0)

    def available(self, link: Tuple[str, str]) -> float:
        return self.capacity(link) - self.reserved(link)

    def can_admit(self, link: Tuple[str, str], bandwidth: float) -> bool:
        return bandwidth <= self.available(link)

    # ------------------------------------------------------------------

    def reserve(
        self, link: Tuple[str, str], bandwidth: float, *, owner: str = ""
    ) -> str:
        """Charge ``bandwidth`` against ``link`` or raise
        :class:`BudgetError` — admission is refused *before* any media
        moves, which is what makes tree admission honest end to end."""
        if bandwidth <= 0:
            raise BudgetError("bandwidth must be positive")
        key = self._key(link)
        capacity = self.capacity(key)
        held = self._reserved.get(key, 0.0)
        if held + bandwidth > capacity:
            self.rejected += 1
            self.counters.inc("rejections")
            raise BudgetError(
                f"backbone link {key[0]}<->{key[1]} refuses {bandwidth:g} "
                f"b/s: {held:g} of {capacity:g} already reserved"
            )
        rid = f"bb#{next(self._ids)}"
        self._reservations[rid] = (key, bandwidth, owner)
        self._reserved[key] = held + bandwidth
        self.counters.inc("reservations")
        if self.tracer is not None:
            self.tracer.event(
                "backbone.reserve",
                rid=rid,
                link=f"{key[0]}<->{key[1]}",
                bandwidth=bandwidth,
                reserved=self._reserved[key],
                capacity=capacity,
                owner=owner,
            )
        return rid

    def release(self, rid: str) -> None:
        if rid not in self._reservations:
            if rid in self._force_released:
                # the failover path already settled this reservation on
                # the holder's behalf; the holder's own (late) release
                # is tolerated so crash-time teardown stays idempotent
                self._force_released.discard(rid)
                self.counters.inc("late_releases")
                return
            raise BudgetError(f"backbone reservation {rid!r} not active")
        key, bandwidth, owner = self._reservations.pop(rid)
        remaining = self._reserved.get(key, 0.0) - bandwidth
        if remaining <= 1e-9:
            self._reserved.pop(key, None)
        else:
            self._reserved[key] = remaining
        self.counters.inc("releases")
        if self.tracer is not None:
            self.tracer.event(
                "backbone.release",
                rid=rid,
                link=f"{key[0]}<->{key[1]}",
                bandwidth=bandwidth,
                owner=owner,
            )

    def force_release_host(self, host: str) -> List[str]:
        """Settle every reservation on a link touching ``host`` — the
        safety net when a relay dies holding charges its peers can no
        longer release through the normal burst/feed-end path. Returns
        the settled rids. Later ``release`` calls on those rids are
        counted no-ops (``late_releases``)."""
        doomed = [
            rid for rid, (key, _bw, _owner) in self._reservations.items()
            if host in key
        ]
        for rid in sorted(doomed):
            key, bandwidth, owner = self._reservations.pop(rid)
            remaining = self._reserved.get(key, 0.0) - bandwidth
            if remaining <= 1e-9:
                self._reserved.pop(key, None)
            else:
                self._reserved[key] = remaining
            self._force_released.add(rid)
            self.counters.inc("releases")
            self.counters.inc("forced_releases")
            if self.tracer is not None:
                self.tracer.event(
                    "backbone.release",
                    rid=rid,
                    link=f"{key[0]}<->{key[1]}",
                    bandwidth=bandwidth,
                    owner=owner,
                    forced=True,
                )
        return sorted(doomed)

    # ------------------------------------------------------------------

    def active(self) -> List[str]:
        return sorted(self._reservations)

    def assert_no_leaks(self) -> None:
        """Raise :class:`BudgetError` if any tree link still holds a
        reservation — test-suite invariant after every teardown path."""
        if self._reservations:
            lines = ", ".join(
                f"{rid} on {key[0]}<->{key[1]} owner={owner or '?'} "
                f"bw={bw:g}"
                for rid, (key, bw, owner) in sorted(self._reservations.items())
            )
            raise BudgetError(f"leaked backbone reservations: {lines}")
