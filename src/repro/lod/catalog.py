"""Course catalog and student progress — the distance-learning course shell.

The paper's system serves individual lectures; a real deployment (the
"distance learning system" of the title) organizes them into courses and
lets students resume where they left off. This module adds that shell on
top of the publisher:

* :class:`Course` — an ordered syllabus of lectures;
* :class:`CourseCatalog` — publishes every lecture of every course on one
  media server and answers catalog/search queries;
* :class:`StudentProgress` — per-student watched intervals, completion
  percentages, and resume positions, fed by
  :class:`~repro.streaming.client.PlaybackReport` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..streaming.client import PlaybackReport
from .lecture import Lecture, LectureError
from .publisher import MediaStore, PublishedLecture, WebPublishingManager


class CatalogError(LectureError):
    """Course/progress misuse."""


@dataclass
class Course:
    """An ordered list of lectures forming one course."""

    code: str
    title: str
    lectures: List[Lecture] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.code:
            raise CatalogError("course needs a code")
        titles = [lecture.title for lecture in self.lectures]
        if len(set(titles)) != len(titles):
            raise CatalogError("lecture titles must be unique within a course")

    def add(self, lecture: Lecture) -> None:
        if any(l.title == lecture.title for l in self.lectures):
            raise CatalogError(f"lecture {lecture.title!r} already in course")
        self.lectures.append(lecture)

    @property
    def total_duration(self) -> float:
        return sum(lecture.duration for lecture in self.lectures)

    def lecture(self, title: str) -> Lecture:
        for candidate in self.lectures:
            if candidate.title == title:
                return candidate
        raise CatalogError(f"no lecture {title!r} in course {self.code!r}")


def _point_name(course: Course, index: int) -> str:
    return f"{course.code.lower()}-l{index}"


class CourseCatalog:
    """Publishes courses and answers catalog queries."""

    def __init__(self, manager: WebPublishingManager, store: MediaStore) -> None:
        self.manager = manager
        self.store = store
        self.courses: Dict[str, Course] = {}
        self._records: Dict[Tuple[str, str], PublishedLecture] = {}

    def publish_course(self, course: Course, *, profile: Optional[str] = None) -> List[str]:
        """Publish every lecture; returns the playback URLs in order."""
        if course.code in self.courses:
            raise CatalogError(f"course {course.code!r} already published")
        if not course.lectures:
            raise CatalogError(f"course {course.code!r} has no lectures")
        urls = []
        for index, lecture in enumerate(course.lectures):
            video_path = f"/{course.code}/video{index}.mpg"
            slide_dir = f"/{course.code}/slides{index}/"
            self.store.register_lecture(video_path, slide_dir, lecture)
            record = self.manager.publish(
                video_path=video_path,
                slide_dir=slide_dir,
                point=_point_name(course, index),
                profile=profile,
            )
            self._records[(course.code, lecture.title)] = record
            urls.append(record.url)
        self.courses[course.code] = course
        return urls

    def url_of(self, course_code: str, lecture_title: str) -> str:
        key = (course_code, lecture_title)
        if key not in self._records:
            raise CatalogError(
                f"lecture {lecture_title!r} of {course_code!r} not published"
            )
        return self._records[key].url

    def course(self, code: str) -> Course:
        try:
            return self.courses[code]
        except KeyError:
            raise CatalogError(f"no course {code!r}") from None

    def search(self, text: str) -> List[Tuple[str, str]]:
        """Case-insensitive search over course titles, codes, lecture
        titles and segment names; returns (course code, lecture title)."""
        needle = text.lower()
        hits: List[Tuple[str, str]] = []
        for code, course in self.courses.items():
            for lecture in course.lectures:
                haystacks = [
                    code.lower(),
                    course.title.lower(),
                    lecture.title.lower(),
                    *(segment.name.lower() for segment in lecture.segments),
                ]
                if any(needle in hay for hay in haystacks):
                    hits.append((code, lecture.title))
        return hits


@dataclass
class _LectureProgress:
    watched: List[Tuple[float, float]] = field(default_factory=list)
    resume_at: float = 0.0

    def add_interval(self, start: float, end: float) -> None:
        if end <= start:
            return
        merged = self.watched + [(start, end)]
        merged.sort()
        out: List[Tuple[float, float]] = []
        for lo, hi in merged:
            if out and lo <= out[-1][1] + 1e-9:
                out[-1] = (out[-1][0], max(out[-1][1], hi))
            else:
                out.append((lo, hi))
        self.watched = out

    def seconds_watched(self) -> float:
        return sum(hi - lo for lo, hi in self.watched)


class StudentProgress:
    """Per-student watched intervals and resume positions."""

    def __init__(self, student: str, catalog: CourseCatalog) -> None:
        if not student:
            raise CatalogError("student needs a name")
        self.student = student
        self.catalog = catalog
        self._progress: Dict[Tuple[str, str], _LectureProgress] = {}

    def _entry(self, course_code: str, lecture_title: str) -> _LectureProgress:
        self.catalog.course(course_code).lecture(lecture_title)  # validates
        key = (course_code, lecture_title)
        return self._progress.setdefault(key, _LectureProgress())

    def record_session(
        self,
        course_code: str,
        lecture_title: str,
        report: PlaybackReport,
        *,
        start: float = 0.0,
    ) -> None:
        """Fold one playback session into the student's progress."""
        entry = self._entry(course_code, lecture_title)
        entry.add_interval(start, report.duration_watched)
        entry.resume_at = report.duration_watched

    def record_interval(
        self, course_code: str, lecture_title: str, start: float, end: float
    ) -> None:
        entry = self._entry(course_code, lecture_title)
        entry.add_interval(start, end)
        entry.resume_at = max(entry.resume_at, end)

    def resume_position(self, course_code: str, lecture_title: str) -> float:
        """Where the student should resume (0 when finished or unseen)."""
        entry = self._entry(course_code, lecture_title)
        lecture = self.catalog.course(course_code).lecture(lecture_title)
        if entry.resume_at >= lecture.duration - 1e-6:
            return 0.0
        return entry.resume_at

    def lecture_completion(self, course_code: str, lecture_title: str) -> float:
        entry = self._entry(course_code, lecture_title)
        lecture = self.catalog.course(course_code).lecture(lecture_title)
        return min(1.0, entry.seconds_watched() / lecture.duration)

    def course_completion(self, course_code: str) -> float:
        course = self.catalog.course(course_code)
        if not course.lectures:
            return 0.0
        total = course.total_duration
        watched = sum(
            self._entry(course.code, lecture.title).seconds_watched()
            for lecture in course.lectures
        )
        return min(1.0, watched / total)

    def next_unfinished(self, course_code: str) -> Optional[str]:
        """The first lecture (syllabus order) below full completion."""
        course = self.catalog.course(course_code)
        for lecture in course.lectures:
            if self.lecture_completion(course_code, lecture.title) < 1.0 - 1e-9:
                return lecture.title
        return None
