"""Shared viewing sessions: floor control over *real* streams.

:class:`repro.lod.floor.Classroom` arbitrates the abstract presentation
model; :class:`SharedViewing` does the same over the actual streaming
stack: N students each hold a :class:`~repro.streaming.client.MediaPlayer`
session on the same publishing point, the floor token decides who may
steer, and the holder's pause/resume/seek commands are applied to every
member's stream. This is the paper's "floor control with multiple users"
carried all the way down to packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.extended import FloorControl
from ..streaming.client import MediaPlayer, PlayerError, PlayerState
from ..web.http import VirtualNetwork
from .floor import FloorDenied


@dataclass
class SharedEvent:
    """Audit entry of the shared session."""

    time: float
    user: str
    action: str
    detail: str = ""


class SharedViewing:
    """N media players steered by one floor-held control channel."""

    def __init__(
        self,
        network: VirtualNetwork,
        url: str,
        users: Sequence[str],
        *,
        moderator: Optional[str] = None,
        license_server=None,
    ) -> None:
        if not users:
            raise ValueError("shared viewing needs at least one user")
        self.network = network
        self.url = url
        self.users = list(users)
        self.moderator = moderator or self.users[0]
        if self.moderator not in self.users:
            raise ValueError("moderator must be one of the users")
        self.floor = FloorControl(self.users)
        self.players: Dict[str, MediaPlayer] = {
            user: MediaPlayer(network, user, license_server=license_server)
            for user in self.users
        }
        self.events: List[SharedEvent] = []
        self.floor.request(self.moderator)
        self._log(self.moderator, "floor", "granted (moderator)")

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.network.simulator.now

    def _log(self, user: str, action: str, detail: str = "") -> None:
        self.events.append(SharedEvent(self.now, user, action, detail))

    def start(self, *, burst_factor: float = 1.0) -> None:
        """Connect and start every member's stream."""
        for user, player in self.players.items():
            player.connect(self.url)
            player.play(burst_factor=burst_factor)
        self._log(self.moderator, "start")

    def advance(self, dt: float) -> None:
        self.network.simulator.run_until(self.now + dt)
        self.floor.advance(dt)

    def wait_all_playing(self, *, timeout: float = 60.0) -> None:
        deadline = self.now + timeout
        simulator = self.network.simulator
        while any(
            p.state is not PlayerState.PLAYING for p in self.players.values()
        ):
            nxt = simulator.peek_time()
            if nxt is None or nxt > deadline:
                raise PlayerError("not all members reached playing state")
            simulator.step()
        self.floor.advance(self.now - self.floor.now)

    # -- floor --------------------------------------------------------

    def request_floor(self, user: str) -> bool:
        granted = self.floor.request(user)
        self._log(user, "request_floor", "granted" if granted else "queued")
        return granted

    def release_floor(self, user: str) -> Optional[str]:
        nxt = self.floor.release(user)
        self._log(user, "release_floor", f"next={nxt}")
        return nxt

    # -- arbitrated control ---------------------------------------------

    def _check_floor(self, user: str, action: str) -> None:
        if self.floor.holder != user:
            self._log(user, "denied", action)
            raise FloorDenied(
                f"{user!r} does not hold the floor "
                f"(holder: {self.floor.holder!r})"
            )

    def pause(self, user: str) -> int:
        """Holder pauses everyone. Returns how many streams paused."""
        self._check_floor(user, "pause")
        count = 0
        for player in self.players.values():
            if player.state is PlayerState.PLAYING:
                player.pause()
                count += 1
        self._log(user, "pause", f"{count} streams")
        return count

    def resume(self, user: str) -> int:
        self._check_floor(user, "resume")
        count = 0
        for player in self.players.values():
            if player.state is PlayerState.PAUSED:
                player.resume()
                count += 1
        self._log(user, "resume", f"{count} streams")
        return count

    def seek(self, user: str, position: float) -> int:
        self._check_floor(user, "seek")
        count = 0
        for player in self.players.values():
            if player.state in (PlayerState.PLAYING, PlayerState.PAUSED):
                player.seek(position)
                count += 1
        self._log(user, "seek", f"{position}s on {count} streams")
        return count

    # -- reporting --------------------------------------------------------

    def positions(self) -> Dict[str, float]:
        return {user: p.position for user, p in self.players.items()}

    def spread(self) -> float:
        """Max position difference across members (group drift)."""
        positions = list(self.positions().values())
        return max(positions) - min(positions) if positions else 0.0

    def finish_all(self, *, timeout: float = 3_600.0) -> Dict[str, object]:
        """Run every stream to completion; returns per-user reports."""
        deadline = self.now + timeout
        simulator = self.network.simulator
        while any(
            p.state is not PlayerState.FINISHED for p in self.players.values()
        ):
            # a member paused at end-of-session would never finish
            for player in self.players.values():
                if player.state is PlayerState.PAUSED:
                    player.resume()
            nxt = simulator.peek_time()
            if nxt is None or nxt > deadline:
                raise PlayerError("shared session did not finish")
            simulator.step()
        return {user: p.report() for user, p in self.players.items()}

    def denial_count(self) -> int:
        return sum(1 for e in self.events if e.action == "denied")
