"""Lecture-on-Demand application layer: record → orchestrate → publish →
replay, with floor control and content-tree summaries."""

from .floor import Classroom, ClassroomEvent, FloorDenied
from .interaction import (
    ACTIONS,
    InteractionScript,
    ModelRunResult,
    ScriptedAction,
    StreamRunResult,
    apply_to_model,
    apply_to_stream,
    random_script,
)
from .lecture import (
    Lecture,
    LectureError,
    LectureSegment,
    TimedAnnotation,
)
from .orchestrator import (
    OrchestrationError,
    OrchestrationResult,
    Orchestrator,
    verify_orchestration,
)
from .playback import (
    LevelReplayReport,
    LODPlayback,
    SyncAudit,
    replay_all_levels,
)
from .publisher import (
    LODPublisher,
    LODPublishResult,
    MediaStore,
    PublishedLecture,
    PublishedVariant,
    PublishFormError,
    WebPublishingManager,
)
from .catalog import CatalogError, Course, CourseCatalog, StudentProgress
from .shared import SharedEvent, SharedViewing
from .recorder import (
    CameraSource,
    LectureRecorder,
    LiveCaptureSession,
    MicrophoneSource,
)

__all__ = [
    "ACTIONS", "CameraSource", "CatalogError", "Classroom", "ClassroomEvent",
    "Course", "CourseCatalog", "FloorDenied",
    "InteractionScript", "LODPlayback", "LODPublishResult", "LODPublisher",
    "Lecture", "LectureError",
    "LectureRecorder", "LectureSegment", "LevelReplayReport",
    "LiveCaptureSession", "MediaStore", "MicrophoneSource", "ModelRunResult",
    "OrchestrationError", "OrchestrationResult", "Orchestrator",
    "PublishFormError", "PublishedLecture", "PublishedVariant",
    "ScriptedAction", "SharedEvent", "SharedViewing",
    "StreamRunResult", "StudentProgress", "SyncAudit", "TimedAnnotation",
    "WebPublishingManager", "apply_to_model", "apply_to_stream",
    "random_script", "replay_all_levels", "verify_orchestration",
]
