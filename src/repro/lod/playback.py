"""Lecture playback: full replay and content-tree level replay (Fig. 6).

:class:`LODPlayback` couples the streaming :class:`~repro.streaming.client
.MediaPlayer` with the lecture's formal models:

* :meth:`watch` — plain full replay, returning both the streaming report
  and a :class:`SyncAudit` comparing fired SLIDE commands against the
  extended net's playout schedule;
* :meth:`watch_level` — the Abstractor workflow: pick a content-tree level
  (or a time budget), then replay only that level's segments, seeking over
  the skipped detail — the paper's "flexible teaching material".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asf.drm import LicenseServer
from ..contenttree import Abstractor, ContentTree
from ..streaming.client import MediaPlayer, PlaybackReport, PlayerState
from ..web.http import VirtualNetwork
from .lecture import Lecture, LectureError
from .orchestrator import Orchestrator


@dataclass
class SyncAudit:
    """Fired slide changes vs the Petri-net schedule."""

    per_slide: Dict[str, float]  # slide -> |fired position − net start|
    missing: List[str]  # slides that never fired

    @property
    def max_error(self) -> float:
        return max(self.per_slide.values(), default=0.0)

    @property
    def mean_error(self) -> float:
        if not self.per_slide:
            return 0.0
        return sum(self.per_slide.values()) / len(self.per_slide)

    @property
    def ok(self) -> bool:
        return not self.missing


@dataclass
class LevelReplayReport:
    """Result of a content-tree level replay."""

    level: int
    segments_played: List[str]
    expected_segments: List[str]
    report: PlaybackReport
    nominal_duration: float

    @property
    def coverage(self) -> float:
        if not self.expected_segments:
            return 1.0
        played = set(self.segments_played)
        return sum(1 for s in self.expected_segments if s in played) / len(
            self.expected_segments
        )


class LODPlayback:
    """Client-side lecture playback workflows."""

    def __init__(
        self,
        network: VirtualNetwork,
        host: str,
        lecture: Lecture,
        url: str,
        *,
        license_server: Optional[LicenseServer] = None,
        sync_mode: str = "script",
    ) -> None:
        self.network = network
        self.host = host
        self.lecture = lecture
        self.url = url
        self.license_server = license_server
        self.sync_mode = sync_mode
        self._schedule = {s.name: (s.start, s.end) for s in lecture.segments}

    def _new_player(self) -> MediaPlayer:
        return MediaPlayer(
            self.network,
            self.host,
            license_server=self.license_server,
            sync_mode=self.sync_mode,
        )

    # ------------------------------------------------------------------

    def watch(self) -> Tuple[PlaybackReport, SyncAudit]:
        """Full replay with a formal synchronization audit."""
        player = self._new_player()
        report = player.watch(self.url)
        return report, self.audit(report)

    def audit(self, report: PlaybackReport) -> SyncAudit:
        """Compare fired SLIDE commands to the lecture's net schedule."""
        fired: Dict[str, float] = {}
        for command in report.slide_changes():
            fired.setdefault(command.command.parameter, command.position)
        per_slide: Dict[str, float] = {}
        missing: List[str] = []
        for segment in self.lecture.segments:
            if segment.name not in fired:
                missing.append(segment.name)
                continue
            per_slide[segment.name] = abs(fired[segment.name] - segment.start)
        return SyncAudit(per_slide=per_slide, missing=missing)

    # ------------------------------------------------------------------

    def watch_level(
        self,
        tree: ContentTree,
        *,
        level: Optional[int] = None,
        budget: Optional[float] = None,
    ) -> LevelReplayReport:
        """Replay only the segments of a content-tree level.

        Give either an explicit ``level`` or a time ``budget`` (the
        Abstractor picks the deepest level that fits). The player seeks
        across skipped segments, so the stream delivers only what the
        level includes (plus seek prerolls).
        """
        if (level is None) == (budget is None):
            raise LectureError("give exactly one of level= or budget=")
        abstractor = Abstractor(tree)
        summary = (
            abstractor.at_level(level) if level is not None
            else abstractor.summarize(budget)
        )
        wanted = [
            name for name in summary.segments if name in self._schedule
        ]  # drop the tree root (the lecture title)
        if not wanted:
            raise LectureError(
                f"level {summary.level} contains no playable segments"
            )

        player = self._new_player()
        player.connect(self.url)
        first = self._schedule[wanted[0]][0]
        player.play(start=first)
        simulator = self.network.simulator

        played: List[str] = []
        cursor = 0
        # Drive playback: when the current wanted segment finishes, seek to
        # the next wanted segment (or stop).
        while player.state is not PlayerState.FINISHED:
            if simulator.peek_time() is None:
                raise LectureError("simulation drained before playback finished")
            simulator.step()
            if player.state is not PlayerState.PLAYING:
                continue
            position = player.position
            name = wanted[cursor]
            start, end = self._schedule[name]
            if name not in played and position >= start:
                played.append(name)
            if position >= end - 1e-9:
                cursor += 1
                if cursor >= len(wanted):
                    player.stop()
                    break
                next_start = self._schedule[wanted[cursor]][0]
                if next_start > position + 1e-9:
                    player.seek(next_start)
        report = player.report()
        return LevelReplayReport(
            level=summary.level,
            segments_played=played,
            expected_segments=wanted,
            report=report,
            nominal_duration=summary.duration,
        )


def replay_all_levels(
    playback: LODPlayback, tree: ContentTree
) -> List[LevelReplayReport]:
    """One replay per content-tree level (the Fig. 6 catalog view)."""
    abstractor = Abstractor(tree)
    return [
        playback.watch_level(tree, level=q)
        for q in range(tree.highest_level + 1)
        if any(
            name in playback._schedule for name in abstractor.at_level(q).segments
        )
    ]
