"""Scripted interaction workloads.

The benches compare synchronization models under *identical* user
behaviour, so user behaviour must be a value: an :class:`InteractionScript`
is a time-ordered list of actions that can be applied to the core
:class:`~repro.core.extended.InteractivePlayer` (model-level runs) or to a
streaming :class:`~repro.streaming.client.MediaPlayer` (full-stack runs).
:func:`random_script` generates seeded plausible-student behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.extended import ExtendedPresentation, InteractivePlayer
from ..core.petri import NotEnabledError
from ..streaming.client import MediaPlayer, PlayerError, PlayerState
from ..web.http import VirtualNetwork

#: actions a script may contain (param meaning in brackets)
ACTIONS = (
    "pause",  # [hold seconds]
    "resume",
    "skip_forward",
    "skip_backward",
    "speed",  # [rate]
    "seek",  # [target position]
)


@dataclass(frozen=True)
class ScriptedAction:
    """One action at one wall-clock time (seconds from playback start)."""

    at: float
    action: str
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("action time must be >= 0")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown action {self.action!r}")


@dataclass
class InteractionScript:
    """A reproducible interactive workload."""

    actions: List[ScriptedAction] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.actions = sorted(self.actions, key=lambda a: a.at)

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def horizon(self) -> float:
        return self.actions[-1].at if self.actions else 0.0


def random_script(
    *,
    duration: float,
    seed: int = 0,
    pause_rate: float = 0.02,
    skip_rate: float = 0.01,
    mean_hold: float = 4.0,
) -> InteractionScript:
    """Seeded plausible-student behaviour over a lecture of ``duration``.

    Rates are per second of wall time; a pause is always paired with a
    resume after an exponential hold.
    """
    rng = random.Random(seed)
    actions: List[ScriptedAction] = []
    t = 0.0
    paused_until: Optional[float] = None
    while t < duration:
        t += rng.expovariate(max(pause_rate + skip_rate, 1e-9))
        if t >= duration:
            break
        if paused_until is not None and t < paused_until:
            t = paused_until
        if rng.random() < pause_rate / max(pause_rate + skip_rate, 1e-9):
            hold = rng.expovariate(1.0 / mean_hold)
            actions.append(ScriptedAction(round(t, 3), "pause"))
            actions.append(ScriptedAction(round(t + hold, 3), "resume"))
            paused_until = t + hold
        else:
            direction = "skip_forward" if rng.random() < 0.7 else "skip_backward"
            actions.append(ScriptedAction(round(t, 3), direction))
    return InteractionScript(actions)


# ----------------------------------------------------------------------
# applying scripts
# ----------------------------------------------------------------------


@dataclass
class ModelRunResult:
    """Result of applying a script to the core InteractivePlayer."""

    player: InteractivePlayer
    applied: int
    rejected: int  # actions illegal in the control net at that moment
    wall_duration: float

    @property
    def position(self) -> float:
        return self.player.position


def apply_to_model(
    presentation: ExtendedPresentation,
    script: InteractionScript,
    *,
    run_out: bool = True,
    step: float = 0.05,
) -> ModelRunResult:
    """Run the extended-net player through ``script``.

    Illegal actions (e.g. resume while playing) are counted as rejected —
    the control subnet's whole point is that they cannot corrupt state.
    """
    player = InteractivePlayer(presentation)
    player.play()
    applied = rejected = 0
    now = 0.0
    for action in script.actions:
        if action.at > now:
            player.advance(action.at - now)
            now = action.at
        try:
            if action.action == "pause":
                player.pause()
            elif action.action == "resume":
                player.resume()
            elif action.action == "skip_forward":
                player.skip_forward()
            elif action.action == "skip_backward":
                player.skip_backward()
            elif action.action == "speed":
                player.set_speed(action.param or 1.0)
            elif action.action == "seek":
                player.seek(action.param)
            applied += 1
        except NotEnabledError:
            rejected += 1
    if run_out:
        while not player.finished and player.state in ("playing", "paused"):
            if player.state == "paused":
                player.resume()
                applied += 1
            remaining = presentation.duration - player.position
            player.advance(remaining / player.rate + step)
            now += remaining / player.rate + step
    return ModelRunResult(player, applied, rejected, now)


@dataclass
class StreamRunResult:
    """Result of applying a script to a streaming MediaPlayer."""

    report: object  # PlaybackReport
    applied: int
    rejected: int


def apply_to_stream(
    network: VirtualNetwork,
    player: MediaPlayer,
    url: str,
    script: InteractionScript,
    *,
    timeout: float = 3_600.0,
) -> StreamRunResult:
    """Full-stack run: connect, play, fire script actions at wall times.

    Action times are relative to the first moment of actual playback.
    Skip actions are not meaningful on the raw stream player (no segment
    table) and raise :class:`ValueError` — use seek instead.
    """
    for action in script.actions:
        if action.action in ("skip_forward", "skip_backward"):
            raise ValueError(
                "stream runs take seek actions, not segment skips"
            )
    player.connect(url)
    player.play()
    simulator = network.simulator
    # wait for playback to actually start
    while player.state is not PlayerState.PLAYING:
        if simulator.peek_time() is None:
            raise PlayerError("stream never started")
        simulator.step()
    origin = simulator.now
    applied = rejected = 0
    for action in script.actions:
        target = origin + action.at
        while simulator.now < target and player.state is not PlayerState.FINISHED:
            if simulator.peek_time() is None or simulator.peek_time() > target:
                simulator.run_until(target)
                break
            simulator.step()
        if player.state is PlayerState.FINISHED:
            break
        # a user acts when the UI is responsive: let transient buffering
        # (e.g. right after a seek) drain before applying the action
        while player.state is PlayerState.BUFFERING:
            if simulator.peek_time() is None:
                break
            simulator.step()
        if player.state is PlayerState.FINISHED:
            break
        try:
            if action.action == "pause":
                player.pause()
            elif action.action == "resume":
                player.resume()
            elif action.action == "speed":
                pass  # stream pacing is fixed; speed is a model-level op
            elif action.action == "seek":
                player.seek(action.param)
            applied += 1
        except PlayerError:
            rejected += 1
    deadline = simulator.now + timeout
    while player.state is not PlayerState.FINISHED:
        if player.state is PlayerState.PAUSED:
            player.resume()
        nxt = simulator.peek_time()
        if nxt is None or nxt > deadline:
            raise PlayerError("stream run did not finish")
        simulator.step()
    return StreamRunResult(player.report(), applied, rejected)
