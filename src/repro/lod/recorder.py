"""Simulated capture devices and the lecture recorder.

Substitutes the paper's "attached devices (video camera or microphone)":
seeded generators that produce frames/samples with wall-clock timestamps.
:class:`LectureRecorder` is the classroom workflow — start recording, the
teacher advances slides and scribbles annotations, stop — and yields a
:class:`~repro.lod.lecture.Lecture`. :class:`LiveCaptureSession` couples
the same sources to a live ASF encoder on the simulator for real-time
broadcast (paper §2.5: "broadcast their encoded content in real time").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..asf.encoder import ASFEncoder, EncoderConfig, LiveEncoderSession
from ..asf.header import StreamProperties
from ..asf.packets import MediaUnit, units_from_encoded
from ..asf.script_commands import ScriptCommand, TYPE_SLIDE
from ..media.codecs import get_codec
from ..media.objects import (
    AnnotationObject,
    AudioObject,
    ImageObject,
    VideoObject,
)
from ..media.profiles import BandwidthProfile
from ..net.engine import PeriodicTask, Simulator
from .lecture import Lecture, LectureError, LectureSegment, TimedAnnotation


@dataclass(frozen=True)
class CameraSource:
    """A camera: fixed resolution and frame rate."""

    width: int = 320
    height: int = 240
    fps: float = 15.0
    seed: str = "camera"

    def captured_video(self, name: str, duration: float) -> VideoObject:
        return VideoObject(
            name, duration, width=self.width, height=self.height,
            fps=self.fps, seed=self.seed,
        )


@dataclass(frozen=True)
class MicrophoneSource:
    """A microphone: fixed sample format."""

    sample_rate: int = 22_050
    channels: int = 1
    seed: str = "microphone"

    def captured_audio(self, name: str, duration: float) -> AudioObject:
        return AudioObject(
            name, duration, sample_rate=self.sample_rate,
            channels=self.channels, seed=self.seed,
        )


class LectureRecorder:
    """Records a lecture: slide advances and annotations against a clock.

    Drive it with :meth:`advance_slide` / :meth:`annotate` at increasing
    times, then :meth:`finish` to get the :class:`Lecture`.
    """

    def __init__(
        self,
        title: str,
        author: str,
        *,
        camera: Optional[CameraSource] = None,
        microphone: Optional[MicrophoneSource] = None,
        slide_width: int = 1024,
        slide_height: int = 768,
    ) -> None:
        self.title = title
        self.author = author
        self.camera = camera or CameraSource()
        self.microphone = microphone
        self.slide_width = slide_width
        self.slide_height = slide_height
        self._marks: List[Tuple[float, str, int]] = []  # (time, slide name, importance)
        self._annotations: List[Tuple[float, AnnotationObject]] = []
        self._finished = False
        self._started = False

    def start(self) -> None:
        if self._started:
            raise LectureError("recorder already started")
        self._started = True
        self._marks.append((0.0, "slide0", 0))

    def advance_slide(
        self, at: float, *, name: Optional[str] = None, importance: int = 0
    ) -> str:
        """The teacher moves to the next slide at ``at`` seconds."""
        self._check_recording()
        if at <= self._marks[-1][0]:
            raise LectureError("slide advances must move forward in time")
        slide_name = name or f"slide{len(self._marks)}"
        self._marks.append((at, slide_name, importance))
        return slide_name

    def annotate(
        self, at: float, text: str, *, duration: float = 5.0,
        region: Tuple[float, float, float, float] = (0.1, 0.1, 0.9, 0.9),
    ) -> AnnotationObject:
        """The teacher writes an annotation at ``at`` seconds."""
        self._check_recording()
        annotation = AnnotationObject(
            f"note{len(self._annotations)}",
            duration,
            text=text,
            region=region,
        )
        self._annotations.append((at, annotation))
        return annotation

    def _check_recording(self) -> None:
        if not self._started:
            raise LectureError("recorder not started")
        if self._finished:
            raise LectureError("recorder already finished")

    def finish(self, at: float) -> Lecture:
        """Stop recording at ``at`` seconds and assemble the lecture."""
        self._check_recording()
        if at <= self._marks[-1][0]:
            raise LectureError("finish time must be after the last slide advance")
        self._finished = True
        video = self.camera.captured_video("talk", at)
        audio = (
            self.microphone.captured_audio("voice", at)
            if self.microphone is not None
            else None
        )
        segments: List[LectureSegment] = []
        boundaries = self._marks + [(at, "<end>", 0)]
        for (start, name, importance), (end, _, _) in zip(boundaries, boundaries[1:]):
            duration = end - start
            notes = [
                TimedAnnotation(ann, t - start)
                for t, ann in self._annotations
                if start < t < end and t - start + ann.duration < duration
            ]
            segments.append(
                LectureSegment(
                    name=name,
                    slide=ImageObject(
                        name, duration, width=self.slide_width,
                        height=self.slide_height, seed=name,
                    ),
                    start=start,
                    duration=duration,
                    importance=importance,
                    annotations=notes,
                )
            )
        return Lecture(
            title=self.title,
            author=self.author,
            video=video,
            audio=audio,
            segments=segments,
        )


class LiveCaptureSession:
    """Real-time capture → encode → broadcast on the simulator.

    Every ``chunk`` seconds a :class:`~repro.net.engine.PeriodicTask`
    encodes the freshly captured media and feeds it to the live encoder
    session; slide advances inject live SLIDE script commands. Stop with
    :meth:`finish`.
    """

    VIDEO_STREAM = 1
    AUDIO_STREAM = 2

    def __init__(
        self,
        simulator: Simulator,
        profile: BandwidthProfile,
        *,
        file_id: str = "live-lecture",
        camera: Optional[CameraSource] = None,
        microphone: Optional[MicrophoneSource] = None,
        chunk: float = 0.5,
    ) -> None:
        self.simulator = simulator
        self.profile = profile
        self.camera = camera or CameraSource()
        self.microphone = microphone
        self.chunk = chunk
        streams = [
            StreamProperties(
                self.VIDEO_STREAM, "video", codec=profile.video_codec,
                bitrate=profile.video_bitrate, name="camera",
            )
        ]
        if microphone is not None:
            streams.append(
                StreamProperties(
                    self.AUDIO_STREAM, "audio", codec=profile.audio_codec,
                    bitrate=profile.audio_bitrate, name="microphone",
                )
            )
        encoder = ASFEncoder(EncoderConfig(profile=profile))
        self.session: LiveEncoderSession = encoder.start_live(
            file_id=file_id, streams=streams
        )
        self._origin = simulator.now
        self._video_index = 0
        self._audio_index = 0
        self._task = PeriodicTask(simulator, chunk, self._capture_chunk,
                                  start_delay=chunk)
        self.slides_sent: List[Tuple[float, str]] = []

    @property
    def stream(self):
        return self.session.stream

    @property
    def elapsed(self) -> float:
        return self.simulator.now - self._origin

    def _capture_chunk(self) -> None:
        if self.session.stream.closed:
            return
        start = self.elapsed - self.chunk
        # encode this chunk of camera footage at the profile's rate
        chunk_video = self.camera.captured_video("chunk", self.chunk)
        encoded = self.profile.encode_video(chunk_video)
        units: List[MediaUnit] = []
        for u in units_from_encoded(self.VIDEO_STREAM, encoded):
            units.append(
                MediaUnit(
                    self.VIDEO_STREAM,
                    self._video_index,
                    round((start + u.timestamp_ms / 1000.0) * 1000),
                    u.keyframe,
                    u.data,
                )
            )
            self._video_index += 1
        if self.microphone is not None:
            chunk_audio = self.microphone.captured_audio("chunk", self.chunk)
            encoded_audio = self.profile.encode_audio(chunk_audio)
            for u in units_from_encoded(self.AUDIO_STREAM, encoded_audio):
                units.append(
                    MediaUnit(
                        self.AUDIO_STREAM,
                        self._audio_index,
                        round((start + u.timestamp_ms / 1000.0) * 1000),
                        u.keyframe,
                        u.data,
                    )
                )
                self._audio_index += 1
        self.session.capture(units)

    def advance_slide(self, name: str) -> None:
        """Inject a live SLIDE command at the current capture time."""
        command = ScriptCommand(round(self.elapsed * 1000), TYPE_SLIDE, name)
        self.session.send_command(command)
        self.slides_sent.append((self.elapsed, name))

    def finish(self) -> None:
        self._task.stop()
        self.session.finish()
