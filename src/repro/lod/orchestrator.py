"""The orchestrator: lecture → synchronized ASF content (Figures 5–7).

"Our system could make the video and presented slides synchronized with
the temporal script commands as an advanced stream format (ASF) file
automatically." This module is that step, with the Petri-net verification
the paper's model promises:

1. the lecture is compiled to its extended timed Petri net and executed —
   the resulting playout schedule is the *formal* synchronization spec;
2. script commands are generated from the lecture structure;
3. :func:`verify_orchestration` cross-checks that every SLIDE command's
   timestamp equals the net's playout start for that slide (theory ↔
   practice agreement, to the millisecond);
4. the media are encoded under a bandwidth profile and multiplexed into a
   stored ASF file ready to publish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asf.drm import LicenseServer
from ..asf.encoder import ASFEncoder, EncodeCache, EncoderConfig
from ..asf.farm import EncodeFarm
from ..asf.script_commands import TYPE_SLIDE, ScriptCommand
from ..asf.stream import ASFFile
from ..contenttree.serialize import tree_to_json
from ..media.profiles import BandwidthProfile
from .lecture import Lecture, LectureError


class OrchestrationError(LectureError):
    """The generated artifacts disagree with the formal model."""


@dataclass
class OrchestrationResult:
    """Everything the publisher needs for one lecture."""

    lecture: Lecture
    asf: ASFFile
    commands: List[ScriptCommand]
    content_tree_json: str
    net_schedule: Dict[str, Tuple[float, float]]  # leaf -> (start, end)
    verification_error: float  # max |command - net playout| in seconds

    @property
    def duration(self) -> float:
        return self.asf.duration


class Orchestrator:
    """Builds verified, publishable ASF content from lectures."""

    def __init__(
        self,
        profile: BandwidthProfile,
        *,
        license_server: Optional[LicenseServer] = None,
        packet_size: int = 1_450,
        preroll_ms: int = 3_000,
        with_data: bool = False,
        encode_cache: Optional[EncodeCache] = None,
        farm: Optional[EncodeFarm] = None,
        tracer=None,
    ) -> None:
        self.profile = profile
        self.license_server = license_server
        self.encode_cache = encode_cache
        self.farm = farm
        self.tracer = tracer  # optional repro.obs.Tracer
        self.config = EncoderConfig(
            profile=profile,
            packet_size=packet_size,
            preroll_ms=preroll_ms,
            with_data=with_data,
        )

    # ------------------------------------------------------------------

    def net_schedule(self, lecture: Lecture) -> Dict[str, Tuple[float, float]]:
        """Execute the lecture's extended net; return leaf playout times."""
        presentation = lecture.to_presentation()
        presentation.verify()  # net reproduces the interval-algebra schedule
        execution = presentation.compiled.execute()
        schedule: Dict[str, Tuple[float, float]] = {}
        for leaf, place in presentation.compiled.media_places.items():
            intervals = execution.playout_intervals(place)
            if len(intervals) != 1:
                raise OrchestrationError(
                    f"leaf {leaf!r} played {len(intervals)} times in the net"
                )
            schedule[leaf] = intervals[0]
        return schedule

    def orchestrate(self, lecture: Lecture, *, file_id: Optional[str] = None) -> OrchestrationResult:
        """Lecture → verified ASF file + content tree."""
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(
                "orchestrate",
                lecture=lecture.title,
                segments=len(lecture.segments),
            )
        commands = lecture.script_commands()
        schedule = self.net_schedule(lecture)
        error = verify_orchestration(lecture, commands, schedule)

        self.config.metadata = {
            "title": lecture.title,
            "author": lecture.author,
            "segments": str(len(lecture.segments)),
        }
        encoder = ASFEncoder(
            self.config,
            cache=self.encode_cache,
            farm=self.farm,
            tracer=self.tracer,
        )
        asf = encoder.encode_file(
            file_id=file_id or lecture.title,
            video=lecture.video,
            audio=lecture.audio,
            images=[(s.slide, s.start) for s in lecture.segments],
            commands=commands,
            license_server=self.license_server,
        )
        if self.tracer is not None:
            self.tracer.end(span, verification_error=error)
        return OrchestrationResult(
            lecture=lecture,
            asf=asf,
            commands=commands,
            content_tree_json=tree_to_json(lecture.content_tree()),
            net_schedule=schedule,
            verification_error=error,
        )


def verify_orchestration(
    lecture: Lecture,
    commands: List[ScriptCommand],
    net_schedule: Dict[str, Tuple[float, float]],
    *,
    tol: float = 1e-3,
) -> float:
    """Cross-check script commands against the Petri-net playout schedule.

    For every SLIDE command, the net's playout interval for the slide's
    image leaf must start at the command timestamp (within ``tol``, one
    wire-timestamp quantum). Returns the max absolute error; raises
    :class:`OrchestrationError` beyond tolerance.
    """
    slide_commands = {
        c.parameter: c.timestamp for c in commands if c.type == TYPE_SLIDE
    }
    missing = {s.name for s in lecture.segments} - set(slide_commands)
    if missing:
        raise OrchestrationError(f"segments without SLIDE commands: {sorted(missing)}")
    worst = 0.0
    for segment in lecture.segments:
        leaf = f"image_{segment.name}"
        if leaf not in net_schedule:
            raise OrchestrationError(f"net schedule lacks leaf {leaf!r}")
        net_start = net_schedule[leaf][0]
        command_time = slide_commands[segment.name]
        error = abs(net_start - command_time)
        worst = max(worst, error)
        if error > tol:
            raise OrchestrationError(
                f"slide {segment.name!r}: command at {command_time}s but the "
                f"net plays it at {net_start}s (err {error:g}s)"
            )
    return worst
