"""The Web Publishing Manager — Figure 5 of the paper.

"User must fill the path of video file (MPEG4) and the directory of the
presented slides", choose the server HTTP port / URL and a bandwidth
profile; the system then produces the synchronized ASF automatically and
publishes it. This module reproduces that workflow end-to-end over the
simulated web:

* :class:`MediaStore` — the "file system" the form's paths point into;
* :class:`WebPublishingManager` — the form handler: validates the fields,
  runs the :class:`~repro.lod.orchestrator.Orchestrator`, publishes the
  result on the :class:`~repro.streaming.server.MediaServer`, and stores
  the content tree for per-level replay;
* an HTTP endpoint (``POST /publish``) so the whole Fig. 5 interaction —
  fill the form in a browser, get back the playback URL — runs over the
  simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..asf.constants import (
    SCRIPT_STREAM_NUMBER,
    STREAM_TYPE_AUDIO,
    STREAM_TYPE_COMMAND,
    STREAM_TYPE_IMAGE,
    STREAM_TYPE_VIDEO,
)
from ..asf.drm import LicenseServer
from ..asf.encoder import EncodeCache
from ..asf.farm import JOB_AUDIO, JOB_IMAGE, JOB_VIDEO, EncodeFarm, EncodeJob
from ..asf.header import FileProperties, HeaderObject, StreamProperties
from ..asf.packets import (
    MediaUnit,
    Packetizer,
    concat_unit_lists,
    units_from_commands,
    units_from_encoded,
)
from ..asf.script_commands import TYPE_SLIDE, TYPE_TREE_LEVEL, ScriptCommand
from ..asf.stream import ASFFile
from ..contenttree.abstractor import Abstractor
from ..contenttree.serialize import tree_from_json
from ..media.codecs import ImageCodec
from ..media.objects import ImageObject, VideoObject
from ..media.profiles import PROFILE_BY_NAME, BandwidthProfile, get_profile
from ..streaming.server import MediaServer
from ..web.http import HTTPClient, HTTPError, HTTPRequest, HTTPResponse, form_decode
from .lecture import Lecture, LectureError, LectureSegment
from .orchestrator import OrchestrationResult, Orchestrator


class PublishFormError(LectureError):
    """Bad or missing publishing-form fields."""


class MediaStore:
    """Named storage standing in for the teacher's disk.

    The Fig. 5 form references media by *path*; the store maps those paths
    to media objects. ``register_lecture`` is the common case: one video
    path plus one slide directory.
    """

    def __init__(self) -> None:
        self._videos: Dict[str, VideoObject] = {}
        self._slide_dirs: Dict[str, List[Tuple[ImageObject, float]]] = {}
        self._lectures: Dict[Tuple[str, str], Lecture] = {}

    def register_video(self, path: str, video: VideoObject) -> None:
        self._videos[path] = video

    def register_slides(
        self, directory: str, slides: List[Tuple[ImageObject, float]]
    ) -> None:
        """``slides`` is (image, show_at_seconds) in presentation order."""
        self._slide_dirs[directory] = list(slides)

    def register_lecture(self, video_path: str, slide_dir: str, lecture: Lecture) -> None:
        """Register a complete lecture under a (video path, slide dir) pair."""
        self._videos[video_path] = lecture.video
        self._slide_dirs[slide_dir] = [(s.slide, s.start) for s in lecture.segments]
        self._lectures[(video_path, slide_dir)] = lecture

    def lookup_lecture(self, video_path: str, slide_dir: str) -> Lecture:
        key = (video_path, slide_dir)
        if key in self._lectures:
            return self._lectures[key]
        # assemble a lecture from separately registered parts
        if video_path not in self._videos:
            raise PublishFormError(f"video path not found: {video_path!r}")
        if slide_dir not in self._slide_dirs:
            raise PublishFormError(f"slide directory not found: {slide_dir!r}")
        video = self._videos[video_path]
        slides = self._slide_dirs[slide_dir]
        if not slides:
            raise PublishFormError(f"slide directory {slide_dir!r} is empty")
        segments = []
        ordered = sorted(slides, key=lambda pair: pair[1])
        for i, (image, start) in enumerate(ordered):
            end = (
                ordered[i + 1][1] if i + 1 < len(ordered) else video.duration
            )
            segments.append(
                LectureSegment(
                    name=image.name,
                    slide=image,
                    start=start,
                    duration=end - start,
                )
            )
        return Lecture(
            title=video.name,
            author="unknown",
            video=video,
            segments=segments,
        )


@dataclass
class PublishedLecture:
    """Record of one published lecture."""

    point: str
    url: str
    result: OrchestrationResult
    profile: str


class WebPublishingManager:
    """The Fig. 5 form backend on a media server."""

    REQUIRED_FIELDS = ("video_path", "slide_dir", "point")

    def __init__(
        self,
        media_server: MediaServer,
        store: MediaStore,
        *,
        license_server: Optional[LicenseServer] = None,
        default_profile: str = "dsl-256k",
        encode_cache: Optional[EncodeCache] = None,
        farm: Optional[EncodeFarm] = None,
        edge_directory=None,
        tracer=None,
    ) -> None:
        self.media_server = media_server
        self.store = store
        self.license_server = license_server
        self.default_profile = default_profile
        self.encode_cache = encode_cache
        self.farm = farm
        #: optional repro.streaming.edge.EdgeDirectory: when the serving
        #: tier is distributed, playback_url() hands each student their
        #: placed edge instead of the origin URL
        self.edge_directory = edge_directory
        self.tracer = tracer  # optional repro.obs.Tracer
        self.published: Dict[str, PublishedLecture] = {}
        media_server.http.route("POST", "/publish", self._handle_publish_form)
        media_server.http.route("GET", "/publish", self._handle_form_page)
        media_server.http.route("GET", "/tree/", self._handle_tree)
        media_server.http.route("GET", "/catalog", self._handle_catalog)
        media_server.http.route("GET", "/", self._handle_catalog_page)

    # ------------------------------------------------------------------
    # programmatic API
    # ------------------------------------------------------------------

    def publish(
        self,
        *,
        video_path: str,
        slide_dir: str,
        point: str,
        profile: Optional[str] = None,
        protect: bool = False,
    ) -> PublishedLecture:
        """Validate, orchestrate, publish; returns the playback record."""
        profile_name = profile or self.default_profile
        if profile_name not in PROFILE_BY_NAME:
            raise PublishFormError(
                f"unknown profile {profile_name!r}; choose from "
                f"{sorted(PROFILE_BY_NAME)}"
            )
        if point in self.published:
            raise PublishFormError(f"publishing point {point!r} already in use")
        lecture = self.store.lookup_lecture(video_path, slide_dir)
        orchestrator = Orchestrator(
            get_profile(profile_name),
            license_server=self.license_server if protect else None,
            encode_cache=self.encode_cache,
            farm=self.farm,
            tracer=self.tracer,
        )
        result = orchestrator.orchestrate(lecture, file_id=point)
        self.media_server.publish(point, result.asf, description=lecture.title)
        record = PublishedLecture(
            point=point,
            url=self.media_server.url_of(point),
            result=result,
            profile=profile_name,
        )
        self.published[point] = record
        return record

    def playback_url(self, client_host: str, point: str) -> str:
        """The URL one student should stream from.

        With an edge directory this is the client's consistent-hash
        placement (origin fallback included when the directory has one);
        without, it is the origin URL the record already carries.
        """
        if point not in self.published:
            raise PublishFormError(f"nothing published at {point!r}")
        if self.edge_directory is not None:
            return self.edge_directory.url_for(client_host, point)
        return self.media_server.url_of(point)

    def content_tree_of(self, point: str):
        if point not in self.published:
            raise PublishFormError(f"nothing published at {point!r}")
        return tree_from_json(self.published[point].result.content_tree_json)

    # ------------------------------------------------------------------
    # HTTP form endpoints (the Fig. 5 web UI)
    # ------------------------------------------------------------------

    def _handle_publish_form(self, request: HTTPRequest) -> HTTPResponse:
        if isinstance(request.body, str):
            fields = form_decode(request.body)
        elif isinstance(request.body, dict):
            fields = {k: str(v) for k, v in request.body.items()}
        else:
            return HTTPResponse(400, body="expected a publish form")
        missing = [f for f in self.REQUIRED_FIELDS if not fields.get(f)]
        if missing:
            return HTTPResponse(400, body=f"missing form fields: {missing}")
        try:
            record = self.publish(
                video_path=fields["video_path"],
                slide_dir=fields["slide_dir"],
                point=fields["point"],
                profile=fields.get("profile") or None,
                protect=fields.get("protect", "").lower() in ("1", "true", "yes"),
            )
        except (PublishFormError, LectureError) as exc:
            return HTTPResponse(400, body=str(exc))
        return HTTPResponse(
            200,
            body={
                "url": record.url,
                "point": record.point,
                "profile": record.profile,
                "duration": record.result.duration,
                "verification_error": record.result.verification_error,
            },
        )

    def _handle_tree(self, request: HTTPRequest) -> HTTPResponse:
        point = request.path[len("/tree/"):]
        if point not in self.published:
            return HTTPResponse(404, body=f"nothing published at {point!r}")
        return HTTPResponse(
            200, body=self.published[point].result.content_tree_json
        )

    def _handle_catalog(self, request: HTTPRequest) -> HTTPResponse:
        return HTTPResponse(200, body=self._catalog_entries())

    def _catalog_entries(self):
        return [
            {
                "point": record.point,
                "url": record.url,
                "title": record.result.lecture.title,
                "duration": record.result.duration,
            }
            for record in self.published.values()
        ]

    # -- human-facing HTML pages (the Fig. 5 browser views) ---------------

    def _handle_form_page(self, request: HTTPRequest) -> HTTPResponse:
        from ..web.pages import render_publish_form

        page = render_publish_form(sorted(PROFILE_BY_NAME))
        return HTTPResponse(200, body=page, headers={"Content-Type": "text/html"})

    def _handle_catalog_page(self, request: HTTPRequest) -> HTTPResponse:
        from ..web.pages import render_catalog

        page = render_catalog(self._catalog_entries())
        return HTTPResponse(200, body=page, headers={"Content-Type": "text/html"})


# ----------------------------------------------------------------------
# Level-on-demand grid publishing (levels × renditions)
# ----------------------------------------------------------------------


@dataclass
class PublishedVariant:
    """One cell of the L×B publish grid: a level at a rendition."""

    point: str
    url: str
    level: int
    profile: str
    asf: ASFFile
    segments: Tuple[str, ...]

    @property
    def duration(self) -> float:
        return self.asf.duration


@dataclass
class LODPublishResult:
    """Everything one grid publish produced, plus its work accounting."""

    point: str
    title: str
    levels: Tuple[int, ...]
    profiles: Tuple[str, ...]
    variants: Dict[Tuple[int, str], PublishedVariant]
    jobs_submitted: int
    encodes_performed: int
    dedup_hits: int
    cache_hits: int
    #: edges that acknowledged a stale-run invalidation push (replace=True
    #: with an edge directory attached; 0 otherwise)
    invalidations_pushed: int = 0

    def variant(self, level: int, profile: str) -> PublishedVariant:
        key = (level, profile)
        if key not in self.variants:
            raise LectureError(
                f"no variant at level {level} / profile {profile!r}; "
                f"published: {sorted(self.variants)}"
            )
        return self.variants[key]


@dataclass
class _VariantPlan:
    """Index bookkeeping tying one grid cell to its slots in the job batch."""

    level: int
    profile: BandwidthProfile
    segments: List[LectureSegment]
    video_idx: List[int] = field(default_factory=list)
    audio_idx: List[int] = field(default_factory=list)
    image_idx: List[int] = field(default_factory=list)


class LODPublisher:
    """Publishes the full **levels × renditions** grid of a lecture.

    The paper's system serves "lectures on demand" at multiple abstraction
    levels (§2.3–§2.4) and multiple bandwidths (§2.5). This publisher
    materializes that whole matrix: for every content-tree level ``q`` and
    every rendition profile ``b`` it builds a standalone ASF variant
    containing exactly the level-``q`` segments, re-timed onto a contiguous
    timeline, published at ``{point}-l{q}-{profile}``.

    The expensive part — the codec runs — is **segment-grained**: every
    (segment slice, profile) pair becomes one :class:`~repro.asf.farm.EncodeJob`,
    and the *entire grid* is submitted as a single farm batch. Because the
    level-nesting invariant (:meth:`~repro.contenttree.abstractor.Abstractor.verify_nesting`)
    guarantees level ``q`` is a subset of level ``q+1``, within-batch
    dedup collapses the grid's ~L×B×S nominal jobs down to B×S distinct
    encodes; an attached :class:`~repro.asf.encoder.EncodeCache` extends
    the same reuse across publishes, so republishing after editing one
    slide only encodes that slide's delta. Assembly (timeline rebasing,
    stream numbering, script commands, packetization) happens in the
    caller after the batch returns, in a fixed order — parallel farms
    produce **byte-identical** variants to ``workers=0``.

    ``media_server=None`` skips publication and just builds the variants —
    handy for benchmarks and tests. ``simulated_cost_per_second`` is
    modeled encoder latency per media-second (see :mod:`repro.asf.farm`);
    production paths leave it 0.
    """

    def __init__(
        self,
        media_server: Optional[MediaServer] = None,
        *,
        renditions: Sequence[BandwidthProfile],
        farm: Optional[EncodeFarm] = None,
        cache: Optional[EncodeCache] = None,
        packet_size: int = 1_450,
        preroll_ms: int = 3_000,
        with_data: bool = False,
        simulated_cost_per_second: float = 0.0,
        edge_directory=None,
        catalog=None,
        tracer=None,
    ) -> None:
        renditions = list(renditions)
        if not renditions:
            raise LectureError("grid publishing needs at least one rendition")
        names = [p.name for p in renditions]
        if len(set(names)) != len(names):
            raise LectureError("rendition profiles must have distinct names")
        self.media_server = media_server
        self.renditions = sorted(renditions, key=lambda p: p.total_bitrate)
        self.tracer = tracer  # optional repro.obs.Tracer
        if farm is None:
            farm = EncodeFarm(0, cache=cache, tracer=tracer)
        else:
            if farm.cache is None and cache is not None:
                farm.cache = cache
            if farm.tracer is None and tracer is not None:
                farm.tracer = tracer
        self.farm = farm
        self.cache = cache if cache is not None else farm.cache
        self.packet_size = packet_size
        self.preroll_ms = preroll_ms
        self.with_data = with_data
        self.simulated_cost_per_second = simulated_cost_per_second
        #: :class:`~repro.streaming.edge.EdgeDirectory` — when attached,
        #: a ``replace=True`` publish pushes an eager ``invalidate`` to
        #: every edge the holder registry lists for a changed point, so
        #: stale runs drop *now* instead of waiting out their TTL
        self.edge_directory = edge_directory
        #: :class:`~repro.catalog.CatalogIndex` — kept current on every
        #: publish (republish re-indexes, bumping the recorded cache key)
        self.catalog = catalog
        self._image_codec = ImageCodec()

    # ------------------------------------------------------------------

    def publish(
        self,
        lecture: Lecture,
        point: str,
        *,
        levels: Optional[Sequence[int]] = None,
        replace: bool = False,
    ) -> LODPublishResult:
        """Build (and optionally publish) every (level, rendition) variant.

        ``levels`` defaults to every non-trivial tree level (1..highest);
        level 0 is the bare root and has no segments to encode.
        ``replace=True`` unpublishes colliding points first — the
        "republish after editing" workflow.
        """
        tree = lecture.content_tree()
        abstractor = Abstractor(tree)
        abstractor.verify_nesting()
        if levels is None:
            level_list = list(range(1, tree.highest_level + 1))
        else:
            level_list = sorted(set(levels))
            for q in level_list:
                if not 1 <= q <= tree.highest_level:
                    raise LectureError(
                        f"level {q} outside 1..{tree.highest_level}"
                    )
        if not level_list:
            raise LectureError("no levels to publish")

        chosen_by_level: Dict[int, List[LectureSegment]] = {}
        for q in level_list:
            names = set(abstractor.at_level(q).segments)
            chosen = [s for s in lecture.segments if s.name in names]
            if not chosen:
                raise LectureError(f"level {q} selects no lecture segments")
            chosen_by_level[q] = chosen

        # One batch for the whole grid, in a fixed deterministic order:
        # (level asc, profile asc) × (videos, audios, images in lecture
        # order). Within-batch dedup collapses shared segments across
        # levels; results arrive in this same order regardless of workers.
        jobs: List[EncodeJob] = []
        plans: List[_VariantPlan] = []
        for q in level_list:
            for profile in self.renditions:
                plan = _VariantPlan(q, profile, chosen_by_level[q])
                for seg in plan.segments:
                    clip = lecture.video.cut(seg.start, seg.duration)
                    plan.video_idx.append(len(jobs))
                    jobs.append(
                        EncodeJob(
                            JOB_VIDEO,
                            clip,
                            profile=profile,
                            with_data=self.with_data,
                            simulated_cost=(
                                self.simulated_cost_per_second * seg.duration
                            ),
                        )
                    )
                if lecture.audio is not None:
                    for seg in plan.segments:
                        track = lecture.audio.cut(seg.start, seg.duration)
                        plan.audio_idx.append(len(jobs))
                        jobs.append(
                            EncodeJob(
                                JOB_AUDIO,
                                track,
                                profile=profile,
                                with_data=self.with_data,
                                simulated_cost=(
                                    self.simulated_cost_per_second
                                    * seg.duration
                                    / 6.0
                                ),
                            )
                        )
                for seg in plan.segments:
                    plan.image_idx.append(len(jobs))
                    jobs.append(
                        EncodeJob(
                            JOB_IMAGE,
                            seg.slide,
                            with_data=self.with_data,
                            image_codec=self._image_codec,
                        )
                    )
                plans.append(plan)

        span = None
        if self.tracer is not None:
            span = self.tracer.begin(
                "publish",
                point=point,
                levels=len(level_list),
                renditions=len(self.renditions),
                jobs=len(jobs),
            )
        encodes_before = self.farm.encodes_performed
        dedup_before = self.farm.dedup_hits
        cache_before = self.farm.cache_hits
        results = self.farm.encode_batch(jobs)

        variants: Dict[Tuple[int, str], PublishedVariant] = {}
        invalidations_pushed = 0
        for plan in plans:
            name = f"{point}-l{plan.level}-{plan.profile.name}"
            asf = self._assemble_variant(lecture, name, plan, results)
            url = ""
            if self.media_server is not None:
                replaced_key: Optional[str] = None
                if replace and name in self.media_server.points:
                    old = self.media_server.points[name].content
                    if isinstance(old, ASFFile):
                        replaced_key = old.fingerprint()
                    self.media_server.unpublish(name)
                self.media_server.publish(
                    name,
                    asf,
                    description=(
                        f"{lecture.title} — level {plan.level}, "
                        f"{plan.profile.name}"
                    ),
                )
                url = self.media_server.url_of(name)
                if replaced_key is not None and replaced_key != asf.fingerprint():
                    # the republish changed the content address: edges
                    # holding the old run must drop it *now* — the next
                    # viewer refills the new generation instead of riding
                    # stale bytes until the TTL catches up
                    invalidations_pushed += self._push_invalidation(
                        name, asf.fingerprint()
                    )
            variants[(plan.level, plan.profile.name)] = PublishedVariant(
                point=name,
                url=url,
                level=plan.level,
                profile=plan.profile.name,
                asf=asf,
                segments=tuple(s.name for s in plan.segments),
            )

        if self.tracer is not None:
            self.tracer.end(
                span,
                variants=len(variants),
                encodes=self.farm.encodes_performed - encodes_before,
                dedup_hits=self.farm.dedup_hits - dedup_before,
                cache_hits=self.farm.cache_hits - cache_before,
            )
        result = LODPublishResult(
            point=point,
            title=lecture.title,
            levels=tuple(level_list),
            profiles=tuple(p.name for p in self.renditions),
            variants=variants,
            jobs_submitted=len(jobs),
            encodes_performed=self.farm.encodes_performed - encodes_before,
            dedup_hits=self.farm.dedup_hits - dedup_before,
            cache_hits=self.farm.cache_hits - cache_before,
            invalidations_pushed=invalidations_pushed,
        )
        if self.catalog is not None:
            self.catalog.add_publish_result(result)
        return result

    def _push_invalidation(self, name: str, fresh_key: str) -> int:
        """Eager invalidation fan-out: tell every edge the holder
        registry lists for ``name`` that its run is stale. Unreachable
        edges are skipped — their TTL (or the stale-source gate on their
        next fill) is the backstop. Returns acknowledgements."""
        if self.edge_directory is None or self.media_server is None:
            return 0
        holders = self.edge_directory.holders(name)
        if not holders:
            return 0
        client = HTTPClient(self.media_server.network, self.media_server.host)
        pushed = 0
        for holder in holders:
            if not self.edge_directory.can_serve_fill(holder):
                continue
            url = self.edge_directory.edge_url(holder)
            try:
                response = client.post(
                    f"{url}/control/invalidate",
                    body={"point": name, "cache_key": fresh_key},
                )
            except HTTPError:
                continue
            if response.ok:
                pushed += 1
        if self.tracer is not None:
            self.tracer.event(
                "publish.invalidate",
                point=name, cache_key=fresh_key,
                holders=len(holders), pushed=pushed,
            )
        return pushed

    # ------------------------------------------------------------------

    def _assemble_variant(
        self,
        lecture: Lecture,
        file_id: str,
        plan: _VariantPlan,
        results: Sequence,
    ) -> ASFFile:
        """Merge one grid cell's encoded segments into a standalone ASF.

        Deterministic given the (already-merged) farm results: stream
        numbers, object renumbering and packetization all happen here,
        downstream of any parallelism.
        """
        starts: List[float] = []
        clock = 0.0
        for seg in plan.segments:
            starts.append(clock)
            clock += seg.duration
        duration = clock
        offsets_ms = [round(t * 1000) for t in starts]
        span = max(duration, 1e-9)

        streams: List[StreamProperties] = []
        unit_lists: List[List[MediaUnit]] = []
        number = 1

        video_encs = [results[i] for i in plan.video_idx]
        video_units = concat_unit_lists(
            [units_from_encoded(number, enc) for enc in video_encs], offsets_ms
        )
        scaled = plan.profile.configure_video(lecture.video)
        streams.append(
            StreamProperties(
                number,
                STREAM_TYPE_VIDEO,
                codec=plan.profile.video_codec,
                bitrate=sum(e.total_size for e in video_encs) * 8 / span,
                name=f"{lecture.video.name}@{plan.profile.name}",
                extra={
                    "width": str(scaled.width),
                    "height": str(scaled.height),
                    "fps": str(scaled.fps),
                    "quality": f"{video_encs[0].quality:.4f}",
                    "level": str(plan.level),
                    "profile": plan.profile.name,
                },
            )
        )
        unit_lists.append(video_units)
        number += 1

        if lecture.audio is not None:
            audio_encs = [results[i] for i in plan.audio_idx]
            audio_units = concat_unit_lists(
                [units_from_encoded(number, enc) for enc in audio_encs],
                offsets_ms,
            )
            streams.append(
                StreamProperties(
                    number,
                    STREAM_TYPE_AUDIO,
                    codec=plan.profile.audio_codec,
                    bitrate=sum(e.total_size for e in audio_encs) * 8 / span,
                    name=lecture.audio.name,
                    extra={"quality": f"{audio_encs[0].quality:.4f}"},
                )
            )
            unit_lists.append(audio_units)
            number += 1

        slide_units: List[MediaUnit] = []
        slide_bytes = 0
        for object_number, (idx, offset) in enumerate(
            zip(plan.image_idx, offsets_ms)
        ):
            data = units_from_encoded(number, results[idx])[0].data
            slide_units.append(
                MediaUnit(number, object_number, offset, True, data)
            )
            slide_bytes += len(data)
        streams.append(
            StreamProperties(
                number,
                STREAM_TYPE_IMAGE,
                codec=self._image_codec.name,
                bitrate=slide_bytes * 8 / span,
                name="slides",
            )
        )
        unit_lists.append(slide_units)

        commands = [ScriptCommand(0, TYPE_TREE_LEVEL, str(plan.level))]
        commands.extend(
            ScriptCommand(offset, TYPE_SLIDE, seg.name)
            for seg, offset in zip(plan.segments, offsets_ms)
        )
        command_list = sorted(commands)
        streams.append(
            StreamProperties(
                SCRIPT_STREAM_NUMBER,
                STREAM_TYPE_COMMAND,
                codec="script",
                name="commands",
            )
        )
        unit_lists.append(units_from_commands(command_list))

        header = HeaderObject(
            file_properties=FileProperties(
                file_id=file_id,
                duration_ms=round(duration * 1000),
                packet_size=self.packet_size,
                preroll_ms=self.preroll_ms,
            ),
            streams=streams,
            metadata={
                "title": lecture.title,
                "author": lecture.author,
                "level": str(plan.level),
                "profile": plan.profile.name,
                "segments": str(len(plan.segments)),
            },
            script_commands=command_list,
        )
        packetizer = Packetizer(
            packet_size=self.packet_size,
            bitrate=max(header.total_bitrate, 1.0),
            pacing="duration",
        )
        asf = ASFFile(header=header, packets=packetizer.packetize(unit_lists))
        asf.ensure_index()
        return asf
