"""The Web Publishing Manager — Figure 5 of the paper.

"User must fill the path of video file (MPEG4) and the directory of the
presented slides", choose the server HTTP port / URL and a bandwidth
profile; the system then produces the synchronized ASF automatically and
publishes it. This module reproduces that workflow end-to-end over the
simulated web:

* :class:`MediaStore` — the "file system" the form's paths point into;
* :class:`WebPublishingManager` — the form handler: validates the fields,
  runs the :class:`~repro.lod.orchestrator.Orchestrator`, publishes the
  result on the :class:`~repro.streaming.server.MediaServer`, and stores
  the content tree for per-level replay;
* an HTTP endpoint (``POST /publish``) so the whole Fig. 5 interaction —
  fill the form in a browser, get back the playback URL — runs over the
  simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..asf.drm import LicenseServer
from ..contenttree.serialize import tree_from_json
from ..media.objects import ImageObject, VideoObject
from ..media.profiles import PROFILE_BY_NAME, BandwidthProfile, get_profile
from ..streaming.server import MediaServer
from ..web.http import HTTPError, HTTPRequest, HTTPResponse, form_decode
from .lecture import Lecture, LectureError, LectureSegment
from .orchestrator import OrchestrationResult, Orchestrator


class PublishFormError(LectureError):
    """Bad or missing publishing-form fields."""


class MediaStore:
    """Named storage standing in for the teacher's disk.

    The Fig. 5 form references media by *path*; the store maps those paths
    to media objects. ``register_lecture`` is the common case: one video
    path plus one slide directory.
    """

    def __init__(self) -> None:
        self._videos: Dict[str, VideoObject] = {}
        self._slide_dirs: Dict[str, List[Tuple[ImageObject, float]]] = {}
        self._lectures: Dict[Tuple[str, str], Lecture] = {}

    def register_video(self, path: str, video: VideoObject) -> None:
        self._videos[path] = video

    def register_slides(
        self, directory: str, slides: List[Tuple[ImageObject, float]]
    ) -> None:
        """``slides`` is (image, show_at_seconds) in presentation order."""
        self._slide_dirs[directory] = list(slides)

    def register_lecture(self, video_path: str, slide_dir: str, lecture: Lecture) -> None:
        """Register a complete lecture under a (video path, slide dir) pair."""
        self._videos[video_path] = lecture.video
        self._slide_dirs[slide_dir] = [(s.slide, s.start) for s in lecture.segments]
        self._lectures[(video_path, slide_dir)] = lecture

    def lookup_lecture(self, video_path: str, slide_dir: str) -> Lecture:
        key = (video_path, slide_dir)
        if key in self._lectures:
            return self._lectures[key]
        # assemble a lecture from separately registered parts
        if video_path not in self._videos:
            raise PublishFormError(f"video path not found: {video_path!r}")
        if slide_dir not in self._slide_dirs:
            raise PublishFormError(f"slide directory not found: {slide_dir!r}")
        video = self._videos[video_path]
        slides = self._slide_dirs[slide_dir]
        if not slides:
            raise PublishFormError(f"slide directory {slide_dir!r} is empty")
        segments = []
        ordered = sorted(slides, key=lambda pair: pair[1])
        for i, (image, start) in enumerate(ordered):
            end = (
                ordered[i + 1][1] if i + 1 < len(ordered) else video.duration
            )
            segments.append(
                LectureSegment(
                    name=image.name,
                    slide=image,
                    start=start,
                    duration=end - start,
                )
            )
        return Lecture(
            title=video.name,
            author="unknown",
            video=video,
            segments=segments,
        )


@dataclass
class PublishedLecture:
    """Record of one published lecture."""

    point: str
    url: str
    result: OrchestrationResult
    profile: str


class WebPublishingManager:
    """The Fig. 5 form backend on a media server."""

    REQUIRED_FIELDS = ("video_path", "slide_dir", "point")

    def __init__(
        self,
        media_server: MediaServer,
        store: MediaStore,
        *,
        license_server: Optional[LicenseServer] = None,
        default_profile: str = "dsl-256k",
    ) -> None:
        self.media_server = media_server
        self.store = store
        self.license_server = license_server
        self.default_profile = default_profile
        self.published: Dict[str, PublishedLecture] = {}
        media_server.http.route("POST", "/publish", self._handle_publish_form)
        media_server.http.route("GET", "/publish", self._handle_form_page)
        media_server.http.route("GET", "/tree/", self._handle_tree)
        media_server.http.route("GET", "/catalog", self._handle_catalog)
        media_server.http.route("GET", "/", self._handle_catalog_page)

    # ------------------------------------------------------------------
    # programmatic API
    # ------------------------------------------------------------------

    def publish(
        self,
        *,
        video_path: str,
        slide_dir: str,
        point: str,
        profile: Optional[str] = None,
        protect: bool = False,
    ) -> PublishedLecture:
        """Validate, orchestrate, publish; returns the playback record."""
        profile_name = profile or self.default_profile
        if profile_name not in PROFILE_BY_NAME:
            raise PublishFormError(
                f"unknown profile {profile_name!r}; choose from "
                f"{sorted(PROFILE_BY_NAME)}"
            )
        if point in self.published:
            raise PublishFormError(f"publishing point {point!r} already in use")
        lecture = self.store.lookup_lecture(video_path, slide_dir)
        orchestrator = Orchestrator(
            get_profile(profile_name),
            license_server=self.license_server if protect else None,
        )
        result = orchestrator.orchestrate(lecture, file_id=point)
        self.media_server.publish(point, result.asf, description=lecture.title)
        record = PublishedLecture(
            point=point,
            url=self.media_server.url_of(point),
            result=result,
            profile=profile_name,
        )
        self.published[point] = record
        return record

    def content_tree_of(self, point: str):
        if point not in self.published:
            raise PublishFormError(f"nothing published at {point!r}")
        return tree_from_json(self.published[point].result.content_tree_json)

    # ------------------------------------------------------------------
    # HTTP form endpoints (the Fig. 5 web UI)
    # ------------------------------------------------------------------

    def _handle_publish_form(self, request: HTTPRequest) -> HTTPResponse:
        if isinstance(request.body, str):
            fields = form_decode(request.body)
        elif isinstance(request.body, dict):
            fields = {k: str(v) for k, v in request.body.items()}
        else:
            return HTTPResponse(400, body="expected a publish form")
        missing = [f for f in self.REQUIRED_FIELDS if not fields.get(f)]
        if missing:
            return HTTPResponse(400, body=f"missing form fields: {missing}")
        try:
            record = self.publish(
                video_path=fields["video_path"],
                slide_dir=fields["slide_dir"],
                point=fields["point"],
                profile=fields.get("profile") or None,
                protect=fields.get("protect", "").lower() in ("1", "true", "yes"),
            )
        except (PublishFormError, LectureError) as exc:
            return HTTPResponse(400, body=str(exc))
        return HTTPResponse(
            200,
            body={
                "url": record.url,
                "point": record.point,
                "profile": record.profile,
                "duration": record.result.duration,
                "verification_error": record.result.verification_error,
            },
        )

    def _handle_tree(self, request: HTTPRequest) -> HTTPResponse:
        point = request.path[len("/tree/"):]
        if point not in self.published:
            return HTTPResponse(404, body=f"nothing published at {point!r}")
        return HTTPResponse(
            200, body=self.published[point].result.content_tree_json
        )

    def _handle_catalog(self, request: HTTPRequest) -> HTTPResponse:
        return HTTPResponse(200, body=self._catalog_entries())

    def _catalog_entries(self):
        return [
            {
                "point": record.point,
                "url": record.url,
                "title": record.result.lecture.title,
                "duration": record.result.duration,
            }
            for record in self.published.values()
        ]

    # -- human-facing HTML pages (the Fig. 5 browser views) ---------------

    def _handle_form_page(self, request: HTTPRequest) -> HTTPResponse:
        from ..web.pages import render_publish_form

        page = render_publish_form(sorted(PROFILE_BY_NAME))
        return HTTPResponse(200, body=page, headers={"Content-Type": "text/html"})

    def _handle_catalog_page(self, request: HTTPRequest) -> HTTPResponse:
        from ..web.pages import render_catalog

        page = render_catalog(self._catalog_entries())
        return HTTPResponse(200, body=page, headers={"Content-Type": "text/html"})
