"""The lecture domain model.

A :class:`Lecture` is the paper's unit of content: a teacher's video (plus
optional audio track), a sequence of slides each shown for an interval of
the talk, and annotations/comments anchored inside segments. It knows how
to express itself in the two formal vocabularies of the system:

* :meth:`Lecture.to_presentation` — the **extended timed Petri net**
  segment structure (:class:`repro.core.extended.ExtendedPresentation`),
  used for verification and interactive playback modeling;
* :meth:`Lecture.content_tree` — the **multiple-level content tree**, used
  by the Abstractor for per-level summaries;
* :meth:`Lecture.script_commands` — the ASF script commands that make the
  recorded stream self-synchronizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..contenttree import ContentTree, tree_from_segments
from ..core.extended import ExtendedPresentation, Segment
from ..core.ocpn import Composite, MediaLeaf, Spec, parallel
from ..core.intervals import TemporalRelation
from ..asf.script_commands import (
    ScriptCommand,
    TYPE_ANNOTATION,
    TYPE_SLIDE,
)
from ..media.objects import (
    AnnotationObject,
    AudioObject,
    ImageObject,
    MediaError,
    VideoObject,
)


class LectureError(Exception):
    """Inconsistent lecture structure."""


@dataclass(frozen=True)
class TimedAnnotation:
    """An annotation shown ``offset`` seconds into its segment."""

    annotation: AnnotationObject
    offset: float

    def __post_init__(self) -> None:
        if self.offset <= 0:
            raise LectureError("annotation offset must be positive (inside segment)")


@dataclass
class LectureSegment:
    """One slide of the talk: shown from ``start`` for ``duration``.

    ``importance`` feeds the content tree: 0 = essential (level 1),
    larger = finer detail at deeper levels.
    """

    name: str
    slide: ImageObject
    start: float
    duration: float
    importance: int = 0
    annotations: List[TimedAnnotation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise LectureError(f"segment {self.name!r}: duration must be positive")
        if self.start < 0:
            raise LectureError(f"segment {self.name!r}: start must be >= 0")
        if self.importance < 0:
            raise LectureError(f"segment {self.name!r}: importance must be >= 0")
        for timed in self.annotations:
            if timed.offset + timed.annotation.duration >= self.duration:
                raise LectureError(
                    f"annotation {timed.annotation.name!r} does not fit inside "
                    f"segment {self.name!r}"
                )

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class Lecture:
    """A recorded lecture ready for orchestration."""

    title: str
    author: str
    video: VideoObject
    segments: List[LectureSegment]
    audio: Optional[AudioObject] = None

    def __post_init__(self) -> None:
        if not self.segments:
            raise LectureError("a lecture needs at least one segment")
        names = [s.name for s in self.segments]
        if len(set(names)) != len(names):
            raise LectureError("segment names must be unique")
        expected = 0.0
        for segment in self.segments:
            if abs(segment.start - expected) > 1e-6:
                raise LectureError(
                    f"segment {segment.name!r} starts at {segment.start}, "
                    f"expected {expected} (segments must tile the talk)"
                )
            expected = segment.end
        if abs(expected - self.video.duration) > 1e-6:
            raise LectureError(
                f"segments cover {expected}s but the video lasts "
                f"{self.video.duration}s"
            )
        if self.audio is not None and abs(
            self.audio.duration - self.video.duration
        ) > 1e-6:
            raise LectureError("audio and video durations differ")

    # ------------------------------------------------------------------

    @property
    def duration(self) -> float:
        return self.video.duration

    def segment(self, name: str) -> LectureSegment:
        for s in self.segments:
            if s.name == name:
                return s
        raise LectureError(f"no segment named {name!r}")

    def segment_at(self, t: float) -> LectureSegment:
        for s in self.segments:
            if s.start <= t < s.end:
                return s
        return self.segments[-1]

    @classmethod
    def from_slide_durations(
        cls,
        title: str,
        author: str,
        durations: Sequence[float],
        *,
        importances: Optional[Sequence[int]] = None,
        width: int = 320,
        height: int = 240,
        fps: float = 15.0,
        with_audio: bool = True,
        slide_width: int = 1024,
        slide_height: int = 768,
    ) -> "Lecture":
        """Build a synthetic lecture with one slide per duration."""
        if not durations:
            raise LectureError("need at least one slide duration")
        importances = list(importances or [0] * len(durations))
        if len(importances) != len(durations):
            raise LectureError("importances must match durations")
        total = float(sum(durations))
        segments: List[LectureSegment] = []
        start = 0.0
        for i, duration in enumerate(durations):
            segments.append(
                LectureSegment(
                    name=f"slide{i}",
                    slide=ImageObject(
                        f"slide{i}", duration, width=slide_width, height=slide_height
                    ),
                    start=start,
                    duration=duration,
                    importance=importances[i],
                )
            )
            start += duration
        return cls(
            title=title,
            author=author,
            video=VideoObject("talk", total, width=width, height=height, fps=fps),
            audio=AudioObject("voice", total) if with_audio else None,
            segments=segments,
        )

    # ------------------------------------------------------------------
    # formal views
    # ------------------------------------------------------------------

    def script_commands(self) -> List[ScriptCommand]:
        """SLIDE commands at segment starts + ANNOTATION commands inside."""
        commands: List[ScriptCommand] = []
        for segment in self.segments:
            commands.append(
                ScriptCommand(round(segment.start * 1000), TYPE_SLIDE, segment.name)
            )
            for timed in segment.annotations:
                commands.append(
                    ScriptCommand(
                        round((segment.start + timed.offset) * 1000),
                        TYPE_ANNOTATION,
                        timed.annotation.text or timed.annotation.name,
                    )
                )
        return sorted(commands)

    def slide_schedule(self) -> List[Tuple[str, float]]:
        return [(s.name, s.start) for s in self.segments]

    def to_presentation(self) -> ExtendedPresentation:
        """The extended-net view: one Petri-net segment per slide.

        Each segment is video ∥ slide (plus audio if present); annotations
        are DURING the segment at their offsets — a direct transcription of
        the paper's synchronization semantics.
        """
        net_segments: List[Segment] = []
        for segment in self.segments:
            parts: List[Spec] = [
                MediaLeaf(f"video_{segment.name}", segment.duration),
                MediaLeaf(f"image_{segment.name}", segment.duration),
            ]
            if self.audio is not None:
                parts.append(MediaLeaf(f"audio_{segment.name}", segment.duration))
            spec: Spec = parallel(*parts)
            for timed in segment.annotations:
                spec = Composite(
                    TemporalRelation.DURING,
                    MediaLeaf(
                        f"note_{segment.name}_{timed.annotation.name}",
                        timed.annotation.duration,
                    ),
                    spec,
                    delay=timed.offset,
                )
            net_segments.append(Segment(segment.name, spec))
        return ExtendedPresentation(net_segments, name=self.title)

    def content_tree(self) -> ContentTree:
        """Multiple-level content tree keyed by segment importance."""
        return tree_from_segments(
            [(s.name, s.duration, s.importance) for s in self.segments],
            root_name=self.title,
        )
