"""The distance-learning classroom: floor control over a shared lecture.

The paper motivates the extended net with "the floor control with multiple
users": several students watch the same presentation, and only the user
holding the floor may steer it (pause for a question, jump back to a
slide). :class:`Classroom` composes the two core mechanisms:

* the **floor-control Petri net** (:class:`repro.core.extended.FloorControl`)
  arbitrates who may interact — mutual exclusion is a net invariant;
* the **distributed coordinator**
  (:class:`repro.core.extended.DistributedCoordinator`) replicates the
  held-floor user's commands to every site and keeps replicas in sync.

Interactions from non-holders raise :class:`FloorDenied` — the formal
counterpart of a greyed-out control in the UI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.extended import (
    DistributedCoordinator,
    ExtendedPresentation,
    FloorControl,
    SiteLink,
)
from ..core.petri import NotEnabledError


class FloorDenied(Exception):
    """An interaction was attempted by a user not holding the floor."""


@dataclass
class ClassroomEvent:
    """Audit-log entry: who did what, when."""

    time: float
    user: str
    action: str
    detail: str = ""


class Classroom:
    """A shared lecture session with floor-arbitrated control."""

    def __init__(
        self,
        presentation: ExtendedPresentation,
        students: Mapping[str, SiteLink],
        *,
        teacher: str = "teacher",
        beacon_interval: Optional[float] = 1.0,
        drift_threshold: float = 0.05,
        tracer=None,
    ) -> None:
        if teacher in students:
            raise ValueError("teacher must not also be a student site")
        self.teacher = teacher
        self.users = [teacher, *students]
        self.floor = FloorControl(self.users, tracer=tracer)
        self.coordinator = DistributedCoordinator(
            presentation,
            students,
            beacon_interval=beacon_interval,
            drift_threshold=drift_threshold,
        )
        self.events: List[ClassroomEvent] = []
        # the teacher starts with the floor (they are presenting)
        self.floor.request(teacher)
        self._log(teacher, "request_floor", "granted")

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.coordinator.master.wall_time

    @property
    def floor_holder(self) -> Optional[str]:
        return self.floor.holder

    def advance(self, dt: float) -> None:
        self.coordinator.advance(dt)
        self.floor.advance(dt)

    def _log(self, user: str, action: str, detail: str = "") -> None:
        self.events.append(ClassroomEvent(self.now, user, action, detail))

    # -- floor management ---------------------------------------------

    def request_floor(self, user: str) -> bool:
        granted = self.floor.request(user)
        self._log(user, "request_floor", "granted" if granted else "queued")
        return granted

    def release_floor(self, user: str) -> Optional[str]:
        next_holder = self.floor.release(user)
        self._log(user, "release_floor", f"next={next_holder}")
        return next_holder

    def site_disconnected(self, user: str) -> Optional[str]:
        """A user's site link died (crash, partition) — reclaim the floor.

        The departed user fires no ``release_floor`` of their own; without
        this hook a disconnected holder orphans the floor and the whole
        classroom deadlocks. Drops the user from arbitration (releasing
        the floor if held, leaving the queue if waiting), logs the audit
        trail, and returns the next holder if the floor moved.
        """
        held = self.floor.holder == user
        next_holder = self.floor.drop(user)
        self._log(user, "disconnect", "held floor" if held else "")
        if held:
            self._log(
                user,
                "floor_reclaimed",
                f"next={next_holder}" if next_holder else "floor free",
            )
        return next_holder

    # -- arbitrated interactions ----------------------------------------

    def interact(self, user: str, action: str, param: float = 0.0) -> None:
        """Apply ``action`` to the shared presentation if ``user`` holds
        the floor; otherwise raise :class:`FloorDenied`."""
        if self.floor.holder != user:
            self._log(user, "denied", action)
            raise FloorDenied(
                f"{user!r} does not hold the floor "
                f"(holder: {self.floor.holder!r})"
            )
        self.coordinator.command(action, param)
        self._log(user, action, str(param) if param else "")

    # -- reporting ---------------------------------------------------------

    def fairness(self) -> Dict[str, float]:
        """Floor-holding time per user (Jain-style fairness inputs)."""
        return self.floor.holding_times()

    def jain_index(self) -> float:
        """Jain's fairness index over users who requested the floor."""
        times = [t for t in self.fairness().values() if t > 0]
        if not times:
            return 1.0
        return sum(times) ** 2 / (len(times) * sum(t * t for t in times))

    def denial_count(self) -> int:
        return sum(1 for e in self.events if e.action == "denied")

    def max_drift(self) -> float:
        return max(
            (self.coordinator.max_drift(site) for site in self.coordinator.sites),
            default=0.0,
        )
